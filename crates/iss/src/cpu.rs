//! The instruction-set simulator core.
//!
//! A cycle-approximate model of a scalar, in-order SPARClite-style
//! pipeline: single-issue, one-cycle ALU ops, multi-cycle multiply and
//! divide, a load-use interlock, and delayed branches (the delay-slot
//! instruction always executes). Every retired instruction is charged to
//! the instruction-level [`PowerModel`]; stall cycles are charged
//! separately — "the ISS accurately models timing behavior taking into
//! account register interlocks, pipeline flushes, delayed branches" (§5.1).
//!
//! The CPU state (registers, condition codes, local memory, circuit
//! state) persists across activations, exactly like a processor that is
//! suspended at a breakpoint between CFSM transitions.

use crate::isa::{memmap, AluOp, Cond, Instr, Operand, Reg};
use crate::power::{InstrClass, PowerModel};
use std::collections::HashMap;

/// Integer condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Icc {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Overflow.
    pub v: bool,
    /// Carry.
    pub c: bool,
}

impl Icc {
    /// Whether `cond` holds under these codes.
    pub fn holds(self, cond: Cond) -> bool {
        match cond {
            Cond::Always => true,
            Cond::Eq => self.z,
            Cond::Ne => !self.z,
            Cond::Lt => self.n != self.v,
            Cond::Le => self.z || (self.n != self.v),
            Cond::Gt => !(self.z || (self.n != self.v)),
            Cond::Ge => self.n == self.v,
        }
    }
}

/// Everything one activation (one CFSM transition between breakpoints)
/// produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOutcome {
    /// Clock cycles consumed, including stalls.
    pub cycles: u64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Instructions retired.
    pub instrs: u64,
    /// Stall cycles (subset of `cycles`).
    pub stalls: u64,
    /// Events emitted through the MMIO port: `(event index, value)`.
    pub emitted: Vec<(u32, i64)>,
    /// Shared-memory transactions: `(addr, write?, data)`.
    pub shared_ops: Vec<(u64, bool, i64)>,
    /// Instruction-fetch addresses (only when recording is enabled).
    pub ifetch: Vec<u64>,
}

/// Per-instruction latencies in cycles.
fn base_cycles(i: &Instr) -> u64 {
    match i {
        Instr::Alu { op, .. } => match op {
            AluOp::Smul => 5,
            AluOp::Sdiv | AluOp::Srem => 18,
            _ => 1,
        },
        Instr::Set { .. } => 2,
        Instr::Ld { .. } => 1,
        Instr::St { .. } => 1,
        Instr::Branch { .. } => 1,
        Instr::Nop | Instr::Halt => 1,
        Instr::Save | Instr::Restore => 1, // + trap penalty when the file wraps
    }
}

/// Number of register windows (SPARClite-class).
pub const N_WINDOWS: usize = 8;
/// Extra cycles charged by a window overflow/underflow trap (spill or
/// refill of the 16-register window through memory).
const WINDOW_TRAP_CYCLES: u64 = 24;

/// Guards against runaway programs.
const MAX_INSTRS_PER_RUN: u64 = 200_000_000;

/// The simulated processor (see module docs).
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Global registers `%r0..%r7` (`%r0` hard-wired to zero).
    globals: [i64; 8],
    /// The windowed register file: [`N_WINDOWS`] × 16 physical registers
    /// backing the visible `%r8..%r31`, with the SPARC out/in overlap.
    window_file: [i64; N_WINDOWS * 16],
    /// Current window pointer.
    cwp: usize,
    /// Nesting depth of `save`s (drives overflow/underflow traps).
    window_depth: u32,
    icc: Icc,
    mem: HashMap<u64, i64>,
    power: PowerModel,
    prev_class: Option<InstrClass>,
    record_ifetch: bool,
}

impl Cpu {
    /// Creates a CPU with the given power model, zeroed registers and
    /// empty memory.
    pub fn new(power: PowerModel) -> Self {
        Cpu {
            globals: [0; 8],
            window_file: [0; N_WINDOWS * 16],
            cwp: 0,
            window_depth: 0,
            icc: Icc::default(),
            mem: HashMap::new(),
            power,
            // Between activations the processor idles (RTOS wait loop),
            // so every activation starts from the same circuit state.
            // This makes the energy of a (path, data) pair exactly
            // repeatable — the property behind the zero caching error on
            // SPARClite in Table 1 of the paper.
            prev_class: Some(InstrClass::Nop),
            record_ifetch: false,
        }
    }

    /// Enables or disables instruction-fetch address recording.
    pub fn set_record_ifetch(&mut self, on: bool) {
        self.record_ifetch = on;
    }

    /// The power model in use.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Physical index of a windowed register under the current window
    /// pointer (the SPARC overlap: window `w`'s ins are window `w+1`'s
    /// outs).
    fn phys(&self, r: Reg) -> usize {
        debug_assert!(r.0 >= 8);
        (self.cwp * 16 + (r.0 as usize - 8)) % (N_WINDOWS * 16)
    }

    /// Reads a register (`%r0` is always zero).
    pub fn reg(&self, r: Reg) -> i64 {
        match r.0 {
            0 => 0,
            1..=7 => self.globals[r.0 as usize],
            _ => self.window_file[self.phys(r)],
        }
    }

    /// Writes a register (writes to `%r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: i64) {
        match r.0 {
            0 => {}
            1..=7 => self.globals[r.0 as usize] = v,
            _ => {
                let i = self.phys(r);
                self.window_file[i] = v;
            }
        }
    }

    /// Current window pointer (tests/debug).
    pub fn cwp(&self) -> usize {
        self.cwp
    }

    /// Reads local memory (zero if never written).
    pub fn mem_read(&self, addr: u64) -> i64 {
        *self.mem.get(&addr).unwrap_or(&0)
    }

    /// Writes local memory.
    pub fn mem_write(&mut self, addr: u64, v: i64) {
        self.mem.insert(addr, v);
    }

    /// The current condition codes.
    pub fn icc(&self) -> Icc {
        self.icc
    }

    fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(i) => i as i64,
        }
    }

    /// Executes from instruction index `entry` until `Halt`.
    ///
    /// `code` is the program text, `base_addr` its load address (for
    /// fetch-trace generation), `shared_reads` the ordered functional
    /// values for loads from the shared window.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range control transfer, loads from the MMIO emit
    /// region, shared reads beyond `shared_reads`, or exceeding the
    /// internal instruction budget.
    pub fn run(
        &mut self,
        code: &[Instr],
        entry: u32,
        base_addr: u64,
        shared_reads: &[i64],
    ) -> RunOutcome {
        // Slot offsets for fetch addresses.
        let mut out = RunOutcome::default();
        let mut pc = entry as usize;
        let mut next_shared = 0usize;
        // Delay-slot bookkeeping: after executing a taken branch, the
        // instruction at pc+1 executes, then control moves to the target.
        let mut pending_target: Option<usize> = None;
        let mut last_load_rd: Option<Reg> = None;
        loop {
            assert!(pc < code.len(), "control transfer out of program");
            let instr = code[pc];
            assert!(
                out.instrs < MAX_INSTRS_PER_RUN,
                "instruction budget exceeded; runaway program?"
            );
            if self.record_ifetch {
                // One fetch per slot.
                let slot_base = base_addr + slot_offset(code, pc) * crate::isa::INSTR_BYTES;
                for s in 0..instr.slots() as u64 {
                    out.ifetch.push(slot_base + s * crate::isa::INSTR_BYTES);
                }
            }
            // Load-use interlock: one stall if this instruction reads the
            // destination of the immediately preceding load.
            if let Some(ld_rd) = last_load_rd {
                if ld_rd != Reg::ZERO && reads_reg(&instr, ld_rd) {
                    out.cycles += 1;
                    out.stalls += 1;
                    out.energy_j += self.power.stall_energy_j();
                }
            }
            last_load_rd = None;

            let mut operands = (0i64, 0i64);
            let mut taken: Option<usize> = None;
            let mut halted = false;
            match instr {
                Instr::Alu {
                    op,
                    rd,
                    rs1,
                    rs2,
                    set_cc,
                } => {
                    let a = self.reg(rs1);
                    let b = self.operand(rs2);
                    operands = (a, b);
                    let (r, carry, overflow) = alu_exec(op, a, b);
                    self.set_reg(rd, r);
                    if set_cc {
                        self.icc = Icc {
                            n: r < 0,
                            z: r == 0,
                            v: overflow,
                            c: carry,
                        };
                    }
                }
                Instr::Set { rd, imm } => {
                    operands = (imm, 0);
                    self.set_reg(rd, imm);
                }
                Instr::Ld { rd, rs1, offset } => {
                    let addr = (self.reg(rs1) + offset as i64) as u64;
                    let v = if memmap::is_shared(addr) {
                        assert!(
                            next_shared < shared_reads.len(),
                            "ISS issued more shared reads than supplied"
                        );
                        let v = shared_reads[next_shared];
                        next_shared += 1;
                        out.shared_ops.push((addr, false, 0));
                        v
                    } else if memmap::emit_event(addr).is_some() {
                        panic!("load from event-emission MMIO region");
                    } else {
                        self.mem_read(addr)
                    };
                    operands = (addr as i64, v);
                    self.set_reg(rd, v);
                    last_load_rd = Some(rd);
                }
                Instr::St { rs, rs1, offset } => {
                    let addr = (self.reg(rs1) + offset as i64) as u64;
                    let v = self.reg(rs);
                    operands = (addr as i64, v);
                    if let Some(ev) = memmap::emit_event(addr) {
                        out.emitted.push((ev, v));
                    } else if memmap::is_shared(addr) {
                        out.shared_ops.push((addr, true, v));
                    } else {
                        self.mem_write(addr, v);
                    }
                }
                Instr::Branch { cond, target } => {
                    if self.icc.holds(cond) {
                        taken = Some(target as usize);
                    }
                }
                Instr::Nop => {}
                Instr::Save => {
                    // SPARC `save` decrements CWP: the caller's outs
                    // (r8..r15) alias the new window's ins (r24..r31).
                    self.cwp = (self.cwp + N_WINDOWS - 1) % N_WINDOWS;
                    self.window_depth += 1;
                    // With N windows, N-1 nested saves fit; the next one
                    // spills the oldest window (overflow trap).
                    if self.window_depth.is_multiple_of(N_WINDOWS as u32 - 1) {
                        out.cycles += WINDOW_TRAP_CYCLES;
                        out.stalls += WINDOW_TRAP_CYCLES;
                        out.energy_j +=
                            self.power.stall_energy_j() * WINDOW_TRAP_CYCLES as f64;
                    }
                }
                Instr::Restore => {
                    assert!(self.window_depth > 0, "restore without matching save");
                    if self.window_depth.is_multiple_of(N_WINDOWS as u32 - 1) {
                        // Refilling the spilled window (underflow trap).
                        out.cycles += WINDOW_TRAP_CYCLES;
                        out.stalls += WINDOW_TRAP_CYCLES;
                        out.energy_j +=
                            self.power.stall_energy_j() * WINDOW_TRAP_CYCLES as f64;
                    }
                    self.window_depth -= 1;
                    self.cwp = (self.cwp + 1) % N_WINDOWS;
                }
                Instr::Halt => halted = true,
            }

            out.cycles += base_cycles(&instr);
            out.instrs += 1;
            out.energy_j += self
                .power
                .instr_energy_j(&instr, self.prev_class, operands);
            self.prev_class = Some(InstrClass::of(&instr));

            if halted {
                break;
            }
            if let Some(t) = pending_target.take() {
                // We just executed the delay slot of an earlier branch.
                pc = t;
                continue;
            }
            if let Some(t) = taken {
                // Execute the delay slot next, then jump.
                pending_target = Some(t);
            }
            pc += 1;
        }
        out
    }
}

/// Whether `instr` reads `r` as a source.
fn reads_reg(instr: &Instr, r: Reg) -> bool {
    match instr {
        Instr::Alu { rs1, rs2, .. } => {
            *rs1 == r || matches!(rs2, Operand::Reg(x) if *x == r)
        }
        Instr::Ld { rs1, .. } => *rs1 == r,
        Instr::St { rs, rs1, .. } => *rs == r || *rs1 == r,
        _ => false,
    }
}

/// Slot offset of instruction index `pc` (Set occupies two slots).
fn slot_offset(code: &[Instr], pc: usize) -> u64 {
    code[..pc].iter().map(|i| i.slots() as u64).sum()
}

/// Executes an ALU op; returns `(result, carry, overflow)`.
fn alu_exec(op: AluOp, a: i64, b: i64) -> (i64, bool, bool) {
    match op {
        AluOp::Add => {
            let (r, o) = a.overflowing_add(b);
            let c = (a as u64).overflowing_add(b as u64).1;
            (r, c, o)
        }
        AluOp::Sub => {
            let (r, o) = a.overflowing_sub(b);
            let c = (a as u64) < (b as u64);
            (r, c, o)
        }
        AluOp::And => (a & b, false, false),
        AluOp::Or => (a | b, false, false),
        AluOp::Xor => (a ^ b, false, false),
        AluOp::Sll => (a.wrapping_shl(b as u32 % 64), false, false),
        AluOp::Sra => (a.wrapping_shr(b as u32 % 64), false, false),
        AluOp::Smul => (a.wrapping_mul(b), false, false),
        AluOp::Sdiv => (if b == 0 { 0 } else { a.wrapping_div(b) }, false, false),
        AluOp::Srem => (if b == 0 { 0 } else { a.wrapping_rem(b) }, false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Cpu {
        Cpu::new(PowerModel::sparclite())
    }

    fn alu(op: AluOp, rd: u8, rs1: u8, rs2: Operand) -> Instr {
        Instr::Alu {
            op,
            rd: Reg(rd),
            rs1: Reg(rs1),
            rs2,
            set_cc: false,
        }
    }

    #[test]
    fn r0_is_always_zero() {
        let mut c = cpu();
        c.set_reg(Reg::ZERO, 99);
        assert_eq!(c.reg(Reg::ZERO), 0);
        let code = [
            alu(AluOp::Add, 0, 0, Operand::Imm(7)), // write to r0 discarded
            Instr::Halt,
        ];
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg::ZERO), 0);
    }

    #[test]
    fn alu_arithmetic_and_flags() {
        let mut c = cpu();
        let code = [
            Instr::Set { rd: Reg(1), imm: 10 },
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg(2),
                rs1: Reg(1),
                rs2: Operand::Imm(10),
                set_cc: true,
            },
            Instr::Halt,
        ];
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(2)), 0);
        assert!(c.icc().z);
        assert!(!c.icc().n);
    }

    #[test]
    fn cond_evaluation_matches_semantics() {
        // subcc 3 - 5 → negative.
        let mut c = cpu();
        let code = [
            Instr::Set { rd: Reg(1), imm: 3 },
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::ZERO,
                rs1: Reg(1),
                rs2: Operand::Imm(5),
                set_cc: true,
            },
            Instr::Halt,
        ];
        c.run(&code, 0, 0, &[]);
        assert!(c.icc().holds(Cond::Lt));
        assert!(c.icc().holds(Cond::Le));
        assert!(c.icc().holds(Cond::Ne));
        assert!(!c.icc().holds(Cond::Eq));
        assert!(!c.icc().holds(Cond::Gt));
        assert!(!c.icc().holds(Cond::Ge));
    }

    #[test]
    fn delayed_branch_executes_delay_slot() {
        // set r1, 1; ba L; add r1,+10 (delay slot, executes); L: halt
        // and the skipped instruction add r1,+100 must not run.
        let code = [
            Instr::Set { rd: Reg(1), imm: 1 },
            Instr::Branch { cond: Cond::Always, target: 4 },
            alu(AluOp::Add, 1, 1, Operand::Imm(10)), // delay slot
            alu(AluOp::Add, 1, 1, Operand::Imm(100)), // skipped
            Instr::Halt,
        ];
        let mut c = cpu();
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(1)), 11);
    }

    #[test]
    fn untaken_branch_falls_through() {
        let code = [
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Operand::Imm(0),
                set_cc: true,
            }, // Z set
            Instr::Branch { cond: Cond::Ne, target: 4 }, // not taken
            Instr::Nop,
            alu(AluOp::Add, 1, 0, Operand::Imm(5)),
            Instr::Halt,
        ];
        let mut c = cpu();
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(1)), 5);
    }

    #[test]
    fn loop_executes_correct_count() {
        // r1 = 5; L: r2 += 2; subcc r1,1 -> r1; bne L; nop; halt
        let code = [
            Instr::Set { rd: Reg(1), imm: 5 },
            alu(AluOp::Add, 2, 2, Operand::Imm(2)),
            Instr::Alu {
                op: AluOp::Sub,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Operand::Imm(1),
                set_cc: true,
            },
            Instr::Branch { cond: Cond::Ne, target: 1 },
            Instr::Nop,
            Instr::Halt,
        ];
        let mut c = cpu();
        let out = c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(2)), 10);
        assert_eq!(c.reg(Reg(1)), 0);
        assert!(out.instrs > 15); // 5 iterations of 4 instrs + prologue
    }

    #[test]
    fn load_store_local_memory() {
        let mut c = cpu();
        let code = [
            Instr::Set { rd: Reg(1), imm: memmap::VAR_BASE as i64 },
            Instr::Set { rd: Reg(2), imm: 77 },
            Instr::St { rs: Reg(2), rs1: Reg(1), offset: 8 },
            Instr::Ld { rd: Reg(3), rs1: Reg(1), offset: 8 },
            Instr::Halt,
        ];
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(3)), 77);
        assert_eq!(c.mem_read(memmap::VAR_BASE + 8), 77);
    }

    #[test]
    fn load_use_interlock_stalls() {
        let base = [
            Instr::Set { rd: Reg(1), imm: memmap::VAR_BASE as i64 },
            Instr::Ld { rd: Reg(2), rs1: Reg(1), offset: 0 },
        ];
        // Dependent use immediately after the load.
        let mut dep = base.to_vec();
        dep.push(alu(AluOp::Add, 3, 2, Operand::Imm(1)));
        dep.push(Instr::Halt);
        // Independent instruction instead.
        let mut indep = base.to_vec();
        indep.push(alu(AluOp::Add, 3, 4, Operand::Imm(1)));
        indep.push(Instr::Halt);
        let dep_out = cpu().run(&dep, 0, 0, &[]);
        let indep_out = cpu().run(&indep, 0, 0, &[]);
        assert_eq!(dep_out.stalls, 1);
        assert_eq!(indep_out.stalls, 0);
        assert_eq!(dep_out.cycles, indep_out.cycles + 1);
        assert!(dep_out.energy_j > indep_out.energy_j);
    }

    #[test]
    fn emit_mmio_records_events() {
        let code = [
            Instr::Set { rd: Reg(1), imm: memmap::EMIT_BASE as i64 },
            Instr::Set { rd: Reg(2), imm: 42 },
            Instr::St { rs: Reg(2), rs1: Reg(1), offset: 24 }, // event 3
            Instr::Halt,
        ];
        let out = cpu().run(&code, 0, 0, &[]);
        assert_eq!(out.emitted, vec![(3, 42)]);
        assert!(out.shared_ops.is_empty());
    }

    #[test]
    fn shared_window_reads_and_writes() {
        let code = [
            Instr::Set { rd: Reg(1), imm: memmap::SHARED_BASE as i64 },
            Instr::Ld { rd: Reg(2), rs1: Reg(1), offset: 16 },
            Instr::St { rs: Reg(2), rs1: Reg(1), offset: 32 },
            Instr::Halt,
        ];
        let out = cpu().run(&code, 0, 0, &[1234]);
        assert_eq!(
            out.shared_ops,
            vec![
                (memmap::SHARED_BASE + 16, false, 0),
                (memmap::SHARED_BASE + 32, true, 1234)
            ]
        );
        assert_eq!(cpu().run(&code, 0, 0, &[7]).shared_ops.len(), 2);
    }

    #[test]
    fn multicycle_ops_cost_more_cycles() {
        let quick = [alu(AluOp::Add, 1, 1, Operand::Imm(1)), Instr::Halt];
        let mul = [alu(AluOp::Smul, 1, 1, Operand::Imm(3)), Instr::Halt];
        let div = [alu(AluOp::Sdiv, 1, 1, Operand::Imm(3)), Instr::Halt];
        let cq = cpu().run(&quick, 0, 0, &[]).cycles;
        let cm = cpu().run(&mul, 0, 0, &[]).cycles;
        let cd = cpu().run(&div, 0, 0, &[]).cycles;
        assert!(cq < cm && cm < cd);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let code = [
            Instr::Set { rd: Reg(1), imm: 9 },
            alu(AluOp::Sdiv, 2, 1, Operand::Imm(0)),
            alu(AluOp::Srem, 3, 1, Operand::Imm(0)),
            Instr::Halt,
        ];
        let mut c = cpu();
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(2)), 0);
        assert_eq!(c.reg(Reg(3)), 0);
    }

    #[test]
    fn ifetch_recording() {
        let code = [
            Instr::Set { rd: Reg(1), imm: 5 }, // 2 slots
            Instr::Nop,
            Instr::Halt,
        ];
        let mut c = cpu();
        c.set_record_ifetch(true);
        let out = c.run(&code, 0, 0x100, &[]);
        assert_eq!(out.ifetch, vec![0x100, 0x104, 0x108, 0x10C]);
    }

    #[test]
    fn register_windows_overlap_outs_and_ins() {
        // Write %r8 (out), save, read %r24 (in of the new window): the
        // SPARC overlap must deliver the value across the call boundary.
        let code = [
            Instr::Set { rd: Reg(8), imm: 99 },
            Instr::Save,
            alu(AluOp::Add, 1, 24, Operand::Imm(1)), // global g1 = in + 1
            Instr::Restore,
            Instr::Halt,
        ];
        let mut c = cpu();
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(1)), 100, "callee saw the caller's out register");
        assert_eq!(c.cwp(), 0, "restore returned to the original window");
        assert_eq!(c.reg(Reg(8)), 99, "caller's window is intact");
    }

    #[test]
    fn locals_are_private_per_window() {
        let code = [
            Instr::Set { rd: Reg(16), imm: 7 }, // caller local
            Instr::Save,
            Instr::Set { rd: Reg(16), imm: 8 }, // callee local
            Instr::Restore,
            Instr::Halt,
        ];
        let mut c = cpu();
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(16)), 7, "callee's locals did not clobber the caller's");
    }

    #[test]
    fn globals_survive_window_rotation() {
        let code = [
            Instr::Set { rd: Reg(1), imm: 42 },
            Instr::Save,
            Instr::Save,
            Instr::Halt,
        ];
        let mut c = cpu();
        c.run(&code, 0, 0, &[]);
        assert_eq!(c.reg(Reg(1)), 42);
    }

    #[test]
    fn window_overflow_costs_a_trap() {
        // N_WINDOWS - 1 saves fit; the (N-1)th triggers the overflow
        // penalty.
        let saves_no_trap = N_WINDOWS - 2;
        let mut code: Vec<Instr> = (0..saves_no_trap).map(|_| Instr::Save).collect();
        code.push(Instr::Halt);
        let cheap = cpu().run(&code, 0, 0, &[]);
        let mut code: Vec<Instr> = (0..saves_no_trap + 1).map(|_| Instr::Save).collect();
        code.push(Instr::Halt);
        let spill = cpu().run(&code, 0, 0, &[]);
        assert!(
            spill.cycles > cheap.cycles + WINDOW_TRAP_CYCLES / 2,
            "overflow save must pay the trap ({} vs {})",
            spill.cycles,
            cheap.cycles
        );
        assert!(spill.energy_j > cheap.energy_j);
    }

    #[test]
    #[should_panic(expected = "restore without matching save")]
    fn unbalanced_restore_panics() {
        let code = [Instr::Restore, Instr::Halt];
        cpu().run(&code, 0, 0, &[]);
    }

    #[test]
    fn energy_accumulates_deterministically() {
        let code = [
            Instr::Set { rd: Reg(1), imm: 3 },
            alu(AluOp::Smul, 2, 1, Operand::Reg(Reg(1))),
            Instr::Halt,
        ];
        let a = cpu().run(&code, 0, 0, &[]);
        let b = cpu().run(&code, 0, 0, &[]);
        assert_eq!(a, b);
        assert!(a.energy_j > 0.0);
    }
}
