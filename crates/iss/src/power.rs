//! Instruction-level power models (Tiwari et al., [6] in the paper).
//!
//! Each instruction has a measured *base energy*; executing two
//! instructions back to back adds a *circuit-state overhead* that depends
//! on the pair (approximated per class pair, as in the original work);
//! pipeline stalls add a per-cycle stall energy.
//!
//! Two variants are modeled:
//!
//! * [`PowerModelKind::SparcLite`] — energy **independent of operand
//!   data**. The paper (§5.2) reports that for the SPARClite the measured
//!   data dependence is negligible, which is exactly why energy caching
//!   introduces *zero* error in Table 1.
//! * [`PowerModelKind::DataDependent`] — adds a term proportional to the
//!   Hamming weight of the operand values, emulating the DSP-like
//!   processors for which the paper predicts a non-zero caching error.

use crate::isa::{AluOp, Instr};

/// Instruction classes for the circuit-state overhead table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Simple ALU (add/sub/logical/shift).
    Alu,
    /// Multiply.
    Mul,
    /// Divide / remainder.
    Div,
    /// Load.
    Load,
    /// Store.
    Store,
    /// Branch.
    Branch,
    /// Nop / halt.
    Nop,
}

impl InstrClass {
    /// Classifies an instruction.
    pub fn of(i: &Instr) -> InstrClass {
        match i {
            Instr::Alu { op, .. } => match op {
                AluOp::Smul => InstrClass::Mul,
                AluOp::Sdiv | AluOp::Srem => InstrClass::Div,
                _ => InstrClass::Alu,
            },
            Instr::Set { .. } => InstrClass::Alu,
            Instr::Ld { .. } => InstrClass::Load,
            Instr::St { .. } => InstrClass::Store,
            Instr::Branch { .. } => InstrClass::Branch,
            Instr::Nop | Instr::Halt => InstrClass::Nop,
            // Window rotation exercises the register file like a load.
            Instr::Save | Instr::Restore => InstrClass::Load,
        }
    }

    fn index(self) -> usize {
        match self {
            InstrClass::Alu => 0,
            InstrClass::Mul => 1,
            InstrClass::Div => 2,
            InstrClass::Load => 3,
            InstrClass::Store => 4,
            InstrClass::Branch => 5,
            InstrClass::Nop => 6,
        }
    }
}

/// Which instruction-level power model variant to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PowerModelKind {
    /// Measurement-based SPARClite model: data-independent (default).
    #[default]
    SparcLite,
    /// DSP-like model: per-instruction energy grows with the Hamming
    /// weight of the operands (ablation knob for caching error).
    DataDependent,
}

/// The instruction-level energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    kind: PowerModelKind,
    /// Base energy per class, nanojoules per instruction.
    base_nj: [f64; 7],
    /// Circuit-state overhead between consecutive classes, nanojoules.
    overhead_nj: [[f64; 7]; 7],
    /// Energy per stall cycle, nanojoules.
    stall_nj: f64,
    /// Extra energy per set operand bit (DataDependent only), nanojoules.
    per_bit_nj: f64,
}

impl PowerModel {
    /// The measurement-based SPARClite model (values in the few-nJ range,
    /// consistent with a 3.3 V embedded core of the era).
    pub fn sparclite() -> Self {
        // Classes: Alu, Mul, Div, Load, Store, Branch, Nop.
        let base_nj = [2.4, 5.8, 14.0, 4.1, 3.6, 2.1, 1.2];
        let mut overhead_nj = [[0.0; 7]; 7];
        // Symmetric overheads, larger across functional-unit boundaries.
        let pairs: &[(InstrClass, InstrClass, f64)] = &[
            (InstrClass::Alu, InstrClass::Mul, 0.9),
            (InstrClass::Alu, InstrClass::Div, 1.1),
            (InstrClass::Alu, InstrClass::Load, 0.6),
            (InstrClass::Alu, InstrClass::Store, 0.6),
            (InstrClass::Alu, InstrClass::Branch, 0.3),
            (InstrClass::Alu, InstrClass::Nop, 0.2),
            (InstrClass::Mul, InstrClass::Div, 1.3),
            (InstrClass::Mul, InstrClass::Load, 1.0),
            (InstrClass::Mul, InstrClass::Store, 1.0),
            (InstrClass::Mul, InstrClass::Branch, 0.8),
            (InstrClass::Mul, InstrClass::Nop, 0.5),
            (InstrClass::Div, InstrClass::Load, 1.2),
            (InstrClass::Div, InstrClass::Store, 1.2),
            (InstrClass::Div, InstrClass::Branch, 0.9),
            (InstrClass::Div, InstrClass::Nop, 0.6),
            (InstrClass::Load, InstrClass::Store, 0.4),
            (InstrClass::Load, InstrClass::Branch, 0.5),
            (InstrClass::Load, InstrClass::Nop, 0.3),
            (InstrClass::Store, InstrClass::Branch, 0.5),
            (InstrClass::Store, InstrClass::Nop, 0.3),
            (InstrClass::Branch, InstrClass::Nop, 0.2),
        ];
        for &(a, b, v) in pairs {
            overhead_nj[a.index()][b.index()] = v;
            overhead_nj[b.index()][a.index()] = v;
        }
        PowerModel {
            kind: PowerModelKind::SparcLite,
            base_nj,
            overhead_nj,
            stall_nj: 1.5,
            per_bit_nj: 0.0,
        }
    }

    /// The DSP-like data-dependent variant.
    pub fn data_dependent() -> Self {
        PowerModel {
            kind: PowerModelKind::DataDependent,
            per_bit_nj: 0.08,
            ..PowerModel::sparclite()
        }
    }

    /// Builds the variant selected by `kind`.
    pub fn of_kind(kind: PowerModelKind) -> Self {
        match kind {
            PowerModelKind::SparcLite => PowerModel::sparclite(),
            PowerModelKind::DataDependent => PowerModel::data_dependent(),
        }
    }

    /// Which variant this is.
    pub fn kind(&self) -> PowerModelKind {
        self.kind
    }

    /// Whether per-instruction energy depends on operand data.
    pub fn is_data_dependent(&self) -> bool {
        self.per_bit_nj != 0.0
    }

    /// Energy of one instruction in joules, given the previous
    /// instruction's class and the operand values consumed.
    pub fn instr_energy_j(
        &self,
        instr: &Instr,
        prev_class: Option<InstrClass>,
        operands: (i64, i64),
    ) -> f64 {
        let class = InstrClass::of(instr);
        let mut nj = self.base_nj[class.index()] * instr.slots() as f64;
        if let Some(p) = prev_class {
            nj += self.overhead_nj[p.index()][class.index()];
        }
        if self.per_bit_nj != 0.0 {
            let bits = operands.0.count_ones() + operands.1.count_ones();
            nj += self.per_bit_nj * bits as f64;
        }
        nj * 1e-9
    }

    /// Energy of one stall cycle in joules.
    pub fn stall_energy_j(&self) -> f64 {
        self.stall_nj * 1e-9
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::sparclite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Operand, Reg};

    fn add() -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Operand::Reg(Reg(3)),
            set_cc: false,
        }
    }

    fn mul() -> Instr {
        Instr::Alu {
            op: AluOp::Smul,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Operand::Reg(Reg(3)),
            set_cc: false,
        }
    }

    #[test]
    fn classification() {
        assert_eq!(InstrClass::of(&add()), InstrClass::Alu);
        assert_eq!(InstrClass::of(&mul()), InstrClass::Mul);
        assert_eq!(InstrClass::of(&Instr::Nop), InstrClass::Nop);
        assert_eq!(
            InstrClass::of(&Instr::Ld { rd: Reg(1), rs1: Reg(2), offset: 0 }),
            InstrClass::Load
        );
    }

    #[test]
    fn sparclite_is_data_independent() {
        let m = PowerModel::sparclite();
        assert!(!m.is_data_dependent());
        let e1 = m.instr_energy_j(&add(), None, (0, 0));
        let e2 = m.instr_energy_j(&add(), None, (i64::MAX, -1));
        assert_eq!(e1, e2, "SPARClite energy must not depend on data");
    }

    #[test]
    fn data_dependent_varies_with_operands() {
        let m = PowerModel::data_dependent();
        assert!(m.is_data_dependent());
        let quiet = m.instr_energy_j(&add(), None, (0, 0));
        let busy = m.instr_energy_j(&add(), None, (-1, -1));
        assert!(busy > quiet);
    }

    #[test]
    fn overhead_added_on_class_change() {
        let m = PowerModel::sparclite();
        let same = m.instr_energy_j(&add(), Some(InstrClass::Alu), (0, 0));
        let cross = m.instr_energy_j(&add(), Some(InstrClass::Mul), (0, 0));
        assert!(cross > same);
    }

    #[test]
    fn overhead_is_symmetric() {
        let m = PowerModel::sparclite();
        let a_after_m = m.instr_energy_j(&add(), Some(InstrClass::Mul), (0, 0))
            - m.instr_energy_j(&add(), None, (0, 0));
        let m_after_a = m.instr_energy_j(&mul(), Some(InstrClass::Alu), (0, 0))
            - m.instr_energy_j(&mul(), None, (0, 0));
        assert!((a_after_m - m_after_a).abs() < 1e-18);
    }

    #[test]
    fn expensive_ops_cost_more() {
        let m = PowerModel::sparclite();
        let add_e = m.instr_energy_j(&add(), None, (0, 0));
        let mul_e = m.instr_energy_j(&mul(), None, (0, 0));
        assert!(mul_e > add_e);
        assert!(m.stall_energy_j() > 0.0);
    }

    #[test]
    fn set_costs_two_slots() {
        let m = PowerModel::sparclite();
        let set = Instr::Set { rd: Reg(1), imm: 1 << 30 };
        let e_set = m.instr_energy_j(&set, None, (0, 0));
        let e_add = m.instr_energy_j(&add(), None, (0, 0));
        assert!((e_set - 2.0 * e_add).abs() < 1e-15);
    }
}
