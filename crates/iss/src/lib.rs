//! `iss` — a SPARClite-flavoured instruction-set simulator with
//! instruction-level power models.
//!
//! This crate is the SPARCsim analogue of the DATE 2000 power
//! co-estimation paper: the software-mapped parts of the system run on a
//! cycle-approximate [`Cpu`] (register interlocks, delayed branches,
//! multi-cycle multiply/divide) enhanced with the measurement-based
//! instruction-level power model of Tiwari et al. ([`PowerModel`]).
//!
//! Layers:
//!
//! * [`isa`] — the instruction set and memory map;
//! * [`Cpu`] — the execution engine with timing + energy accounting;
//! * [`codegen`] — POLIS-style software synthesis from CFSM bodies,
//!   including the isolated per-macro-op templates used by the
//!   macro-model characterization flow;
//! * [`SwCfsm`] — the "enhanced ISS" interface the co-simulation master
//!   drives (state in, cycles + energy out, breakpoint at transition end).
//!
//! # Examples
//!
//! ```
//! use iss::{Cpu, PowerModel};
//! use iss::isa::{Instr, Reg, Operand, AluOp};
//!
//! let code = [
//!     Instr::Set { rd: Reg(1), imm: 20 },
//!     Instr::Alu { op: AluOp::Add, rd: Reg(2), rs1: Reg(1), rs2: Operand::Imm(22), set_cc: false },
//!     Instr::Halt,
//! ];
//! let mut cpu = Cpu::new(PowerModel::sparclite());
//! let out = cpu.run(&code, 0, 0, &[]);
//! assert_eq!(cpu.reg(Reg(2)), 42);
//! assert!(out.energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
mod cpu;
pub mod isa;
mod power;
mod runner;

pub use cpu::{Cpu, Icc, RunOutcome};
pub use power::{InstrClass, PowerModel, PowerModelKind};
pub use runner::{SwCfsm, SwRun};
