//! The enhanced-ISS interface used by the co-simulation master.
//!
//! The paper's master sends the ISS "state, input values, breakpoints,
//! commands" and receives "cycles, power" (Fig. 2b). [`SwCfsm`] is that
//! interface: per activation it writes the live variable and event values
//! into the simulated processor's memory, runs the compiled transition
//! code to its breakpoint (`Halt`), and returns cycle, energy, emission
//! and shared-memory information.

use crate::codegen::{compile, CodegenError, Program, EVENT_VAL_BASE};
use crate::cpu::Cpu;
use crate::isa::memmap;
use crate::power::PowerModel;
use cfsm::{Cfsm, EventId, TransitionId};

/// The result of one software activation.
#[derive(Debug, Clone, PartialEq)]
pub struct SwRun {
    /// Clock cycles, including stalls.
    pub cycles: u64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Instructions retired.
    pub instrs: u64,
    /// Stall cycles.
    pub stalls: u64,
    /// Final variable values.
    pub vars_out: Vec<i64>,
    /// Events emitted, in program order.
    pub emitted: Vec<(EventId, Option<i64>)>,
    /// Shared-memory transactions `(addr, write?, data)`.
    pub mem_ops: Vec<(u64, bool, i64)>,
}

/// A software-mapped CFSM: compiled program + persistent CPU.
///
/// # Examples
///
/// ```
/// use cfsm::{Cfsm, Cfg, Stmt, Expr, EventId, TransitionId};
/// use iss::{SwCfsm, PowerModel};
///
/// let mut b = Cfsm::builder("inc");
/// let s = b.state("s");
/// let v = b.var("v", 0);
/// let t = b.transition(s, vec![EventId(0)], None,
///     Cfg::straight_line(vec![Stmt::Assign {
///         var: v,
///         expr: Expr::add(Expr::Var(v), Expr::Const(1)),
///     }]), s);
/// let machine = b.finish()?;
/// let mut sw = SwCfsm::new(&machine, PowerModel::sparclite(), &|_| true)?;
/// let run = sw.run_transition(t, &[41], &|_| 0, &[]);
/// assert_eq!(run.vars_out, vec![42]);
/// assert!(run.cycles > 0 && run.energy_j > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SwCfsm {
    program: Program,
    cpu: Cpu,
    n_vars: usize,
    carries_value: Vec<bool>,
}

impl SwCfsm {
    /// Compiles `machine` and prepares a processor.
    ///
    /// `event_carries_value(e)` tells whether event `e` carries a value
    /// (so emissions can be reported as `Some`/`None` faithfully).
    ///
    /// # Errors
    ///
    /// Returns the [`CodegenError`] if compilation fails.
    pub fn new(
        machine: &Cfsm,
        power: PowerModel,
        event_carries_value: &dyn Fn(EventId) -> bool,
    ) -> Result<Self, CodegenError> {
        let program = compile(machine, 0x0010_0000)?;
        // Precompute the carries-value table for every event mentioned.
        let mut max_ev = 0u32;
        for t in &program.transitions {
            for e in &t.event_reads {
                max_ev = max_ev.max(e.0 + 1);
            }
        }
        for t in machine.transitions() {
            for b in t.body.blocks() {
                for s in b.stmts.iter() {
                    if let cfsm::Stmt::Emit { event, .. } = s {
                        max_ev = max_ev.max(event.0 + 1);
                    }
                }
            }
        }
        let carries_value = (0..max_ev)
            .map(|e| event_carries_value(EventId(e)))
            .collect();
        Ok(SwCfsm {
            program,
            cpu: Cpu::new(power),
            n_vars: machine.vars().len(),
            carries_value,
        })
    }

    /// The compiled program (layout inspection, I-fetch trace generation).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The simulated processor.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Runs one transition to its breakpoint.
    ///
    /// `vars_in` supplies all variable values; `event_value` the values of
    /// the (triggering) input events; `shared_reads` the ordered
    /// functional data for shared-memory loads.
    pub fn run_transition(
        &mut self,
        transition: TransitionId,
        vars_in: &[i64],
        event_value: &dyn Fn(EventId) -> i64,
        shared_reads: &[i64],
    ) -> SwRun {
        assert_eq!(vars_in.len(), self.n_vars, "wrong variable count");
        let tc = &self.program.transitions[transition.0 as usize];
        // State transfer: variables and event values into the mailbox.
        for (v, &val) in vars_in.iter().enumerate() {
            self.cpu
                .mem_write(memmap::VAR_BASE + v as u64 * memmap::VAR_STRIDE, val);
        }
        for &e in &tc.event_reads {
            self.cpu
                .mem_write(EVENT_VAL_BASE + e.0 as u64 * 8, event_value(e));
        }
        let out = self.cpu.run(
            &self.program.code,
            tc.entry,
            self.program.base_addr,
            shared_reads,
        );
        let vars_out = (0..self.n_vars)
            .map(|v| {
                self.cpu
                    .mem_read(memmap::VAR_BASE + v as u64 * memmap::VAR_STRIDE)
            })
            .collect();
        let emitted = out
            .emitted
            .iter()
            .map(|&(e, v)| {
                let carries = self
                    .carries_value
                    .get(e as usize)
                    .copied()
                    .unwrap_or(false);
                (EventId(e), if carries { Some(v) } else { None })
            })
            .collect();
        SwRun {
            cycles: out.cycles,
            energy_j: out.energy_j,
            instrs: out.instrs,
            stalls: out.stalls,
            vars_out,
            emitted,
            mem_ops: out.shared_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{BlockId, Cfg, CfgBuilder, Expr, NullEnv, Stmt, Terminator, VarId};

    fn machine_with(body: Cfg, n_vars: usize) -> Cfsm {
        let mut b = Cfsm::builder("m");
        let s = b.state("s");
        for v in 0..n_vars {
            b.var(format!("v{v}"), 0);
        }
        b.transition(s, vec![EventId(0)], None, body, s);
        b.finish().expect("valid machine")
    }

    fn sw(machine: &Cfsm) -> SwCfsm {
        SwCfsm::new(machine, PowerModel::sparclite(), &|_| true).expect("compiles")
    }

    #[test]
    fn straight_line_matches_interpreter() {
        let body = Cfg::straight_line(vec![
            Stmt::Assign {
                var: VarId(1),
                expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(100)),
            },
            Stmt::Assign {
                var: VarId(0),
                expr: Expr::bin(cfsm::BinOp::Mul, Expr::Var(VarId(1)), Expr::Const(3)),
            },
        ]);
        let mut vars = [7i64, 0];
        body.execute(&mut vars, &mut NullEnv);
        let m = machine_with(body, 2);
        let mut s = sw(&m);
        let run = s.run_transition(TransitionId(0), &[7, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out, vars.to_vec());
        assert!(run.instrs > 0);
    }

    #[test]
    fn loop_matches_interpreter_and_scales_cycles() {
        // while v0 > 0 { v1 += v0; v0 -= 1 }
        let mut cb = CfgBuilder::new();
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(VarId(0)), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        cb.block(
            vec![
                Stmt::Assign {
                    var: VarId(1),
                    expr: Expr::add(Expr::Var(VarId(1)), Expr::Var(VarId(0))),
                },
                Stmt::Assign {
                    var: VarId(0),
                    expr: Expr::sub(Expr::Var(VarId(0)), Expr::Const(1)),
                },
            ],
            Terminator::Goto(BlockId(0)),
        );
        cb.block(vec![], Terminator::Return);
        let body = cb.finish().expect("valid");
        let m = machine_with(body, 2);
        let mut s = sw(&m);
        let r5 = s.run_transition(TransitionId(0), &[5, 0], &|_| 0, &[]);
        assert_eq!(r5.vars_out, vec![0, 15]);
        let r20 = s.run_transition(TransitionId(0), &[20, 0], &|_| 0, &[]);
        assert_eq!(r20.vars_out, vec![0, 210]);
        assert!(r20.cycles > r5.cycles);
        assert!(r20.energy_j > r5.energy_j);
    }

    #[test]
    fn emissions_reported_in_order_with_values() {
        let body = Cfg::straight_line(vec![
            Stmt::Emit {
                event: EventId(2),
                value: Some(Expr::add(Expr::Var(VarId(0)), Expr::Const(1))),
            },
            Stmt::Emit {
                event: EventId(1),
                value: None,
            },
        ]);
        let m = machine_with(body, 1);
        let mut s = SwCfsm::new(&m, PowerModel::sparclite(), &|e| e == EventId(2))
            .expect("compiles");
        let run = s.run_transition(TransitionId(0), &[9], &|_| 0, &[]);
        assert_eq!(run.emitted, vec![(EventId(2), Some(10)), (EventId(1), None)]);
    }

    #[test]
    fn event_values_reach_the_body() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::sub(Expr::EventValue(EventId(3)), Expr::EventValue(EventId(1))),
        }]);
        let m = machine_with(body, 1);
        let mut s = sw(&m);
        let run = s.run_transition(
            TransitionId(0),
            &[0],
            &|e| match e.0 {
                3 => 50,
                1 => 8,
                _ => 0,
            },
            &[],
        );
        assert_eq!(run.vars_out, vec![42]);
    }

    #[test]
    fn shared_memory_roundtrip() {
        let body = Cfg::straight_line(vec![
            Stmt::MemRead {
                var: VarId(0),
                addr: Expr::Const(64),
            },
            Stmt::MemWrite {
                addr: Expr::Const(72),
                value: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
            },
        ]);
        let m = machine_with(body, 1);
        let mut s = sw(&m);
        let run = s.run_transition(TransitionId(0), &[0], &|_| 0, &[99]);
        assert_eq!(run.vars_out, vec![99]);
        assert_eq!(
            run.mem_ops,
            vec![
                (memmap::SHARED_BASE + 64, false, 0),
                (memmap::SHARED_BASE + 72, true, 100)
            ]
        );
    }

    #[test]
    fn energy_is_deterministic_for_same_inputs() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::bin(cfsm::BinOp::Xor, Expr::Var(VarId(0)), Expr::Const(0x55)),
        }]);
        let m = machine_with(body, 1);
        let mut s1 = sw(&m);
        let mut s2 = sw(&m);
        let a = s1.run_transition(TransitionId(0), &[1], &|_| 0, &[]);
        let b = s2.run_transition(TransitionId(0), &[1], &|_| 0, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn sparclite_energy_data_independent_but_datadep_varies() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(1),
            expr: Expr::add(Expr::Var(VarId(0)), Expr::Var(VarId(1))),
        }]);
        let m = machine_with(body, 2);
        // SPARClite: same path, different data → identical energy.
        // (Fresh instances so inter-activation circuit state is equal.)
        let e1 = sw(&m)
            .run_transition(TransitionId(0), &[0, 0], &|_| 0, &[])
            .energy_j;
        let e2 = sw(&m)
            .run_transition(TransitionId(0), &[i32::MAX as i64, 12345], &|_| 0, &[])
            .energy_j;
        assert_eq!(e1, e2);
        // Data-dependent model: energies differ.
        let d1 = SwCfsm::new(&m, PowerModel::data_dependent(), &|_| true)
            .expect("compiles")
            .run_transition(TransitionId(0), &[0, 0], &|_| 0, &[])
            .energy_j;
        let d2 = SwCfsm::new(&m, PowerModel::data_dependent(), &|_| true)
            .expect("compiles")
            .run_transition(TransitionId(0), &[i32::MAX as i64, 12345], &|_| 0, &[])
            .energy_j;
        assert!(d2 > d1);
    }

    #[test]
    #[should_panic(expected = "wrong variable count")]
    fn wrong_var_count_panics() {
        let m = machine_with(Cfg::empty(), 2);
        let mut s = sw(&m);
        s.run_transition(TransitionId(0), &[1], &|_| 0, &[]);
    }
}
