//! `socverify` — pre-simulation verification of CFSM networks.
//!
//! A mis-wired system specification (an event nobody produces, a
//! wait-for cycle between machines, a state no input sequence reaches)
//! only surfaces during co-simulation as a watchdog `Degraded` timeout —
//! after burning the full simulation budget. This crate checks the
//! *static* event producer/consumer graph of a [`Network`] before any
//! simulation runs, so a doomed spec fails in microseconds with a
//! precise diagnosis and the watchdog becomes the backstop, not the
//! detector (the Verilock recipe, ported from asynchronous circuits to
//! POLIS-style CFSM networks).
//!
//! # The graph model
//!
//! From each machine's transitions the checker extracts
//!
//! * **consumers**: the events named in transition *triggers* (firing a
//!   transition consumes them from the single-place input buffers), and
//! * **producers**: the events named in `emit` statements anywhere in a
//!   transition body (a *may*-emit over-approximation), plus the
//!   environment stimulus.
//!
//! A monotone fixpoint then propagates *producibility*: an event is
//! producible if the environment injects it or some transition whose
//! source state is reachable and whose triggers are all producible may
//! emit it; a state is reachable if it is initial or the target of such
//! a transition. Guards are ignored (treated as potentially true), which
//! makes the analysis an **over-approximation of what can happen**:
//! whatever the fixpoint says can never fire truly never fires, under
//! any stimulus ordering and any fault plan — faults drop, duplicate or
//! delay occurrences but never mint new event types.
//!
//! # Diagnostics
//!
//! | Diagnostic | Severity | Meaning |
//! |---|---|---|
//! | [`Diagnostic::OrphanEvent`] | error | consumed but never produced |
//! | [`Diagnostic::WaitCycle`] | error | machines each blocked on an event only producible inside the cycle |
//! | [`Diagnostic::DeadConsumer`] | warning | produced but never listened to (wasted energy) |
//! | [`Diagnostic::UnreachableState`] | warning | control state no input sequence reaches |
//!
//! Error-severity findings are sound: a flagged spec really cannot make
//! the flagged progress. The checker is *not* complete — a spec whose
//! deadlock hinges on guard values or event orderings passes the static
//! check and is still caught by the watchdog at run time.
//!
//! # Examples
//!
//! ```
//! use cfsm::{Cfsm, Cfg, EventDef, Implementation, Network};
//! use socverify::{verify_network, Severity};
//! use std::collections::BTreeSet;
//!
//! // A machine waiting on an event nobody produces.
//! let mut nb = Network::builder();
//! let phantom = nb.event(EventDef::pure("PHANTOM"));
//! let mut mb = Cfsm::builder("victim");
//! let s = mb.state("s");
//! mb.transition(s, vec![phantom], None, Cfg::empty(), s);
//! nb.process(mb.finish()?, Implementation::Hw);
//! let net = nb.finish()?;
//!
//! let report = verify_network(&net, &BTreeSet::new());
//! assert!(report.has_errors());
//! assert_eq!(report.errors().count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;

use cfsm::{EventId, Network, ProcId, StateId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not progress-blocking (wasted energy, dead spec).
    Warning,
    /// The flagged machines/events can never make progress; simulating
    /// the spec would end in a watchdog timeout or a silent no-op.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One typed verification diagnostic. Names (not ids) are stored so a
/// rendered report is meaningful without the network at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// An event appears in transition triggers but no machine may emit
    /// it and the environment never injects it: every consuming
    /// transition is permanently disabled.
    OrphanEvent {
        /// The never-produced event.
        event: String,
        /// Machines with the event in a trigger.
        consumers: Vec<String>,
    },
    /// An event is produced (by a machine or the stimulus) but no
    /// machine listens to it: every delivery is broadcast to nobody —
    /// wasted energy in the emitting machine.
    DeadConsumer {
        /// The never-consumed event.
        event: String,
        /// Who produces it (machine names, or `environment`).
        producers: Vec<String>,
    },
    /// A strongly connected set of machines in which every machine is
    /// blocked on an event only producible inside the set: none of them
    /// can ever fire first.
    WaitCycle {
        /// The machines forming the cycle.
        machines: Vec<String>,
        /// The blocking events exchanged inside the cycle.
        events: Vec<String>,
    },
    /// A control state no input sequence reaches from the machine's
    /// initial state (dead specification).
    UnreachableState {
        /// The machine.
        machine: String,
        /// The unreachable state's name.
        state: String,
    },
}

impl Diagnostic {
    /// The severity this diagnostic is reported at.
    pub fn severity(&self) -> Severity {
        match self {
            Diagnostic::OrphanEvent { .. } | Diagnostic::WaitCycle { .. } => Severity::Error,
            Diagnostic::DeadConsumer { .. } | Diagnostic::UnreachableState { .. } => {
                Severity::Warning
            }
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(names: &[String]) -> String {
            names
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            Diagnostic::OrphanEvent { event, consumers } => write!(
                f,
                "event `{event}` is consumed by {} but never produced",
                join(consumers)
            ),
            Diagnostic::DeadConsumer { event, producers } => write!(
                f,
                "event `{event}` (produced by {}) is never consumed; its deliveries are wasted",
                join(producers)
            ),
            Diagnostic::WaitCycle { machines, events } => write!(
                f,
                "wait cycle: machines {} each block on an event ({}) only producible inside the cycle",
                join(machines),
                join(events)
            ),
            Diagnostic::UnreachableState { machine, state } => write!(
                f,
                "state `{state}` of machine `{machine}` is unreachable from its initial state"
            ),
        }
    }
}

/// One finding: a diagnostic at its severity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious the finding is.
    pub severity: Severity,
    /// What was found.
    pub diagnostic: Diagnostic,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.severity, self.diagnostic)
    }
}

/// The result of statically verifying one network: every finding,
/// errors first (then warnings), each group in deterministic
/// event/machine order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, errors before warnings.
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    /// Whether any error-severity finding is present (the spec is
    /// doomed: some machine or event can never make progress).
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is entirely empty (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The rendered multi-line diagnosis (same text as `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification: {} error(s), {} warning(s)",
            self.errors().count(),
            self.warnings().count()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Statically verifies a network against an environment: `environment`
/// is the set of events the stimulus injects. Read-only — the network
/// is not mutated and no simulation state is touched.
///
/// See the [module docs](crate) for the graph model and the
/// soundness/completeness claims of each diagnostic.
pub fn verify_network(network: &Network, environment: &BTreeSet<EventId>) -> VerifyReport {
    let n_procs = network.process_count();
    let ev_name = |e: EventId| network.events()[e.0 as usize].name.clone();
    let proc_name = |p: ProcId| network.cfsm(p).name().to_string();

    // --- Monotone may-fire fixpoint -----------------------------------
    let mut producible: BTreeSet<EventId> = environment.clone();
    let mut reachable: Vec<BTreeSet<StateId>> = network
        .process_ids()
        .map(|p| BTreeSet::from([network.cfsm(p).initial_state()]))
        .collect();
    let mut fireable: Vec<Vec<bool>> = network
        .process_ids()
        .map(|p| vec![false; network.cfsm(p).transitions().len()])
        .collect();
    loop {
        let mut changed = false;
        for p in network.process_ids() {
            let m = network.cfsm(p);
            for (i, t) in m.transitions().iter().enumerate() {
                if fireable[p.0 as usize][i]
                    || !reachable[p.0 as usize].contains(&t.from)
                    || !t.trigger.iter().all(|e| producible.contains(e))
                {
                    continue;
                }
                fireable[p.0 as usize][i] = true;
                changed = true;
                reachable[p.0 as usize].insert(t.to);
                producible.extend(t.emits());
            }
        }
        if !changed {
            break;
        }
    }

    let mut errors = Vec::new();
    let mut warnings = Vec::new();

    // --- OrphanEvent: consumed but never produced ---------------------
    let mut consumers_of: BTreeMap<EventId, BTreeSet<ProcId>> = BTreeMap::new();
    for p in network.process_ids() {
        for t in network.cfsm(p).transitions() {
            for &e in &t.trigger {
                consumers_of.entry(e).or_default().insert(p);
            }
        }
    }
    for (&e, consumers) in &consumers_of {
        if environment.contains(&e) || network.producers(e).next().is_some() {
            continue;
        }
        errors.push(Diagnostic::OrphanEvent {
            event: ev_name(e),
            consumers: consumers.iter().map(|&p| proc_name(p)).collect(),
        });
    }

    // --- DeadConsumer: produced but nobody listens --------------------
    for (i, def) in network.events().iter().enumerate() {
        let e = EventId(i as u32);
        let mut producers: Vec<String> = network.producers(e).map(proc_name).collect();
        if environment.contains(&e) {
            producers.push("environment".to_string());
        }
        if producers.is_empty() || network.listeners(e).next().is_some() {
            continue;
        }
        warnings.push(Diagnostic::DeadConsumer {
            event: def.name.clone(),
            producers,
        });
    }

    // --- WaitCycle: SCCs of mutually blocked machines -----------------
    let stuck: Vec<bool> = (0..n_procs)
        .map(|p| !fireable[p].is_empty() && fireable[p].iter().all(|&f| !f))
        .collect();
    // Edges between stuck machines: consumer -> potential producer of a
    // blocking (non-producible) trigger event, with the event recorded.
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_procs];
    let mut blocking: Vec<BTreeSet<EventId>> = vec![BTreeSet::new(); n_procs];
    for p in network.process_ids() {
        if !stuck[p.0 as usize] {
            continue;
        }
        let m = network.cfsm(p);
        for t in m.transitions() {
            if !reachable[p.0 as usize].contains(&t.from) {
                continue;
            }
            for &e in &t.trigger {
                if producible.contains(&e) {
                    continue;
                }
                for q in network.producers(e) {
                    if stuck[q.0 as usize] {
                        edges[p.0 as usize].insert(q.0 as usize);
                        blocking[p.0 as usize].insert(e);
                    }
                }
            }
        }
    }
    for scc in sccs(&edges) {
        let cyclic = scc.len() > 1 || edges[scc[0]].contains(&scc[0]);
        if !cyclic || !scc.iter().all(|&p| stuck[p]) {
            continue;
        }
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let mut events: BTreeSet<EventId> = BTreeSet::new();
        for &p in &scc {
            // Blocking events whose potential producers include a cycle
            // member — the events the cycle is waiting on itself for.
            for &e in &blocking[p] {
                if network.producers(e).any(|q| members.contains(&(q.0 as usize))) {
                    events.insert(e);
                }
            }
        }
        let mut machines: Vec<usize> = scc.clone();
        machines.sort_unstable();
        errors.push(Diagnostic::WaitCycle {
            machines: machines
                .into_iter()
                .map(|p| proc_name(ProcId(p as u32)))
                .collect(),
            events: events.into_iter().map(ev_name).collect(),
        });
    }

    // --- UnreachableState ---------------------------------------------
    for p in network.process_ids() {
        let m = network.cfsm(p);
        for (s, name) in m.states().iter().enumerate() {
            if !reachable[p.0 as usize].contains(&StateId(s as u32)) {
                warnings.push(Diagnostic::UnreachableState {
                    machine: m.name().to_string(),
                    state: name.clone(),
                });
            }
        }
    }

    let findings = errors
        .into_iter()
        .chain(warnings)
        .map(|diagnostic| Finding {
            severity: diagnostic.severity(),
            diagnostic,
        })
        .collect();
    VerifyReport { findings }
}

/// Strongly connected components of a small adjacency-set digraph
/// (iterative Tarjan; deterministic output order by lowest member).
fn sccs(edges: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let adj: Vec<Vec<usize>> = edges.iter().map(|s| s.iter().copied().collect()).collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Explicit DFS frames: (node, next child offset).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&(v, ci)) = frames.last() {
            if ci < adj[v].len() {
                if let Some(f) = frames.last_mut() {
                    f.1 += 1;
                }
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out.sort_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{Cfg, Cfsm, EventDef, Expr, Implementation, Stmt};

    /// A single-state machine that consumes `trig` and emits `emits`.
    fn relay(name: &str, trig: Vec<EventId>, emits: &[EventId]) -> Cfsm {
        let mut b = Cfsm::builder(name);
        let s = b.state("run");
        let stmts = emits
            .iter()
            .map(|&e| Stmt::Emit { event: e, value: None })
            .collect();
        b.transition(s, trig, None, Cfg::straight_line(stmts), s);
        b.finish().expect("valid machine")
    }

    fn env(events: &[EventId]) -> BTreeSet<EventId> {
        events.iter().copied().collect()
    }

    #[test]
    fn clean_pipeline_passes() {
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let mid = nb.event(EventDef::pure("MID"));
        nb.process(relay("head", vec![kick], &[mid]), Implementation::Hw);
        nb.process(relay("tail", vec![mid], &[]), Implementation::Sw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[kick]));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn orphan_event_is_an_error() {
        let mut nb = Network::builder();
        let phantom = nb.event(EventDef::pure("PHANTOM"));
        nb.process(relay("victim", vec![phantom], &[]), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &BTreeSet::new());
        assert!(report.has_errors());
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::OrphanEvent { event, consumers }
                if event == "PHANTOM" && consumers == &["victim".to_string()]
        ));
    }

    #[test]
    fn stimulus_discharges_an_orphan() {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        nb.process(relay("m", vec![go], &[]), Implementation::Hw);
        let net = nb.finish().expect("valid");
        assert!(verify_network(&net, &BTreeSet::new()).has_errors());
        assert!(!verify_network(&net, &env(&[go])).has_errors());
    }

    #[test]
    fn dead_consumer_is_a_warning() {
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let shout = nb.event(EventDef::pure("SHOUT"));
        nb.process(relay("crier", vec![kick], &[shout]), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[kick]));
        assert!(!report.has_errors());
        assert_eq!(report.warnings().count(), 1);
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::DeadConsumer { event, .. } if event == "SHOUT"
        ));
    }

    #[test]
    fn unheard_stimulus_is_a_dead_consumer() {
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let noise = nb.event(EventDef::pure("NOISE"));
        nb.process(relay("m", vec![kick], &[]), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[kick, noise]));
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::DeadConsumer { event, producers }
                if event == "NOISE" && producers == &["environment".to_string()]
        ));
    }

    #[test]
    fn two_machine_wait_cycle_detected() {
        let mut nb = Network::builder();
        let ea = nb.event(EventDef::pure("EA"));
        let eb = nb.event(EventDef::pure("EB"));
        nb.process(relay("a", vec![ea], &[eb]), Implementation::Hw);
        nb.process(relay("b", vec![eb], &[ea]), Implementation::Sw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &BTreeSet::new());
        assert!(report.has_errors());
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::WaitCycle { machines, events }
                if machines == &["a".to_string(), "b".to_string()] && events.len() == 2
        ));
    }

    #[test]
    fn kicked_ring_is_not_a_wait_cycle() {
        // Same ring topology, but the environment can start it: no error.
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let ea = nb.event(EventDef::pure("EA"));
        let eb = nb.event(EventDef::pure("EB"));
        let mut b = Cfsm::builder("a");
        let s = b.state("run");
        b.transition(
            s,
            vec![kick],
            None,
            Cfg::straight_line(vec![Stmt::Emit { event: eb, value: None }]),
            s,
        );
        b.transition(
            s,
            vec![ea],
            None,
            Cfg::straight_line(vec![Stmt::Emit { event: eb, value: None }]),
            s,
        );
        nb.process(b.finish().expect("valid machine"), Implementation::Hw);
        nb.process(relay("b", vec![eb], &[ea]), Implementation::Sw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[kick]));
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn conjunction_on_partly_producible_triggers_is_a_wait_cycle() {
        // M1 needs [GO, E2]; GO comes from the environment but E2 only
        // from M2, which needs E1 only from M1.
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let e1 = nb.event(EventDef::pure("E1"));
        let e2 = nb.event(EventDef::pure("E2"));
        nb.process(relay("m1", vec![go, e2], &[e1]), Implementation::Hw);
        nb.process(relay("m2", vec![e1], &[e2]), Implementation::Sw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[go]));
        assert!(report.has_errors());
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::WaitCycle { machines, .. } if machines.len() == 2
        ));
    }

    #[test]
    fn chained_starvation_reports_the_root_orphan_only() {
        // m0 waits on an orphan; m1 waits on m0. The root cause is the
        // orphan — no wait cycle should be reported.
        let mut nb = Network::builder();
        let phantom = nb.event(EventDef::pure("PHANTOM"));
        let d1 = nb.event(EventDef::pure("D1"));
        nb.process(relay("m0", vec![phantom], &[d1]), Implementation::Hw);
        nb.process(relay("m1", vec![d1], &[]), Implementation::Sw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &BTreeSet::new());
        assert_eq!(report.errors().count(), 1);
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::OrphanEvent { event, .. } if event == "PHANTOM"
        ));
    }

    #[test]
    fn unreachable_state_is_a_warning() {
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let mut b = Cfsm::builder("m");
        let run = b.state("run");
        let limbo = b.state("limbo");
        b.transition(run, vec![kick], None, Cfg::empty(), run);
        // `limbo` has an outgoing transition but nothing ever enters it.
        b.transition(limbo, vec![kick], None, Cfg::empty(), run);
        nb.process(b.finish().expect("valid machine"), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[kick]));
        assert!(!report.has_errors());
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::UnreachableState { machine, state }
                if machine == "m" && state == "limbo"
        ));
    }

    #[test]
    fn state_reachability_is_event_aware() {
        // A state only reachable through a transition triggered by a
        // non-producible event is unreachable.
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let phantom = nb.event(EventDef::pure("PHANTOM"));
        let mut b = Cfsm::builder("m");
        let run = b.state("run");
        let deep = b.state("deep");
        b.transition(run, vec![kick], None, Cfg::empty(), run);
        b.transition(run, vec![phantom], None, Cfg::empty(), deep);
        nb.process(b.finish().expect("valid machine"), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &env(&[kick]));
        let unreachable: Vec<_> = report
            .findings
            .iter()
            .filter(|f| matches!(f.diagnostic, Diagnostic::UnreachableState { .. }))
            .collect();
        assert_eq!(unreachable.len(), 1);
    }

    #[test]
    fn self_wait_is_a_wait_cycle() {
        // A machine that can only be started by its own output.
        let mut nb = Network::builder();
        let own = nb.event(EventDef::pure("OWN"));
        nb.process(relay("selfish", vec![own], &[own]), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let report = verify_network(&net, &BTreeSet::new());
        assert!(report.has_errors());
        assert!(matches!(
            &report.findings[0].diagnostic,
            Diagnostic::WaitCycle { machines, .. } if machines == &["selfish".to_string()]
        ));
    }

    #[test]
    fn report_renders_counts_and_findings() {
        let mut nb = Network::builder();
        let phantom = nb.event(EventDef::pure("PHANTOM"));
        nb.process(relay("victim", vec![phantom], &[]), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let text = verify_network(&net, &BTreeSet::new()).render();
        assert!(text.contains("1 error(s)"), "{text}");
        assert!(text.contains("PHANTOM"), "{text}");
        assert!(text.contains("[error]"), "{text}");
    }

    #[test]
    fn reports_are_deterministic_and_eq() {
        let build = || {
            let mut nb = Network::builder();
            let a = nb.event(EventDef::pure("A"));
            let b = nb.event(EventDef::pure("B"));
            nb.process(relay("x", vec![a], &[b]), Implementation::Hw);
            nb.process(relay("y", vec![b], &[a]), Implementation::Sw);
            nb.finish().expect("valid")
        };
        let r1 = verify_network(&build(), &BTreeSet::new());
        let r2 = verify_network(&build(), &BTreeSet::new());
        assert_eq!(r1, r2);
    }

    #[test]
    fn guards_are_ignored_soundly() {
        // A guard that is always false at run time does not produce a
        // static error: the checker over-approximates enabledness.
        let mut nb = Network::builder();
        let kick = nb.event(EventDef::pure("KICK"));
        let out = nb.event(EventDef::pure("OUT"));
        let mut b = Cfsm::builder("guarded");
        let s = b.state("run");
        b.var("v", 0);
        b.transition(
            s,
            vec![kick],
            Some(Expr::gt(Expr::Var(cfsm::VarId(0)), Expr::Const(1_000))),
            Cfg::straight_line(vec![Stmt::Emit { event: out, value: None }]),
            s,
        );
        nb.process(b.finish().expect("valid machine"), Implementation::Hw);
        nb.process(relay("sink", vec![out], &[]), Implementation::Sw);
        let net = nb.finish().expect("valid");
        assert!(!verify_network(&net, &env(&[kick])).has_errors());
    }
}
