//! Seeded random system generator for fuzzing the checker *and* the
//! watchdog (Verilock's Gen1–Gen10 pattern).
//!
//! Each generated system comes with a ground-truth [`Expectation`]:
//!
//! * [`Expectation::Live`] systems are live *by construction* — every
//!   machine is reachable from the environment stimulus and every run
//!   quiesces. They must pass [`verify_network`](crate::verify_network)
//!   with zero error-severity findings and run to `Completed` when
//!   simulated, including under non-dropping fault plans.
//! * [`Expectation::Deadlocking`] systems embed a known progress bug
//!   (an orphan trigger, a wait cycle, a conjunction that can never be
//!   satisfied) in a *cluster* of machines listed in
//!   [`GeneratedSystem::dead_machines`]. The checker must report at
//!   least one error-severity finding. So that the bug is *also*
//!   observable dynamically (a quiescent deadlock would just drain the
//!   event queue and report `Completed`), every deadlocking system
//!   carries a self-perpetuating `ticker` machine that keeps the
//!   simulation busy forever: under a finite watchdog budget the run
//!   must terminate `Degraded`, with every machine in `dead_machines`
//!   showing zero firings.
//!
//! Ten families are drawn from, five per expectation:
//!
//! | family           | expectation  | shape                                          |
//! |------------------|--------------|------------------------------------------------|
//! | `chain`          | live         | stimulus-kicked relay pipeline                 |
//! | `fanout`         | live         | one root broadcasts to several leaf consumers  |
//! | `fanin`          | live         | several sources join at a conjunction trigger  |
//! | `ring`           | live         | guarded token ring, bounded lap counter        |
//! | `diamond`        | live         | valued-event split/join with arithmetic        |
//! | `orphan`         | deadlocking  | victim waits on an event nobody produces       |
//! | `waitcycle2`     | deadlocking  | two machines each waiting on the other         |
//! | `waitcycle_n`    | deadlocking  | k-machine circular wait                        |
//! | `chained_orphan` | deadlocking  | a whole pipeline starved behind an orphan      |
//! | `conj_deadlock`  | deadlocking  | conjunction forever missing one leg            |
//!
//! All randomness flows through [`detrand::Rng`], so a seed fully
//! determines the system — CI replays the same specs forever.

use cfsm::{
    Cfg, Cfsm, EventDef, EventId, EventOccurrence, Expr, Implementation, Network, Stmt,
    ValidateCfsmError,
};
use detrand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// Ground truth for a generated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Passes the checker; every simulation run quiesces (`Completed`).
    Live,
    /// Flagged by the checker; simulation burns its watchdog budget
    /// (`Degraded`) while the `dead_machines` never fire.
    Deadlocking,
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expectation::Live => write!(f, "live"),
            Expectation::Deadlocking => write!(f, "deadlocking"),
        }
    }
}

/// A generator-internal construction failure (a bug in a family
/// constructor, not a property of the seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenError(String);

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec generator: {}", self.0)
    }
}

impl std::error::Error for GenError {}

fn internal(what: &str, e: impl fmt::Display) -> GenError {
    GenError(format!("{what}: {e}"))
}

/// A generated system plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    /// Unique name, `<family>_s<seed>`.
    pub name: String,
    /// The family that produced it (see module docs).
    pub family: &'static str,
    /// Ground truth the checker and the watchdog are fuzzed against.
    pub expectation: Expectation,
    /// The CFSM network.
    pub network: Network,
    /// Environment events: `(delivery cycle, occurrence)`.
    pub stimulus: Vec<(u64, EventOccurrence)>,
    /// Per-process priorities, indexed by `ProcId`.
    pub priorities: Vec<u8>,
    /// Machines guaranteed never to fire (empty for live systems).
    pub dead_machines: Vec<String>,
}

impl GeneratedSystem {
    /// The set of event types the environment stimulus injects — the
    /// `environment` argument for
    /// [`verify_network`](crate::verify_network).
    pub fn stimulus_events(&self) -> BTreeSet<EventId> {
        self.stimulus.iter().map(|(_, occ)| occ.event).collect()
    }
}

/// Generates a random system of either expectation.
///
/// # Errors
///
/// Returns [`GenError`] only on an internal constructor bug.
pub fn generate(seed: u64) -> Result<GeneratedSystem, GenError> {
    let mut rng = Rng::new(seed ^ 0x5eed_5eed_5eed_5eed);
    if rng.bool_with(0.5) {
        generate_live(seed)
    } else {
        generate_deadlocking(seed)
    }
}

/// Generates a random known-live system.
///
/// # Errors
///
/// Returns [`GenError`] only on an internal constructor bug.
pub fn generate_live(seed: u64) -> Result<GeneratedSystem, GenError> {
    let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    match rng.usize_in(0, 5) {
        0 => gen_chain(seed, &mut rng),
        1 => gen_fanout(seed, &mut rng),
        2 => gen_fanin(seed, &mut rng),
        3 => gen_ring(seed, &mut rng),
        _ => gen_diamond(seed, &mut rng),
    }
}

/// Generates a random known-deadlocking system.
///
/// # Errors
///
/// Returns [`GenError`] only on an internal constructor bug.
pub fn generate_deadlocking(seed: u64) -> Result<GeneratedSystem, GenError> {
    let mut rng = Rng::new(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(2));
    match rng.usize_in(0, 5) {
        0 => gen_orphan(seed, &mut rng),
        1 => gen_waitcycle(seed, &mut rng, 2, "waitcycle2"),
        2 => {
            let k = rng.usize_in(3, 6);
            gen_waitcycle(seed, &mut rng, k, "waitcycle_n")
        }
        3 => gen_chained_orphan(seed, &mut rng),
        _ => gen_conj_deadlock(seed, &mut rng),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// A one-state machine: on `trigger` (conjunction), do a little
/// arithmetic and emit every event in `emits`.
fn relay(name: &str, trigger: Vec<EventId>, emits: &[EventId]) -> Result<Cfsm, GenError> {
    let mut b = Cfsm::builder(name);
    let s = b.state("s0");
    let n = b.var("n", 0);
    let mut stmts = vec![Stmt::Assign {
        var: n,
        expr: Expr::add(Expr::Var(n), Expr::Const(1)),
    }];
    for &e in emits {
        stmts.push(Stmt::Emit {
            event: e,
            value: None,
        });
    }
    b.transition(s, trigger, None, Cfg::straight_line(stmts), s);
    b.finish()
        .map_err(|e: ValidateCfsmError| internal(name, e))
}

fn random_mapping(rng: &mut Rng) -> Implementation {
    if rng.bool_with(0.5) {
        Implementation::Hw
    } else {
        Implementation::Sw
    }
}

fn random_priorities(rng: &mut Rng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.u64_in(0, 4) as u8).collect()
}

/// The self-perpetuating heartbeat added to every deadlocking system:
/// `on TICK { work; emit TICK }`, primed by one stimulus occurrence.
/// It alone keeps the event queue non-empty forever, so a finite
/// watchdog budget is guaranteed to trip.
fn ticker(tick: EventId) -> Result<Cfsm, GenError> {
    relay("ticker", vec![tick], &[tick])
}

fn finish_network(
    name: &str,
    nb: cfsm::NetworkBuilder,
) -> Result<Network, GenError> {
    nb.finish().map_err(|e| internal(name, e))
}

// ---------------------------------------------------------------------------
// Live families
// ---------------------------------------------------------------------------

/// `chain`: KICK → m0 → m1 → … → m(k-1); the last machine consumes and
/// computes but emits nothing.
fn gen_chain(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let k = rng.usize_in(2, 7);
    let mut nb = Network::builder();
    let kick = nb.event(EventDef::pure("KICK"));
    let links: Vec<EventId> = (0..k - 1)
        .map(|i| nb.event(EventDef::pure(format!("LINK_{i}"))))
        .collect();
    let mut machines = Vec::new();
    for i in 0..k {
        let trig = if i == 0 { kick } else { links[i - 1] };
        let emits: &[EventId] = if i + 1 < k {
            std::slice::from_ref(&links[i])
        } else {
            &[]
        };
        machines.push(relay(&format!("stage_{i}"), vec![trig], emits)?);
    }
    for m in machines {
        let mapping = random_mapping(rng);
        nb.process(m, mapping);
    }
    let shots = rng.u64_in(1, 4);
    let stimulus = (0..shots)
        .map(|j| (1 + j * 1_000, EventOccurrence::pure(kick)))
        .collect();
    Ok(GeneratedSystem {
        name: format!("chain_s{seed}"),
        family: "chain",
        expectation: Expectation::Live,
        priorities: random_priorities(rng, k),
        network: finish_network("chain", nb)?,
        stimulus,
        dead_machines: Vec::new(),
    })
}

/// `fanout`: KICK → root broadcasts BR_1..BR_f, one leaf per branch.
fn gen_fanout(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let f = rng.usize_in(2, 5);
    let mut nb = Network::builder();
    let kick = nb.event(EventDef::pure("KICK"));
    let branches: Vec<EventId> = (0..f)
        .map(|i| nb.event(EventDef::pure(format!("BR_{i}"))))
        .collect();
    let root = relay("root", vec![kick], &branches)?;
    let root_map = random_mapping(rng);
    nb.process(root, root_map);
    for (i, &br) in branches.iter().enumerate() {
        let leaf = relay(&format!("leaf_{i}"), vec![br], &[])?;
        let mapping = random_mapping(rng);
        nb.process(leaf, mapping);
    }
    Ok(GeneratedSystem {
        name: format!("fanout_s{seed}"),
        family: "fanout",
        expectation: Expectation::Live,
        priorities: random_priorities(rng, f + 1),
        network: finish_network("fanout", nb)?,
        stimulus: vec![(1, EventOccurrence::pure(kick))],
        dead_machines: Vec::new(),
    })
}

/// `fanin`: f sources each kicked independently emit PART_j; a joiner
/// fires on the conjunction of all parts and emits DONE to a sink.
fn gen_fanin(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let f = rng.usize_in(2, 4);
    let mut nb = Network::builder();
    let kicks: Vec<EventId> = (0..f)
        .map(|j| nb.event(EventDef::pure(format!("KICK_{j}"))))
        .collect();
    let parts: Vec<EventId> = (0..f)
        .map(|j| nb.event(EventDef::pure(format!("PART_{j}"))))
        .collect();
    let done = nb.event(EventDef::pure("DONE"));
    for j in 0..f {
        let src = relay(&format!("source_{j}"), vec![kicks[j]], &[parts[j]])?;
        let mapping = random_mapping(rng);
        nb.process(src, mapping);
    }
    let joiner = relay("joiner", parts.clone(), &[done])?;
    let joiner_map = random_mapping(rng);
    nb.process(joiner, joiner_map);
    let sink = relay("sink", vec![done], &[])?;
    let sink_map = random_mapping(rng);
    nb.process(sink, sink_map);
    let stimulus = kicks
        .iter()
        .enumerate()
        .map(|(j, &k)| (1 + j as u64 * 10, EventOccurrence::pure(k)))
        .collect();
    Ok(GeneratedSystem {
        name: format!("fanin_s{seed}"),
        family: "fanin",
        expectation: Expectation::Live,
        priorities: random_priorities(rng, f + 2),
        network: finish_network("fanin", nb)?,
        stimulus,
        dead_machines: Vec::new(),
    })
}

/// `ring`: a token ring whose head re-injects the token only while
/// `laps < bound` — live because the lap counter makes it quiesce, and
/// clean under the checker because the guard is conservatively ignored.
fn gen_ring(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let k = rng.usize_in(2, 6);
    let bound = rng.i64_in(1, 6);
    let mut nb = Network::builder();
    let kick = nb.event(EventDef::pure("KICK"));
    let ring: Vec<EventId> = (0..k)
        .map(|i| nb.event(EventDef::pure(format!("RING_{i}"))))
        .collect();

    let mut b = Cfsm::builder("head");
    let idle = b.state("idle");
    let run = b.state("run");
    let laps = b.var("laps", 0);
    b.transition(
        idle,
        vec![kick],
        None,
        Cfg::straight_line(vec![Stmt::Emit {
            event: ring[0],
            value: None,
        }]),
        run,
    );
    b.transition(
        run,
        vec![ring[k - 1]],
        Some(Expr::lt(Expr::Var(laps), Expr::Const(bound))),
        Cfg::straight_line(vec![
            Stmt::Assign {
                var: laps,
                expr: Expr::add(Expr::Var(laps), Expr::Const(1)),
            },
            Stmt::Emit {
                event: ring[0],
                value: None,
            },
        ]),
        run,
    );
    let head = b.finish().map_err(|e| internal("head", e))?;
    let head_map = random_mapping(rng);
    nb.process(head, head_map);
    for i in 1..k {
        let hop = relay(&format!("hop_{i}"), vec![ring[i - 1]], &[ring[i]])?;
        let mapping = random_mapping(rng);
        nb.process(hop, mapping);
    }
    Ok(GeneratedSystem {
        name: format!("ring_s{seed}"),
        family: "ring",
        expectation: Expectation::Live,
        priorities: random_priorities(rng, k),
        network: finish_network("ring", nb)?,
        stimulus: vec![(1, EventOccurrence::pure(kick))],
        dead_machines: Vec::new(),
    })
}

/// `diamond`: a valued split/join — the root fans a value out to two
/// arms, each arm transforms it, a joiner adds the halves back together
/// and a sink accumulates the result.
fn gen_diamond(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let mut nb = Network::builder();
    let src = nb.event(EventDef::pure("SRC"));
    let left = nb.event(EventDef::valued("LEFT"));
    let right = nb.event(EventDef::valued("RIGHT"));
    let jl = nb.event(EventDef::valued("JOIN_L"));
    let jr = nb.event(EventDef::valued("JOIN_R"));
    let out = nb.event(EventDef::valued("OUT"));
    let seed_val = rng.i64_in(1, 100);

    let mut b = Cfsm::builder("root");
    let s = b.state("s0");
    b.transition(
        s,
        vec![src],
        None,
        Cfg::straight_line(vec![
            Stmt::Emit {
                event: left,
                value: Some(Expr::Const(seed_val)),
            },
            Stmt::Emit {
                event: right,
                value: Some(Expr::Const(seed_val + 1)),
            },
        ]),
        s,
    );
    let root = b.finish().map_err(|e| internal("root", e))?;

    let arm = |name: &str, trig: EventId, emit: EventId, delta: i64| -> Result<Cfsm, GenError> {
        let mut b = Cfsm::builder(name);
        let s = b.state("s0");
        b.transition(
            s,
            vec![trig],
            None,
            Cfg::straight_line(vec![Stmt::Emit {
                event: emit,
                value: Some(Expr::add(Expr::EventValue(trig), Expr::Const(delta))),
            }]),
            s,
        );
        b.finish().map_err(|e| internal(name, e))
    };
    let arm_l = arm("arm_left", left, jl, rng.i64_in(1, 10))?;
    let arm_r = arm("arm_right", right, jr, rng.i64_in(1, 10))?;

    let mut b = Cfsm::builder("joiner");
    let s = b.state("s0");
    b.transition(
        s,
        vec![jl, jr],
        None,
        Cfg::straight_line(vec![Stmt::Emit {
            event: out,
            value: Some(Expr::add(Expr::EventValue(jl), Expr::EventValue(jr))),
        }]),
        s,
    );
    let joiner = b.finish().map_err(|e| internal("joiner", e))?;

    let mut b = Cfsm::builder("sink");
    let s = b.state("s0");
    let acc = b.var("acc", 0);
    b.transition(
        s,
        vec![out],
        None,
        Cfg::straight_line(vec![Stmt::Assign {
            var: acc,
            expr: Expr::add(Expr::Var(acc), Expr::EventValue(out)),
        }]),
        s,
    );
    let sink = b.finish().map_err(|e| internal("sink", e))?;

    for m in [root, arm_l, arm_r, joiner, sink] {
        let mapping = random_mapping(rng);
        nb.process(m, mapping);
    }
    let shots = rng.u64_in(1, 3);
    let stimulus = (0..shots)
        .map(|j| (1 + j * 2_000, EventOccurrence::pure(src)))
        .collect();
    Ok(GeneratedSystem {
        name: format!("diamond_s{seed}"),
        family: "diamond",
        expectation: Expectation::Live,
        priorities: random_priorities(rng, 5),
        network: finish_network("diamond", nb)?,
        stimulus,
        dead_machines: Vec::new(),
    })
}

// ---------------------------------------------------------------------------
// Deadlocking families (all carry the ticker heartbeat)
// ---------------------------------------------------------------------------

/// `orphan`: a victim waits on PHANTOM, which no machine and no
/// stimulus produces, alongside a perfectly healthy decoy chain.
fn gen_orphan(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let decoys = rng.usize_in(1, 4);
    let mut nb = Network::builder();
    let tick = nb.event(EventDef::pure("TICK"));
    let kick = nb.event(EventDef::pure("KICK"));
    let phantom = nb.event(EventDef::pure("PHANTOM"));
    let links: Vec<EventId> = (0..decoys)
        .map(|i| nb.event(EventDef::pure(format!("LINK_{i}"))))
        .collect();
    let tick_map = random_mapping(rng);
    nb.process(ticker(tick)?, tick_map);
    let victim = relay("victim", vec![phantom], &[])?;
    let victim_map = random_mapping(rng);
    nb.process(victim, victim_map);
    for i in 0..decoys {
        let trig = if i == 0 { kick } else { links[i - 1] };
        let emits: &[EventId] = if i + 1 < decoys {
            std::slice::from_ref(&links[i])
        } else {
            &[]
        };
        let decoy = relay(&format!("decoy_{i}"), vec![trig], emits)?;
        let mapping = random_mapping(rng);
        nb.process(decoy, mapping);
    }
    Ok(GeneratedSystem {
        name: format!("orphan_s{seed}"),
        family: "orphan",
        expectation: Expectation::Deadlocking,
        priorities: random_priorities(rng, decoys + 2),
        network: finish_network("orphan", nb)?,
        stimulus: vec![
            (1, EventOccurrence::pure(tick)),
            (2, EventOccurrence::pure(kick)),
        ],
        dead_machines: vec!["victim".to_string()],
    })
}

/// `waitcycle2` / `waitcycle_n`: k machines in a circular wait — each
/// waits on an event only its stuck neighbour could produce.
fn gen_waitcycle(
    seed: u64,
    rng: &mut Rng,
    k: usize,
    family: &'static str,
) -> Result<GeneratedSystem, GenError> {
    let mut nb = Network::builder();
    let tick = nb.event(EventDef::pure("TICK"));
    let waits: Vec<EventId> = (0..k)
        .map(|i| nb.event(EventDef::pure(format!("WAIT_{i}"))))
        .collect();
    let tick_map = random_mapping(rng);
    nb.process(ticker(tick)?, tick_map);
    let mut dead = Vec::new();
    for i in 0..k {
        // locked_i waits on WAIT_i and would emit WAIT_{(i+1) % k}.
        let name = format!("locked_{i}");
        let m = relay(&name, vec![waits[i]], &[waits[(i + 1) % k]])?;
        let mapping = random_mapping(rng);
        nb.process(m, mapping);
        dead.push(name);
    }
    Ok(GeneratedSystem {
        name: format!("{family}_s{seed}"),
        family,
        expectation: Expectation::Deadlocking,
        priorities: random_priorities(rng, k + 1),
        network: finish_network(family, nb)?,
        stimulus: vec![(1, EventOccurrence::pure(tick))],
        dead_machines: dead,
    })
}

/// `chained_orphan`: a whole relay pipeline starved behind a single
/// orphan trigger at its head — the checker must blame the root cause
/// (the orphan), not every downstream machine.
fn gen_chained_orphan(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let c = rng.usize_in(2, 5);
    let mut nb = Network::builder();
    let tick = nb.event(EventDef::pure("TICK"));
    let phantom = nb.event(EventDef::pure("PHANTOM"));
    let links: Vec<EventId> = (0..c - 1)
        .map(|i| nb.event(EventDef::pure(format!("LINK_{i}"))))
        .collect();
    let tick_map = random_mapping(rng);
    nb.process(ticker(tick)?, tick_map);
    let mut dead = Vec::new();
    for i in 0..c {
        let trig = if i == 0 { phantom } else { links[i - 1] };
        let emits: &[EventId] = if i + 1 < c {
            std::slice::from_ref(&links[i])
        } else {
            &[]
        };
        let name = format!("starved_{i}");
        let m = relay(&name, vec![trig], emits)?;
        let mapping = random_mapping(rng);
        nb.process(m, mapping);
        dead.push(name);
    }
    Ok(GeneratedSystem {
        name: format!("chained_orphan_s{seed}"),
        family: "chained_orphan",
        expectation: Expectation::Deadlocking,
        priorities: random_priorities(rng, c + 1),
        network: finish_network("chained_orphan", nb)?,
        stimulus: vec![(1, EventOccurrence::pure(tick))],
        dead_machines: dead,
    })
}

/// `conj_deadlock`: a conjunction trigger forever missing one leg —
/// `half_a` needs `[GO, ECHO]` but `ECHO` only comes from `half_b`,
/// which itself waits on `half_a`'s output.
fn gen_conj_deadlock(seed: u64, rng: &mut Rng) -> Result<GeneratedSystem, GenError> {
    let mut nb = Network::builder();
    let tick = nb.event(EventDef::pure("TICK"));
    let go = nb.event(EventDef::pure("GO"));
    let fwd = nb.event(EventDef::pure("FWD"));
    let echo = nb.event(EventDef::pure("ECHO"));
    let tick_map = random_mapping(rng);
    nb.process(ticker(tick)?, tick_map);
    let half_a = relay("half_a", vec![go, echo], &[fwd])?;
    let a_map = random_mapping(rng);
    nb.process(half_a, a_map);
    let half_b = relay("half_b", vec![fwd], &[echo])?;
    let b_map = random_mapping(rng);
    nb.process(half_b, b_map);
    Ok(GeneratedSystem {
        name: format!("conj_deadlock_s{seed}"),
        family: "conj_deadlock",
        expectation: Expectation::Deadlocking,
        priorities: random_priorities(rng, 3),
        network: finish_network("conj_deadlock", nb)?,
        stimulus: vec![
            (1, EventOccurrence::pure(tick)),
            (2, EventOccurrence::pure(go)),
        ],
        dead_machines: vec!["half_a".to_string(), "half_b".to_string()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_network;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let a = generate(seed).expect("gen a");
            let b = generate(seed).expect("gen b");
            assert_eq!(a.name, b.name);
            assert_eq!(a.family, b.family);
            assert_eq!(a.expectation, b.expectation);
            assert_eq!(a.stimulus, b.stimulus);
            assert_eq!(a.priorities, b.priorities);
            assert_eq!(a.dead_machines, b.dead_machines);
            assert_eq!(a.network.process_count(), b.network.process_count());
        }
    }

    #[test]
    fn live_families_pass_the_checker() {
        for seed in 0..60 {
            let s = generate_live(seed).expect("live spec");
            assert_eq!(s.expectation, Expectation::Live);
            assert!(s.dead_machines.is_empty());
            let report = verify_network(&s.network, &s.stimulus_events());
            assert!(
                !report.has_errors(),
                "live {} (seed {seed}) flagged:\n{report}",
                s.name
            );
        }
    }

    #[test]
    fn deadlocking_families_are_flagged() {
        for seed in 0..60 {
            let s = generate_deadlocking(seed).expect("deadlocking spec");
            assert_eq!(s.expectation, Expectation::Deadlocking);
            assert!(!s.dead_machines.is_empty());
            let report = verify_network(&s.network, &s.stimulus_events());
            assert!(
                report.has_errors(),
                "deadlocking {} (seed {seed}) passed the checker",
                s.name
            );
        }
    }

    #[test]
    fn dead_machines_name_real_processes() {
        for seed in 0..30 {
            let s = generate_deadlocking(seed).expect("deadlocking spec");
            for name in &s.dead_machines {
                assert!(
                    s.network.process_by_name(name).is_some(),
                    "{}: dead machine `{name}` not in network",
                    s.name
                );
            }
        }
    }

    #[test]
    fn every_seed_covers_both_directions() {
        let mut live = 0;
        let mut dead = 0;
        for seed in 0..40 {
            match generate(seed).expect("gen").expectation {
                Expectation::Live => live += 1,
                Expectation::Deadlocking => dead += 1,
            }
        }
        assert!(live > 5 && dead > 5, "lopsided mix: {live} live, {dead} dead");
    }

    #[test]
    fn priorities_cover_every_process() {
        for seed in 0..30 {
            let s = generate(seed).expect("gen");
            assert_eq!(s.priorities.len(), s.network.process_count());
        }
    }
}
