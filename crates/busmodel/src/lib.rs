//! `busmodel` — a parameterizable behavioral model of the SOC
//! integration architecture (shared bus + arbiter + DMA).
//!
//! Reproduces the bus power estimation of §3 of the DATE 2000 paper: the
//! power consumed in the bus interconnect and drivers is
//!
//! ```text
//! P_bus = ½ · Vdd² · f · Σ_lines C_eff(line_i) · A(line_i)
//! ```
//!
//! where the per-line effective capacitance comes from the user's
//! floorplan budget and the switching activity `A` is **computed during
//! co-simulation** from the actual sequence of bus transactions. The
//! model is parameterizable in exactly the knobs the paper sweeps —
//! master priorities, address/data widths, and the DMA block size — and
//! can be re-configured without recompiling the system description.
//!
//! Transfers are split into DMA blocks of at most
//! [`BusConfig::dma_block_size`] words; every block pays one arbitration
//! handshake (request/grant line activity plus arbiter cycles). This is
//! the mechanism behind Table 1/Figure 7: a larger DMA size amortizes
//! handshakes over more words, reducing both energy and simulated time.
//!
//! # Examples
//!
//! ```
//! use busmodel::{Bus, BusConfig};
//!
//! let mut bus = Bus::new(BusConfig::date2000_defaults());
//! let m = bus.register_master("checksum", 2);
//! let ops: Vec<(u64, i64, bool)> = (0..8).map(|i| (0x100 + i, i as i64, false)).collect();
//! let t = bus.transfer(m, 0, &ops);
//! assert!(t.energy_j > 0.0);
//! assert_eq!(t.blocks, 2); // 8 words at DMA size 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Identifier of a bus master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MasterId(pub u32);

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "master{}", self.0)
    }
}

/// Electrical and protocol parameters of the shared bus.
#[derive(Debug, Clone, PartialEq)]
pub struct BusConfig {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Effective capacitance per bus line, farads (wiring + drivers +
    /// repeaters, from the floorplan budget).
    pub cap_per_line_f: f64,
    /// Address bus width in bits.
    pub addr_width: u32,
    /// Data bus width in bits.
    pub data_width: u32,
    /// Maximum words per DMA block (one arbitration per block).
    pub dma_block_size: u32,
    /// Arbitration handshake duration, cycles per block.
    pub arbitration_cycles: u64,
    /// Transfer duration, cycles per word.
    pub cycles_per_word: u64,
    /// Arbiter logic + request/grant line energy per handshake, joules.
    pub handshake_energy_j: f64,
}

impl BusConfig {
    /// The parameters of §5.3: Vdd = 3.3 V, C_bit = 10 nF, 8-bit address
    /// and data buses; DMA size 4, 2-cycle arbitration. The shared bus
    /// runs slower than the processor clock (4 master cycles per word),
    /// as was typical for arbitrated SoC buses of the era.
    pub fn date2000_defaults() -> Self {
        BusConfig {
            vdd: 3.3,
            cap_per_line_f: 10e-9,
            addr_width: 8,
            data_width: 8,
            dma_block_size: 4,
            arbitration_cycles: 2,
            cycles_per_word: 4,
            // Two control-line round trips at C_bit plus arbiter logic.
            handshake_energy_j: 0.5 * 3.3 * 3.3 * 10e-9 * 4.0,
        }
    }

    /// Returns a copy with a different DMA block size (the Table 1/2 and
    /// Figure 6/7 sweep knob).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_dma_block_size(&self, size: u32) -> Self {
        assert!(size > 0, "DMA block size must be nonzero");
        BusConfig {
            dma_block_size: size,
            ..self.clone()
        }
    }

    /// Energy of one full-swing transition on one line, joules.
    pub fn line_switch_energy_j(&self) -> f64 {
        0.5 * self.vdd * self.vdd * self.cap_per_line_f
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::date2000_defaults()
    }
}

/// The outcome of one transfer (one or more DMA blocks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Cycle at which the bus was granted (≥ the requested ready time).
    pub start: u64,
    /// Cycle at which the transfer completed.
    pub end: u64,
    /// Energy dissipated on the bus + arbiter, joules.
    pub energy_j: f64,
    /// Number of DMA blocks (arbitration handshakes).
    pub blocks: u64,
}

impl Transfer {
    /// Transfer duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusStats {
    /// Total words transferred.
    pub words: u64,
    /// Total DMA blocks (handshakes).
    pub blocks: u64,
    /// Total line toggles (address + data).
    pub toggles: u64,
    /// Total bus busy cycles.
    pub busy_cycles: u64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Cycles spent waiting for the bus (contention).
    pub wait_cycles: u64,
}

/// Identifier of a queued block-granular request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// One granted DMA block of a queued request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockGrant {
    /// The request this block belongs to.
    pub request: ReqId,
    /// The owning master.
    pub master: MasterId,
    /// First cycle of the grant (arbitration included).
    pub start: u64,
    /// One past the last cycle.
    pub end: u64,
    /// Words transferred in this block.
    pub words: u64,
    /// Energy of the handshake plus the block's word transfers, joules.
    pub energy_j: f64,
    /// Whether this was the request's final block.
    pub request_done: bool,
}

#[derive(Debug, Clone)]
struct PendingRequest {
    id: ReqId,
    master: MasterId,
    ready: u64,
    remaining: Vec<(u64, i64, bool)>, // ops not yet transferred (in order)
    seq: u64,
    /// Pacing: block `k` becomes ready at `ready + k·interval` (0 = all
    /// blocks available immediately). Models transactions issued
    /// throughout a computation rather than at its end.
    interval: u64,
    granted_blocks: u64,
}

/// Per-master traffic attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MasterStats {
    /// Words transferred by this master.
    pub words: u64,
    /// DMA blocks granted to this master.
    pub blocks: u64,
    /// Energy attributed to this master's transfers, joules.
    pub energy_j: f64,
}

/// The shared-bus model (see crate docs).
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    masters: Vec<(String, u8)>,
    per_master: Vec<MasterStats>,
    busy_until: u64,
    last_addr: u64,
    last_data: u64,
    stats: BusStats,
    pending: Vec<PendingRequest>,
    next_req: u64,
    next_seq: u64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        Bus {
            config,
            masters: Vec::new(),
            per_master: Vec::new(),
            busy_until: 0,
            last_addr: 0,
            last_data: 0,
            stats: BusStats::default(),
            pending: Vec::new(),
            next_req: 0,
            next_seq: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Registers a master with a static priority (larger = more urgent;
    /// used by [`order_contenders`](Bus::order_contenders)).
    pub fn register_master(&mut self, name: impl Into<String>, priority: u8) -> MasterId {
        let id = MasterId(self.masters.len() as u32);
        self.masters.push((name.into(), priority));
        self.per_master.push(MasterStats::default());
        id
    }

    /// A master's name.
    pub fn master_name(&self, m: MasterId) -> &str {
        &self.masters[m.0 as usize].0
    }

    /// Traffic attribution for one master.
    pub fn master_stats(&self, m: MasterId) -> MasterStats {
        self.per_master[m.0 as usize]
    }

    /// Changes a master's priority (design-space exploration knob; takes
    /// effect immediately, no recompilation).
    pub fn set_priority(&mut self, m: MasterId, priority: u8) {
        self.masters[m.0 as usize].1 = priority;
    }

    /// A master's priority.
    pub fn priority(&self, m: MasterId) -> u8 {
        self.masters[m.0 as usize].1
    }

    /// Orders the given contenders by descending priority (FIFO among
    /// equals) — the arbitration rule applied when several masters
    /// request the bus in the same delta cycle.
    pub fn order_contenders(&self, contenders: &mut [MasterId]) {
        contenders.sort_by_key(|m| std::cmp::Reverse(self.priority(*m)));
    }

    /// Performs a transfer of `ops` = `(word address, data, write?)` for
    /// `master`, ready at cycle `ready`. Consecutive words are grouped
    /// into DMA blocks; the transfer is serialized after any transfer
    /// already occupying the bus.
    ///
    /// Returns the grant window and energy. An empty `ops` returns a
    /// zero-length transfer at `ready`.
    pub fn transfer(&mut self, master: MasterId, ready: u64, ops: &[(u64, i64, bool)]) -> Transfer {
        assert!(
            (master.0 as usize) < self.masters.len(),
            "unknown master {master}"
        );
        if ops.is_empty() {
            return Transfer {
                start: ready,
                end: ready,
                energy_j: 0.0,
                blocks: 0,
            };
        }
        let start = ready.max(self.busy_until);
        self.stats.wait_cycles += start - ready;
        let blocks = (ops.len() as u64).div_ceil(self.config.dma_block_size as u64);
        let mut energy = 0.0;
        let mut at = start;
        for chunk in ops.chunks(self.config.dma_block_size as usize) {
            let (end, e) = self.book_block(master, at, chunk);
            energy += e;
            at = end;
        }
        Transfer {
            start,
            end: at,
            energy_j: energy,
            blocks,
        }
    }

    /// Books one DMA block starting at `start`: arbitration handshake +
    /// word transfers, updating line state, statistics and `busy_until`.
    /// Returns `(end, energy)`.
    fn book_block(&mut self, master: MasterId, start: u64, chunk: &[(u64, i64, bool)]) -> (u64, f64) {
        let addr_mask = mask(self.config.addr_width);
        let data_mask = mask(self.config.data_width);
        let line_e = self.config.line_switch_energy_j();
        let mut energy = self.config.handshake_energy_j;
        let mut cycles = self.config.arbitration_cycles;
        for &(addr, data, _write) in chunk {
            let a = addr & addr_mask;
            let d = (data as u64) & data_mask;
            let t = (self.last_addr ^ a).count_ones() as u64
                + (self.last_data ^ d).count_ones() as u64;
            energy += t as f64 * line_e;
            self.stats.toggles += t;
            self.last_addr = a;
            self.last_data = d;
            cycles += self.config.cycles_per_word;
        }
        let end = start + cycles;
        self.busy_until = end;
        self.stats.words += chunk.len() as u64;
        self.stats.blocks += 1;
        self.stats.busy_cycles += cycles;
        self.stats.energy_j += energy;
        let pm = &mut self.per_master[master.0 as usize];
        pm.words += chunk.len() as u64;
        pm.blocks += 1;
        pm.energy_j += energy;
        (end, energy)
    }

    /// Queues a block-granular request: the transfer's DMA blocks will be
    /// granted one at a time by [`grant_block`](Bus::grant_block),
    /// competing with other pending requests by master priority — the
    /// cycle-faithful arbitration of the paper's bus model.
    ///
    /// # Panics
    ///
    /// Panics on an unknown master or empty `ops`.
    pub fn enqueue(&mut self, master: MasterId, ready: u64, ops: &[(u64, i64, bool)]) -> ReqId {
        self.enqueue_paced(master, ready, ops, 0)
    }

    /// Like [`enqueue`](Bus::enqueue), but block `k` only becomes ready
    /// at `ready + k·interval`: the transactions are issued *during* the
    /// requesting component's computation, so concurrent components'
    /// transfers interleave on the bus under priority arbitration.
    ///
    /// # Panics
    ///
    /// Panics on an unknown master or empty `ops`.
    pub fn enqueue_paced(
        &mut self,
        master: MasterId,
        ready: u64,
        ops: &[(u64, i64, bool)],
        interval: u64,
    ) -> ReqId {
        assert!(
            (master.0 as usize) < self.masters.len(),
            "unknown master {master}"
        );
        assert!(!ops.is_empty(), "cannot enqueue an empty request");
        let id = ReqId(self.next_req);
        self.next_req += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(PendingRequest {
            id,
            master,
            ready,
            remaining: ops.to_vec(),
            seq,
            interval,
            granted_blocks: 0,
        });
        id
    }

    /// Whether any queued request remains.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Earliest time any queued request's next block becomes ready.
    pub fn next_ready_time(&self) -> Option<u64> {
        self.pending
            .iter()
            .map(|r| r.ready + r.granted_blocks * r.interval)
            .min()
    }

    /// Grants one DMA block at time `now`: among requests ready by `now`,
    /// the highest-priority master wins (FIFO among equals). Returns
    /// `None` if the bus is still busy (`busy_until > now`) or no request
    /// is ready.
    pub fn grant_block(&mut self, now: u64) -> Option<BlockGrant> {
        if self.busy_until > now {
            return None;
        }
        let idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| r.ready + r.granted_blocks * r.interval <= now)
            .max_by_key(|(_, r)| {
                (
                    self.masters[r.master.0 as usize].1,
                    std::cmp::Reverse(r.seq),
                )
            })
            .map(|(i, _)| i)?;
        let words = (self.config.dma_block_size as usize).min(self.pending[idx].remaining.len());
        let chunk: Vec<(u64, i64, bool)> =
            self.pending[idx].remaining.drain(..words).collect();
        let request = self.pending[idx].id;
        let master = self.pending[idx].master;
        self.pending[idx].granted_blocks += 1;
        let request_done = self.pending[idx].remaining.is_empty();
        if request_done {
            self.pending.swap_remove(idx);
        }
        let (end, energy_j) = self.book_block(master, now, &chunk);
        Some(BlockGrant {
            request,
            master,
            start: now,
            end,
            words: chunk.len() as u64,
            energy_j,
            request_done,
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Cycle at which the bus next becomes free.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Average bus power over `total_cycles` of system time at clock
    /// `freq_hz` — the `P_bus` formula of §3.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn average_power_w(&self, total_cycles: u64, freq_hz: f64) -> f64 {
        assert!(total_cycles > 0, "total cycles must be positive");
        assert!(freq_hz > 0.0, "frequency must be positive");
        self.stats.energy_j / (total_cycles as f64 / freq_hz)
    }
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus_with_dma(dma: u32) -> (Bus, MasterId) {
        let mut b = Bus::new(BusConfig::date2000_defaults().with_dma_block_size(dma));
        let m = b.register_master("m", 1);
        (b, m)
    }

    fn words(n: u64) -> Vec<(u64, i64, bool)> {
        (0..n).map(|i| (i, (i as i64) * 3 + 1, i % 2 == 0)).collect()
    }

    #[test]
    fn blocks_follow_dma_size() {
        let (mut b, m) = bus_with_dma(4);
        assert_eq!(b.transfer(m, 0, &words(1)).blocks, 1);
        assert_eq!(b.transfer(m, 0, &words(4)).blocks, 1);
        assert_eq!(b.transfer(m, 0, &words(5)).blocks, 2);
        assert_eq!(b.transfer(m, 0, &words(16)).blocks, 4);
    }

    #[test]
    fn larger_dma_reduces_energy_and_time() {
        let ops = words(64);
        let (mut small, ms) = bus_with_dma(2);
        let (mut large, ml) = bus_with_dma(32);
        let ts = small.transfer(ms, 0, &ops);
        let tl = large.transfer(ml, 0, &ops);
        assert!(ts.energy_j > tl.energy_j, "fewer handshakes, less energy");
        assert!(ts.cycles() > tl.cycles(), "fewer handshakes, less time");
    }

    #[test]
    fn switching_activity_depends_on_data() {
        // Alternating all-ones/all-zeros toggles every data line each
        // word; constant data toggles none after the first.
        let (mut b1, m1) = bus_with_dma(64);
        let alternating: Vec<(u64, i64, bool)> =
            (0..16).map(|i| (0, if i % 2 == 0 { 0xFF } else { 0x00 }, true)).collect();
        let e_alt = b1.transfer(m1, 0, &alternating).energy_j;
        let (mut b2, m2) = bus_with_dma(64);
        let constant: Vec<(u64, i64, bool)> = (0..16).map(|_| (0, 0x00, true)).collect();
        let e_const = b2.transfer(m2, 0, &constant).energy_j;
        assert!(e_alt > e_const);
    }

    #[test]
    fn widths_mask_line_counts() {
        // With a 1-bit data bus, data toggling is capped at 1 line.
        let cfg = BusConfig {
            data_width: 1,
            ..BusConfig::date2000_defaults()
        };
        let mut b = Bus::new(cfg);
        let m = b.register_master("m", 0);
        b.transfer(m, 0, &[(0, -1, true)]); // data masked to 1 bit
        assert!(b.stats().toggles <= 2); // ≤1 addr + 1 data line
    }

    #[test]
    fn contention_serializes_and_counts_waits() {
        let (mut b, m) = bus_with_dma(4);
        let t1 = b.transfer(m, 0, &words(4)); // occupies [0, end)
        let t2 = b.transfer(m, 0, &words(4)); // ready at 0, must wait
        assert_eq!(t2.start, t1.end);
        assert!(b.stats().wait_cycles >= t1.end);
        let t3 = b.transfer(m, t2.end + 100, &words(1)); // idle gap
        assert_eq!(t3.start, t2.end + 100);
    }

    #[test]
    fn empty_transfer_is_free() {
        let (mut b, m) = bus_with_dma(4);
        let t = b.transfer(m, 5, &[]);
        assert_eq!((t.start, t.end, t.blocks), (5, 5, 0));
        assert_eq!(t.energy_j, 0.0);
        assert_eq!(b.stats(), BusStats::default());
    }

    #[test]
    fn priorities_order_contenders() {
        let mut b = Bus::new(BusConfig::date2000_defaults());
        let lo = b.register_master("lo", 1);
        let hi = b.register_master("hi", 9);
        let mid = b.register_master("mid", 5);
        let mut order = vec![lo, mid, hi];
        b.order_contenders(&mut order);
        assert_eq!(order, vec![hi, mid, lo]);
        b.set_priority(lo, 10);
        let mut order = vec![hi, lo];
        b.order_contenders(&mut order);
        assert_eq!(order, vec![lo, hi]);
    }

    #[test]
    fn average_power_formula() {
        let (mut b, m) = bus_with_dma(4);
        b.transfer(m, 0, &words(8));
        let e = b.stats().energy_j;
        let p = b.average_power_w(1000, 1e6); // 1000 cycles at 1 MHz = 1 ms
        assert!((p - e / 1e-3).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate_across_transfers() {
        let (mut b, m) = bus_with_dma(2);
        b.transfer(m, 0, &words(3));
        b.transfer(m, 100, &words(5));
        let s = b.stats();
        assert_eq!(s.words, 8);
        assert_eq!(s.blocks, 2 + 3);
        assert!(s.energy_j > 0.0);
        assert!(s.busy_cycles > 0);
    }

    #[test]
    fn per_master_attribution_sums_to_totals() {
        let mut b = Bus::new(BusConfig::date2000_defaults());
        let m1 = b.register_master("cpu", 1);
        let m2 = b.register_master("dma", 2);
        let t1 = b.transfer(m1, 0, &words(5));
        let _ = b.transfer(m2, t1.end, &words(9));
        let s1 = b.master_stats(m1);
        let s2 = b.master_stats(m2);
        assert_eq!(s1.words, 5);
        assert_eq!(s2.words, 9);
        assert_eq!(s1.words + s2.words, b.stats().words);
        assert_eq!(s1.blocks + s2.blocks, b.stats().blocks);
        assert!((s1.energy_j + s2.energy_j - b.stats().energy_j).abs() < 1e-18);
        assert_eq!(b.master_name(m1), "cpu");
    }

    #[test]
    fn grant_blocks_interleave_by_priority() {
        let mut b = Bus::new(BusConfig::date2000_defaults().with_dma_block_size(2));
        let lo = b.register_master("lo", 1);
        let hi = b.register_master("hi", 9);
        // Low-priority request queued first; both ready at 0.
        let r_lo = b.enqueue(lo, 0, &words(4)); // 2 blocks
        let r_hi = b.enqueue(hi, 0, &words(4)); // 2 blocks
        let mut order = Vec::new();
        let mut t = 0;
        while b.has_pending() || b.busy_until() > t {
            match b.grant_block(t) {
                Some(g) => {
                    order.push((g.request, g.request_done));
                    t = g.end;
                }
                None => t = b.busy_until().max(t + 1),
            }
        }
        // High priority takes every block first despite arriving second.
        assert_eq!(
            order,
            vec![(r_hi, false), (r_hi, true), (r_lo, false), (r_lo, true)]
        );
    }

    #[test]
    fn late_high_priority_preempts_remaining_blocks() {
        let mut b = Bus::new(BusConfig::date2000_defaults().with_dma_block_size(2));
        let lo = b.register_master("lo", 1);
        let hi = b.register_master("hi", 9);
        let r_lo = b.enqueue(lo, 0, &words(6)); // 3 blocks
        let g1 = b.grant_block(0).expect("first block");
        assert_eq!(g1.request, r_lo);
        // High-priority request arrives mid-transfer.
        let r_hi = b.enqueue(hi, g1.end, &words(2)); // 1 block
        let g2 = b.grant_block(g1.end).expect("second grant");
        assert_eq!(g2.request, r_hi, "newcomer wins the next block");
        assert!(g2.request_done);
        assert_eq!(g2.words, 2, "full DMA block transferred");
        let g3 = b.grant_block(g2.end).expect("third grant");
        assert_eq!(g3.request, r_lo, "low priority resumes");
    }

    #[test]
    fn grant_respects_busy_and_ready() {
        let mut b = Bus::new(BusConfig::date2000_defaults());
        let m = b.register_master("m", 1);
        b.enqueue(m, 100, &words(1));
        assert!(b.grant_block(50).is_none(), "not ready yet");
        assert_eq!(b.next_ready_time(), Some(100));
        let g = b.grant_block(100).expect("ready now");
        assert!(b.grant_block(g.end - 1).is_none(), "bus busy");
        assert!(!b.has_pending());
    }

    #[test]
    fn queued_and_atomic_paths_charge_equal_energy() {
        // The same op sequence costs the same energy whether transferred
        // atomically or granted block by block without interleaving.
        let ops = words(10);
        let (mut atomic, m1) = bus_with_dma(4);
        let e_atomic = atomic.transfer(m1, 0, &ops).energy_j;
        let (mut queued, m2) = bus_with_dma(4);
        queued.enqueue(m2, 0, &ops);
        let mut e_queued = 0.0;
        let mut t = 0;
        while queued.has_pending() {
            if let Some(g) = queued.grant_block(t) {
                e_queued += g.energy_j;
                t = g.end;
            } else {
                t += 1;
            }
        }
        assert!((e_atomic - e_queued).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "empty request")]
    fn empty_enqueue_rejected() {
        let mut b = Bus::new(BusConfig::date2000_defaults());
        let m = b.register_master("m", 1);
        b.enqueue(m, 0, &[]);
    }

    #[test]
    #[should_panic(expected = "unknown master")]
    fn unknown_master_rejected() {
        let mut b = Bus::new(BusConfig::date2000_defaults());
        b.transfer(MasterId(3), 0, &[(0, 0, false)]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dma_rejected() {
        BusConfig::date2000_defaults().with_dma_block_size(0);
    }
}
