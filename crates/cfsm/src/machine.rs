//! Codesign finite state machines.
//!
//! A CFSM (the POLIS behavioral unit) is an extended FSM that reacts to
//! input events: when the events required by one of its transitions are
//! simultaneously present (and the guard holds), the transition *fires*,
//! atomically executing its [`Cfg`] body — emitting output events, updating
//! local variables — and moving to the next control state. One firing is
//! the unit of synchronization between the simulation master and the
//! component power estimators (paper §3, footnote 3).

use crate::cfg::{Cfg, ExecEnv, Execution, Stmt, ValidateCfgError};
use crate::event::{EventBuffer, EventId, EventOccurrence};
use crate::expr::{Expr, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a CFSM control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a transition within one CFSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub u32);

/// One CFSM transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Source control state.
    pub from: StateId,
    /// Events that must all be present for the transition to be enabled.
    /// Must be nonempty (CFSMs are reactive).
    pub trigger: Vec<EventId>,
    /// Optional guard over local variables and trigger event values; the
    /// transition is enabled only if it evaluates nonzero.
    pub guard: Option<Expr>,
    /// The reaction body.
    pub body: Cfg,
    /// Destination control state.
    pub to: StateId,
}

impl Transition {
    /// The events this transition's body *may* emit: every
    /// [`Stmt::Emit`] on any path through the body, regardless of
    /// whether a particular execution reaches it. This is the syntactic
    /// producer set the static liveness checker builds its event graph
    /// from (an over-approximation of what one firing actually emits).
    pub fn emits(&self) -> BTreeSet<EventId> {
        let mut out = BTreeSet::new();
        for b in self.body.blocks() {
            for s in &b.stmts {
                if let Stmt::Emit { event, .. } = s {
                    out.insert(*event);
                }
            }
        }
        out
    }
}

/// Errors detected by [`Cfsm::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateCfsmError {
    /// The machine has no states.
    NoStates,
    /// A transition references an unknown state.
    UnknownState(TransitionId, StateId),
    /// A transition has an empty trigger.
    EmptyTrigger(TransitionId),
    /// A transition body failed CFG validation.
    InvalidBody(TransitionId, ValidateCfgError),
}

impl fmt::Display for ValidateCfsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCfsmError::NoStates => write!(f, "machine has no states"),
            ValidateCfsmError::UnknownState(t, s) => {
                write!(f, "transition {} references unknown state {}", t.0, s)
            }
            ValidateCfsmError::EmptyTrigger(t) => {
                write!(f, "transition {} has an empty trigger", t.0)
            }
            ValidateCfsmError::InvalidBody(t, e) => {
                write!(f, "transition {} has an invalid body: {e}", t.0)
            }
        }
    }
}

impl std::error::Error for ValidateCfsmError {}

/// The static definition of a CFSM process.
#[derive(Debug, Clone)]
pub struct Cfsm {
    name: String,
    states: Vec<String>,
    initial: StateId,
    vars: Vec<(String, i64)>,
    transitions: Vec<Transition>,
}

impl Cfsm {
    /// Starts building a machine with the given name.
    pub fn builder(name: impl Into<String>) -> CfsmBuilder {
        CfsmBuilder {
            name: name.into(),
            states: Vec::new(),
            vars: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state names, indexed by [`StateId`].
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// The initial control state.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// The declared local variables `(name, initial value)`.
    pub fn vars(&self) -> &[(String, i64)] {
        &self.vars
    }

    /// The transitions, indexed by [`TransitionId`].
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Looks up one transition.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.0 as usize]
    }

    /// The union of every transition's [syntactic emit
    /// set](Transition::emits): all events this machine may ever produce.
    pub fn emitted_events(&self) -> BTreeSet<EventId> {
        let mut out = BTreeSet::new();
        for t in &self.transitions {
            out.extend(t.emits());
        }
        out
    }

    /// Checks structural sanity of states, triggers and bodies.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateCfsmError`] found.
    pub fn validate(&self) -> Result<(), ValidateCfsmError> {
        if self.states.is_empty() {
            return Err(ValidateCfsmError::NoStates);
        }
        let n = self.states.len() as u32;
        for (i, t) in self.transitions.iter().enumerate() {
            let id = TransitionId(i as u32);
            if t.from.0 >= n {
                return Err(ValidateCfsmError::UnknownState(id, t.from));
            }
            if t.to.0 >= n {
                return Err(ValidateCfsmError::UnknownState(id, t.to));
            }
            if t.trigger.is_empty() {
                return Err(ValidateCfsmError::EmptyTrigger(id));
            }
            t.body
                .validate()
                .map_err(|e| ValidateCfsmError::InvalidBody(id, e))?;
        }
        Ok(())
    }

    /// Creates a fresh runtime (initial state, initial variable values,
    /// empty input buffers sized for `n_events` network event types).
    pub fn spawn(&self, n_events: usize) -> CfsmRuntime {
        CfsmRuntime {
            state: self.initial,
            vars: self.vars.iter().map(|&(_, init)| init).collect(),
            buffer: EventBuffer::new(n_events),
            firings: 0,
        }
    }

    /// Returns the first enabled transition for the runtime's current state
    /// and buffered inputs, without firing it.
    pub fn enabled(&self, rt: &CfsmRuntime) -> Option<TransitionId> {
        for (i, t) in self.transitions.iter().enumerate() {
            if t.from != rt.state {
                continue;
            }
            if !t.trigger.iter().all(|&e| rt.buffer.is_present(e)) {
                continue;
            }
            if let Some(g) = &t.guard {
                let buffer = &rt.buffer;
                let val = g.eval(&rt.vars, &|e| buffer.value(e).unwrap_or(0));
                if val == 0 {
                    continue;
                }
            }
            return Some(TransitionId(i as u32));
        }
        None
    }

    /// Fires the first enabled transition, if any: executes its body
    /// against `env` (for shared-memory functional values), consumes the
    /// trigger events, and moves to the next state.
    pub fn try_fire(&self, rt: &mut CfsmRuntime, env: &mut dyn ExecEnv) -> Option<FireResult> {
        let tid = self.enabled(rt)?;
        let t = &self.transitions[tid.0 as usize];
        // Capture trigger event values before consumption so the body can
        // read them through `Expr::EventValue`.
        let captured: Vec<(EventId, i64)> = rt
            .buffer
            .present()
            .map(|e| (e, rt.buffer.value(e).unwrap_or(0)))
            .collect();
        struct BodyEnv<'a> {
            captured: &'a [(EventId, i64)],
            inner: &'a mut dyn ExecEnv,
        }
        impl ExecEnv for BodyEnv<'_> {
            fn event_value(&self, event: EventId) -> i64 {
                self.captured
                    .iter()
                    .find(|&&(e, _)| e == event)
                    .map(|&(_, v)| v)
                    .unwrap_or_else(|| self.inner.event_value(event))
            }
            fn mem_read(&mut self, addr: u64) -> i64 {
                self.inner.mem_read(addr)
            }
            fn mem_write(&mut self, addr: u64, value: i64) {
                self.inner.mem_write(addr, value)
            }
        }
        let mut body_env = BodyEnv {
            captured: &captured,
            inner: env,
        };
        let from = rt.state;
        let execution = t.body.execute(&mut rt.vars, &mut body_env);
        for &e in &t.trigger {
            rt.buffer.consume(e);
        }
        rt.state = t.to;
        rt.firings += 1;
        Some(FireResult {
            transition: tid,
            from,
            to: t.to,
            execution,
        })
    }
}

/// The mutable runtime of one CFSM instance.
#[derive(Debug, Clone)]
pub struct CfsmRuntime {
    state: StateId,
    vars: Vec<i64>,
    buffer: EventBuffer,
    firings: u64,
}

impl CfsmRuntime {
    /// Current control state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Current variable values.
    pub fn vars(&self) -> &[i64] {
        &self.vars
    }

    /// Mutable variable values (for test setup).
    pub fn vars_mut(&mut self) -> &mut [i64] {
        &mut self.vars
    }

    /// The input event buffers.
    pub fn buffer(&self) -> &EventBuffer {
        &self.buffer
    }

    /// Delivers an input occurrence (single-place buffer semantics).
    pub fn deliver(&mut self, occ: EventOccurrence) {
        self.buffer.deliver(occ);
    }

    /// Number of transitions fired so far.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Forces the control state (used by reset logic and tests).
    pub fn set_state(&mut self, s: StateId) {
        self.state = s;
    }
}

/// The outcome of firing one transition.
#[derive(Debug, Clone)]
pub struct FireResult {
    /// Which transition fired.
    pub transition: TransitionId,
    /// State before the firing.
    pub from: StateId,
    /// State after the firing.
    pub to: StateId,
    /// The body execution (path, emissions, macro-ops, memory accesses).
    pub execution: Execution,
}

/// Builder for [`Cfsm`] definitions.
///
/// # Examples
///
/// ```
/// use cfsm::{Cfsm, Cfg, EventId, Expr, Stmt, VarId};
///
/// let mut b = Cfsm::builder("counter");
/// let idle = b.state("idle");
/// let n = b.var("n", 0);
/// b.transition(
///     idle,
///     vec![EventId(0)], // trigger: TICK
///     None,
///     Cfg::straight_line(vec![Stmt::Assign {
///         var: n,
///         expr: Expr::add(Expr::Var(n), Expr::Const(1)),
///     }]),
///     idle,
/// );
/// let machine = b.finish().expect("valid machine");
/// assert_eq!(machine.name(), "counter");
/// assert_eq!(machine.transitions().len(), 1);
/// ```
#[derive(Debug)]
pub struct CfsmBuilder {
    name: String,
    states: Vec<String>,
    vars: Vec<(String, i64)>,
    transitions: Vec<Transition>,
}

impl CfsmBuilder {
    /// Declares a control state; the first one declared is initial.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(name.into());
        id
    }

    /// Declares a local variable with an initial value.
    pub fn var(&mut self, name: impl Into<String>, init: i64) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push((name.into(), init));
        id
    }

    /// Adds a transition; earlier transitions have priority when several
    /// are enabled simultaneously.
    pub fn transition(
        &mut self,
        from: StateId,
        trigger: Vec<EventId>,
        guard: Option<Expr>,
        body: Cfg,
        to: StateId,
    ) -> TransitionId {
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(Transition {
            from,
            trigger,
            guard,
            body,
            to,
        });
        id
    }

    /// Adds the same (trigger, body) transition from *every* declared state
    /// to `to` — the usual encoding of a `watching RESET` handler.
    pub fn transition_from_all(
        &mut self,
        trigger: Vec<EventId>,
        guard: Option<Expr>,
        body: Cfg,
        to: StateId,
    ) {
        for s in 0..self.states.len() as u32 {
            self.transitions.push(Transition {
                from: StateId(s),
                trigger: trigger.clone(),
                guard: guard.clone(),
                body: body.clone(),
                to,
            });
        }
    }

    /// Finalizes and validates the machine.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateCfsmError`] found.
    pub fn finish(self) -> Result<Cfsm, ValidateCfsmError> {
        let m = Cfsm {
            name: self.name,
            states: self.states,
            initial: StateId(0),
            vars: self.vars,
            transitions: self.transitions,
        };
        m.validate()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NullEnv;
    use crate::cfg::Stmt;

    fn tick() -> EventId {
        EventId(0)
    }
    fn out() -> EventId {
        EventId(1)
    }

    fn counter() -> Cfsm {
        let mut b = Cfsm::builder("counter");
        let idle = b.state("idle");
        let n = b.var("n", 0);
        b.transition(
            idle,
            vec![tick()],
            None,
            Cfg::straight_line(vec![
                Stmt::Assign {
                    var: n,
                    expr: Expr::add(Expr::Var(n), Expr::Const(1)),
                },
                Stmt::Emit {
                    event: out(),
                    value: Some(Expr::Var(n)),
                },
            ]),
            idle,
        );
        b.finish().expect("valid")
    }

    #[test]
    fn fires_only_when_trigger_present() {
        let m = counter();
        let mut rt = m.spawn(2);
        assert!(m.enabled(&rt).is_none());
        assert!(m.try_fire(&mut rt, &mut NullEnv).is_none());
        rt.deliver(EventOccurrence::pure(tick()));
        assert_eq!(m.enabled(&rt), Some(TransitionId(0)));
        let fr = m.try_fire(&mut rt, &mut NullEnv).expect("fires");
        assert_eq!(fr.execution.emitted, vec![(out(), Some(1))]);
        assert_eq!(rt.vars()[0], 1);
        // Trigger consumed: not enabled again until redelivered.
        assert!(m.enabled(&rt).is_none());
        assert_eq!(rt.firings(), 1);
    }

    #[test]
    fn guard_blocks_firing() {
        let mut b = Cfsm::builder("guarded");
        let s = b.state("s");
        let v = b.var("v", 0);
        b.transition(
            s,
            vec![tick()],
            Some(Expr::gt(Expr::Var(v), Expr::Const(5))),
            Cfg::empty(),
            s,
        );
        let m = b.finish().expect("valid");
        let mut rt = m.spawn(1);
        rt.deliver(EventOccurrence::pure(tick()));
        assert!(m.enabled(&rt).is_none());
        rt.vars_mut()[0] = 6;
        assert!(m.enabled(&rt).is_some());
    }

    #[test]
    fn conjunction_trigger_needs_all_events() {
        let mut b = Cfsm::builder("and");
        let s = b.state("s");
        b.transition(s, vec![EventId(0), EventId(1)], None, Cfg::empty(), s);
        let m = b.finish().expect("valid");
        let mut rt = m.spawn(2);
        rt.deliver(EventOccurrence::pure(EventId(0)));
        assert!(m.enabled(&rt).is_none());
        rt.deliver(EventOccurrence::pure(EventId(1)));
        assert!(m.enabled(&rt).is_some());
    }

    #[test]
    fn event_values_readable_in_body_and_guard() {
        let mut b = Cfsm::builder("reader");
        let s = b.state("s");
        let v = b.var("v", 0);
        b.transition(
            s,
            vec![EventId(0)],
            Some(Expr::gt(Expr::EventValue(EventId(0)), Expr::Const(10))),
            Cfg::straight_line(vec![Stmt::Assign {
                var: v,
                expr: Expr::EventValue(EventId(0)),
            }]),
            s,
        );
        let m = b.finish().expect("valid");
        let mut rt = m.spawn(1);
        rt.deliver(EventOccurrence::valued(EventId(0), 5));
        assert!(m.enabled(&rt).is_none()); // guard fails
        rt.deliver(EventOccurrence::valued(EventId(0), 99));
        m.try_fire(&mut rt, &mut NullEnv).expect("fires");
        assert_eq!(rt.vars()[0], 99);
    }

    #[test]
    fn transition_priority_is_declaration_order() {
        let mut b = Cfsm::builder("prio");
        let s = b.state("s");
        let t = b.state("t");
        let u = b.state("u");
        b.transition(s, vec![tick()], None, Cfg::empty(), t);
        b.transition(s, vec![tick()], None, Cfg::empty(), u);
        let m = b.finish().expect("valid");
        let mut rt = m.spawn(1);
        rt.deliver(EventOccurrence::pure(tick()));
        let fr = m.try_fire(&mut rt, &mut NullEnv).expect("fires");
        assert_eq!(fr.to, t);
    }

    #[test]
    fn state_changes_follow_transitions() {
        let mut b = Cfsm::builder("two");
        let a = b.state("a");
        let c = b.state("c");
        b.transition(a, vec![tick()], None, Cfg::empty(), c);
        b.transition(c, vec![tick()], None, Cfg::empty(), a);
        let m = b.finish().expect("valid");
        let mut rt = m.spawn(1);
        for expected in [c, a, c] {
            rt.deliver(EventOccurrence::pure(tick()));
            let fr = m.try_fire(&mut rt, &mut NullEnv).expect("fires");
            assert_eq!(fr.to, expected);
            assert_eq!(rt.state(), expected);
        }
    }

    #[test]
    fn transition_from_all_encodes_reset() {
        let mut b = Cfsm::builder("resettable");
        let a = b.state("a");
        let c = b.state("c");
        b.transition(a, vec![tick()], None, Cfg::empty(), c);
        b.transition_from_all(vec![EventId(2)], None, Cfg::empty(), a);
        let m = b.finish().expect("valid");
        let mut rt = m.spawn(3);
        rt.deliver(EventOccurrence::pure(tick()));
        m.try_fire(&mut rt, &mut NullEnv).expect("to c");
        assert_eq!(rt.state(), c);
        rt.deliver(EventOccurrence::pure(EventId(2)));
        m.try_fire(&mut rt, &mut NullEnv).expect("reset");
        assert_eq!(rt.state(), a);
    }

    #[test]
    fn validate_catches_empty_trigger_and_bad_state() {
        let mut b = Cfsm::builder("bad");
        let s = b.state("s");
        b.transition(s, vec![], None, Cfg::empty(), s);
        assert!(matches!(
            b.finish(),
            Err(ValidateCfsmError::EmptyTrigger(_))
        ));

        let mut b = Cfsm::builder("bad2");
        let s = b.state("s");
        b.transition(s, vec![tick()], None, Cfg::empty(), StateId(9));
        assert!(matches!(
            b.finish(),
            Err(ValidateCfsmError::UnknownState(_, _))
        ));
    }

    #[test]
    fn emit_sets_cover_all_paths() {
        use crate::cfg::{CfgBuilder, Terminator};
        // A branch body emitting different events on each arm: the
        // syntactic emit set must include both.
        let mut cb = CfgBuilder::new();
        let entry = cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::Var(VarId(0)),
                then_block: crate::cfg::BlockId(1),
                else_block: crate::cfg::BlockId(2),
            },
        );
        assert_eq!(entry.0, 0);
        cb.block(
            vec![Stmt::Emit { event: EventId(1), value: None }],
            Terminator::Return,
        );
        cb.block(
            vec![Stmt::Emit { event: EventId(2), value: None }],
            Terminator::Return,
        );
        let mut b = Cfsm::builder("brancher");
        let s = b.state("s");
        b.var("v", 0);
        b.transition(s, vec![tick()], None, cb.finish().expect("valid cfg"), s);
        let m = b.finish().expect("valid");
        let emitted = m.emitted_events();
        assert!(emitted.contains(&EventId(1)) && emitted.contains(&EventId(2)));
        assert!(!emitted.contains(&tick()));
        assert_eq!(m.transition(TransitionId(0)).emits(), emitted);
    }

    #[test]
    fn no_states_rejected() {
        let b = Cfsm::builder("empty");
        assert!(matches!(b.finish(), Err(ValidateCfsmError::NoStates)));
    }
}
