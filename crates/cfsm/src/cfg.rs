//! Control-flow graphs for transition bodies.
//!
//! Each CFSM transition executes an atomic *reaction* described as a
//! control-flow graph of basic blocks over the process's local variables.
//! Loops are expressed as back-edges, so a single transition can perform a
//! data-dependent amount of computation — exactly the property that makes
//! power co-estimation necessary (the `consumer` of Fig. 1 runs a loop whose
//! bound is a received TIME difference).

use crate::event::EventId;
use crate::expr::Expr;
use crate::expr::VarId;
use crate::macro_op::MacroOp;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Identifier of a basic block inside a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A straight-line statement (a POLIS macro-operation or a sequence of
/// them).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var := expr` — an arithmetic computation followed by an assignment
    /// (macro-ops: one per operator in `expr`, plus `AVV`).
    Assign {
        /// Destination variable.
        var: VarId,
        /// Right-hand side.
        expr: Expr,
    },
    /// `emit(event[, value])` — event emission (macro-op `AEMIT`, plus the
    /// operators of `value`).
    Emit {
        /// Event to emit.
        event: EventId,
        /// Optional carried value.
        value: Option<Expr>,
    },
    /// A memory read issued to the system bus / cache hierarchy:
    /// `var := mem[addr_expr]`. The functional value is supplied by the
    /// enclosing co-simulation (shared memory); behaviorally it reads the
    /// process-local shadow provided by the interpreter environment.
    MemRead {
        /// Destination variable.
        var: VarId,
        /// Byte address expression.
        addr: Expr,
    },
    /// A memory write issued to the system bus: `mem[addr_expr] := expr`.
    MemWrite {
        /// Byte address expression.
        addr: Expr,
        /// Value to store.
        value: Expr,
    },
}

/// How a basic block transfers control.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on `cond != 0` (macro-ops `TIVART`/`TIVARF` for the
    /// taken / fall-through outcome).
    Branch {
        /// Branch condition.
        cond: Expr,
        /// Successor when `cond != 0`.
        then_block: BlockId,
        /// Successor when `cond == 0`.
        else_block: BlockId,
    },
    /// End of the reaction.
    Return,
}

/// A basic block: straight-line statements plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// The statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

/// A control-flow graph; block 0 is the entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
}

/// Errors detected by [`Cfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateCfgError {
    /// The graph has no blocks.
    Empty,
    /// A terminator references a block that does not exist.
    DanglingEdge {
        /// The block whose terminator is invalid.
        from: BlockId,
        /// The missing target.
        to: BlockId,
    },
    /// No `Return` terminator is reachable from the entry.
    NoReachableReturn,
}

impl std::fmt::Display for ValidateCfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateCfgError::Empty => write!(f, "control-flow graph has no blocks"),
            ValidateCfgError::DanglingEdge { from, to } => {
                write!(f, "block {} jumps to nonexistent block {}", from.0, to.0)
            }
            ValidateCfgError::NoReachableReturn => {
                write!(f, "no return is reachable from the entry block")
            }
        }
    }
}

impl std::error::Error for ValidateCfgError {}

impl Cfg {
    /// Creates a CFG from its blocks; block 0 is the entry.
    ///
    /// Use [`CfgBuilder`] for incremental construction.
    pub fn new(blocks: Vec<BasicBlock>) -> Self {
        Cfg { blocks }
    }

    /// A single-block body with the given statements.
    pub fn straight_line(stmts: Vec<Stmt>) -> Self {
        Cfg {
            blocks: vec![BasicBlock {
                stmts,
                term: Terminator::Return,
            }],
        }
    }

    /// An empty (immediately returning) body.
    pub fn empty() -> Self {
        Cfg::straight_line(Vec::new())
    }

    /// The blocks of the graph.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Looks up one block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph has no blocks (an invalid state; see
    /// [`Cfg::validate`]).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Checks structural sanity.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateCfgError`] if the graph is empty, has dangling
    /// edges, or cannot reach a `Return` from the entry.
    pub fn validate(&self) -> Result<(), ValidateCfgError> {
        if self.blocks.is_empty() {
            return Err(ValidateCfgError::Empty);
        }
        let n = self.blocks.len() as u32;
        let check = |from: BlockId, to: BlockId| {
            if to.0 >= n {
                Err(ValidateCfgError::DanglingEdge { from, to })
            } else {
                Ok(())
            }
        };
        for (i, b) in self.blocks.iter().enumerate() {
            let from = BlockId(i as u32);
            match &b.term {
                Terminator::Goto(t) => check(from, *t)?,
                Terminator::Branch {
                    then_block,
                    else_block,
                    ..
                } => {
                    check(from, *then_block)?;
                    check(from, *else_block)?;
                }
                Terminator::Return => {}
            }
        }
        // Reachability of a Return from the entry.
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            if seen[b.0 as usize] {
                continue;
            }
            seen[b.0 as usize] = true;
            match &self.blocks[b.0 as usize].term {
                Terminator::Return => return Ok(()),
                Terminator::Goto(t) => stack.push(*t),
                Terminator::Branch {
                    then_block,
                    else_block,
                    ..
                } => {
                    stack.push(*then_block);
                    stack.push(*else_block);
                }
            }
        }
        Err(ValidateCfgError::NoReachableReturn)
    }

    /// Total statement count over all blocks.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }
}

/// Identifier of one *execution path* (the sequence of blocks and branch
/// outcomes taken by one reaction). Used as the key of the energy cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u64);

impl std::fmt::Display for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "path{:016x}", self.0)
    }
}

/// One shared-memory access performed by a reaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// Whether this is a write.
    pub write: bool,
    /// The value read (for reads) or stored (for writes). Component
    /// estimators replay reads from this field.
    pub value: i64,
}

/// Outcome of interpreting a [`Cfg`].
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Block sequence actually taken.
    pub trace: Vec<BlockId>,
    /// Stable hash of the taken path (see [`PathId`]).
    pub path: PathId,
    /// Events emitted, in order, with evaluated values.
    pub emitted: Vec<(EventId, Option<i64>)>,
    /// Macro-operation trace, in execution order (the software
    /// macro-modeling currency).
    pub macro_ops: Vec<MacroOp>,
    /// Memory accesses issued, in order.
    pub mem_accesses: Vec<MemAccess>,
}

impl Execution {
    /// The ordered values of the shared-memory *reads* (what a component
    /// estimator needs to replay the same path).
    pub fn read_values(&self) -> Vec<i64> {
        self.mem_accesses
            .iter()
            .filter(|a| !a.write)
            .map(|a| a.value)
            .collect()
    }
}

/// Bounds runaway interpretation (a reaction is meant to be finite).
const MAX_INTERP_BLOCKS: usize = 10_000_000;

/// The environment a reaction executes against: local variables plus the
/// values of triggering input events and a functional model of shared
/// memory.
pub trait ExecEnv {
    /// Current value of the given input event (0 if pure/absent).
    fn event_value(&self, event: EventId) -> i64;
    /// Functional read of shared memory at `addr`.
    fn mem_read(&mut self, addr: u64) -> i64;
    /// Functional write of shared memory.
    fn mem_write(&mut self, addr: u64, value: i64);
}

/// A trivial [`ExecEnv`] with no events and zero-filled memory writes
/// discarded; useful in tests.
#[derive(Debug, Default, Clone)]
pub struct NullEnv;

impl ExecEnv for NullEnv {
    fn event_value(&self, _event: EventId) -> i64 {
        0
    }
    fn mem_read(&mut self, _addr: u64) -> i64 {
        0
    }
    fn mem_write(&mut self, _addr: u64, _value: i64) {}
}

impl Cfg {
    /// Interprets the graph, mutating `vars`, and returns the taken
    /// [`Execution`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is structurally invalid (call
    /// [`validate`](Cfg::validate) first) or if execution exceeds an
    /// internal block budget (runaway loop).
    pub fn execute(&self, vars: &mut [i64], env: &mut dyn ExecEnv) -> Execution {
        let mut trace = Vec::new();
        let mut emitted = Vec::new();
        let mut macro_ops = Vec::new();
        let mut mem_accesses = Vec::new();
        let mut hasher = DefaultHasher::new();
        let mut cur = BlockId(0);
        loop {
            assert!(
                trace.len() < MAX_INTERP_BLOCKS,
                "reaction exceeded {MAX_INTERP_BLOCKS} blocks; runaway loop?"
            );
            trace.push(cur);
            cur.0.hash(&mut hasher);
            let block = &self.blocks[cur.0 as usize];
            for stmt in &block.stmts {
                match stmt {
                    Stmt::Assign { var, expr } => {
                        expr.visit_ops(&mut |k| macro_ops.push(MacroOp::from_op(k)));
                        let v = expr.eval(vars, &|e| env.event_value(e));
                        vars[var.0 as usize] = v;
                        macro_ops.push(MacroOp::Avv);
                    }
                    Stmt::Emit { event, value } => {
                        let v = value.as_ref().map(|e| {
                            e.visit_ops(&mut |k| macro_ops.push(MacroOp::from_op(k)));
                            e.eval(vars, &|ev| env.event_value(ev))
                        });
                        emitted.push((*event, v));
                        macro_ops.push(MacroOp::Aemit);
                    }
                    Stmt::MemRead { var, addr } => {
                        addr.visit_ops(&mut |k| macro_ops.push(MacroOp::from_op(k)));
                        let a = addr.eval(vars, &|e| env.event_value(e)) as u64;
                        let v = env.mem_read(a);
                        vars[var.0 as usize] = v;
                        mem_accesses.push(MemAccess {
                            addr: a,
                            write: false,
                            value: v,
                        });
                        macro_ops.push(MacroOp::MemRead);
                    }
                    Stmt::MemWrite { addr, value } => {
                        addr.visit_ops(&mut |k| macro_ops.push(MacroOp::from_op(k)));
                        value.visit_ops(&mut |k| macro_ops.push(MacroOp::from_op(k)));
                        let a = addr.eval(vars, &|e| env.event_value(e)) as u64;
                        let v = value.eval(vars, &|e| env.event_value(e));
                        env.mem_write(a, v);
                        mem_accesses.push(MemAccess {
                            addr: a,
                            write: true,
                            value: v,
                        });
                        macro_ops.push(MacroOp::MemWrite);
                    }
                }
            }
            match &block.term {
                Terminator::Return => break,
                Terminator::Goto(t) => cur = *t,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    cond.visit_ops(&mut |k| macro_ops.push(MacroOp::from_op(k)));
                    let taken = cond.eval(vars, &|e| env.event_value(e)) != 0;
                    macro_ops.push(if taken {
                        MacroOp::TivarT
                    } else {
                        MacroOp::TivarF
                    });
                    taken.hash(&mut hasher);
                    cur = if taken { *then_block } else { *else_block };
                }
            }
        }
        Execution {
            trace,
            path: PathId(hasher.finish()),
            emitted,
            macro_ops,
            mem_accesses,
        }
    }
}

/// Incremental builder for [`Cfg`]s.
///
/// # Examples
///
/// A counted loop `for i in 0..3 { acc += i }`:
///
/// ```
/// use cfsm::{CfgBuilder, Stmt, Terminator, Expr, VarId, BinOp, NullEnv};
///
/// let i = VarId(0);
/// let acc = VarId(1);
/// let mut b = CfgBuilder::new();
/// let entry = b.block(
///     vec![Stmt::Assign { var: i, expr: Expr::Const(0) }],
///     Terminator::Goto(cfsm::BlockId(1)),
/// );
/// assert_eq!(entry.0, 0);
/// let head = b.block(
///     vec![],
///     Terminator::Branch {
///         cond: Expr::lt(Expr::Var(i), Expr::Const(3)),
///         then_block: cfsm::BlockId(2),
///         else_block: cfsm::BlockId(3),
///     },
/// );
/// let body = b.block(
///     vec![
///         Stmt::Assign { var: acc, expr: Expr::add(Expr::Var(acc), Expr::Var(i)) },
///         Stmt::Assign { var: i, expr: Expr::add(Expr::Var(i), Expr::Const(1)) },
///     ],
///     Terminator::Goto(head),
/// );
/// let _exit = b.block(vec![], Terminator::Return);
/// let cfg = b.finish().expect("valid CFG");
/// assert_eq!(body.0, 2);
///
/// let mut vars = [0i64, 0];
/// let exec = cfg.execute(&mut vars, &mut NullEnv);
/// assert_eq!(vars[1], 0 + 1 + 2);
/// assert_eq!(exec.trace.len(), 1 + 4 + 3 + 1); // entry, 4 head visits, 3 bodies, exit
/// ```
#[derive(Debug, Default)]
pub struct CfgBuilder {
    blocks: Vec<BasicBlock>,
}

impl CfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CfgBuilder { blocks: Vec::new() }
    }

    /// Appends a block, returning its id (ids are assigned sequentially;
    /// forward references may name blocks not yet added).
    pub fn block(&mut self, stmts: Vec<Stmt>, term: Terminator) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { stmts, term });
        id
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateCfgError`] found.
    pub fn finish(self) -> Result<Cfg, ValidateCfgError> {
        let cfg = Cfg::new(self.blocks);
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn assign(var: u32, expr: Expr) -> Stmt {
        Stmt::Assign {
            var: VarId(var),
            expr,
        }
    }

    #[test]
    fn straight_line_executes_all_stmts() {
        let cfg = Cfg::straight_line(vec![
            assign(0, Expr::Const(5)),
            assign(1, Expr::add(Expr::Var(VarId(0)), Expr::Const(2))),
        ]);
        let mut vars = [0i64; 2];
        let exec = cfg.execute(&mut vars, &mut NullEnv);
        assert_eq!(vars, [5, 7]);
        assert_eq!(exec.trace, vec![BlockId(0)]);
        assert!(exec.emitted.is_empty());
    }

    #[test]
    fn branch_selects_path_and_distinguishes_path_ids() {
        let mut b = CfgBuilder::new();
        b.block(
            vec![],
            Terminator::Branch {
                cond: Expr::Var(VarId(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        b.block(vec![assign(1, Expr::Const(100))], Terminator::Return);
        b.block(vec![assign(1, Expr::Const(200))], Terminator::Return);
        let cfg = b.finish().expect("valid");

        let mut v1 = [1i64, 0];
        let e1 = cfg.execute(&mut v1, &mut NullEnv);
        assert_eq!(v1[1], 100);

        let mut v2 = [0i64, 0];
        let e2 = cfg.execute(&mut v2, &mut NullEnv);
        assert_eq!(v2[1], 200);

        assert_ne!(e1.path, e2.path);
    }

    #[test]
    fn same_path_same_id() {
        let cfg = Cfg::straight_line(vec![assign(0, Expr::Const(1))]);
        let mut a = [0i64];
        let mut b = [0i64];
        let ea = cfg.execute(&mut a, &mut NullEnv);
        let eb = cfg.execute(&mut b, &mut NullEnv);
        assert_eq!(ea.path, eb.path);
    }

    #[test]
    fn loop_iteration_count_follows_data() {
        // while v0 > 0 { v1 += 2; v0 -= 1 }
        let mut b = CfgBuilder::new();
        b.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(VarId(0)), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        b.block(
            vec![
                assign(1, Expr::add(Expr::Var(VarId(1)), Expr::Const(2))),
                assign(0, Expr::sub(Expr::Var(VarId(0)), Expr::Const(1))),
            ],
            Terminator::Goto(BlockId(0)),
        );
        b.block(vec![], Terminator::Return);
        let cfg = b.finish().expect("valid");
        for n in [0i64, 1, 5, 100] {
            let mut vars = [n, 0];
            let exec = cfg.execute(&mut vars, &mut NullEnv);
            assert_eq!(vars[1], 2 * n);
            // 1 head visit per iteration + final head + exit
            assert_eq!(exec.trace.len(), 1 + 2 * n as usize + 1);
        }
    }

    #[test]
    fn emit_records_values_in_order() {
        let cfg = Cfg::straight_line(vec![
            Stmt::Emit {
                event: EventId(3),
                value: None,
            },
            Stmt::Emit {
                event: EventId(1),
                value: Some(Expr::Const(9)),
            },
        ]);
        let exec = cfg.execute(&mut [], &mut NullEnv);
        assert_eq!(
            exec.emitted,
            vec![(EventId(3), None), (EventId(1), Some(9))]
        );
    }

    #[test]
    fn macro_op_trace_matches_execution() {
        let cfg = Cfg::straight_line(vec![
            assign(0, Expr::add(Expr::Const(1), Expr::Const(2))),
            Stmt::Emit {
                event: EventId(0),
                value: None,
            },
        ]);
        let exec = cfg.execute(&mut [0], &mut NullEnv);
        assert_eq!(
            exec.macro_ops,
            vec![
                MacroOp::Binary(BinOp::Add),
                MacroOp::Avv,
                MacroOp::Aemit
            ]
        );
    }

    struct MemEnv {
        mem: std::collections::HashMap<u64, i64>,
    }
    impl ExecEnv for MemEnv {
        fn event_value(&self, _e: EventId) -> i64 {
            0
        }
        fn mem_read(&mut self, addr: u64) -> i64 {
            *self.mem.get(&addr).unwrap_or(&0)
        }
        fn mem_write(&mut self, addr: u64, value: i64) {
            self.mem.insert(addr, value);
        }
    }

    #[test]
    fn memory_accesses_are_traced() {
        let cfg = Cfg::straight_line(vec![
            Stmt::MemWrite {
                addr: Expr::Const(16),
                value: Expr::Const(77),
            },
            Stmt::MemRead {
                var: VarId(0),
                addr: Expr::Const(16),
            },
        ]);
        let mut env = MemEnv {
            mem: Default::default(),
        };
        let mut vars = [0i64];
        let exec = cfg.execute(&mut vars, &mut env);
        assert_eq!(vars[0], 77);
        assert_eq!(
            exec.mem_accesses,
            vec![
                MemAccess {
                    addr: 16,
                    write: true,
                    value: 77
                },
                MemAccess {
                    addr: 16,
                    write: false,
                    value: 77
                }
            ]
        );
        assert_eq!(exec.read_values(), vec![77]);
    }

    #[test]
    fn validate_rejects_dangling_edge() {
        let cfg = Cfg::new(vec![BasicBlock {
            stmts: vec![],
            term: Terminator::Goto(BlockId(5)),
        }]);
        assert_eq!(
            cfg.validate(),
            Err(ValidateCfgError::DanglingEdge {
                from: BlockId(0),
                to: BlockId(5)
            })
        );
    }

    #[test]
    fn validate_rejects_empty_and_returnless() {
        assert_eq!(Cfg::new(vec![]).validate(), Err(ValidateCfgError::Empty));
        let spin = Cfg::new(vec![BasicBlock {
            stmts: vec![],
            term: Terminator::Goto(BlockId(0)),
        }]);
        assert_eq!(spin.validate(), Err(ValidateCfgError::NoReachableReturn));
    }

    #[test]
    fn validate_accepts_valid_graph() {
        assert!(Cfg::empty().validate().is_ok());
    }

    #[test]
    fn event_values_visible_to_body() {
        struct EvEnv;
        impl ExecEnv for EvEnv {
            fn event_value(&self, e: EventId) -> i64 {
                if e == EventId(2) {
                    41
                } else {
                    0
                }
            }
            fn mem_read(&mut self, _: u64) -> i64 {
                0
            }
            fn mem_write(&mut self, _: u64, _: i64) {}
        }
        let cfg = Cfg::straight_line(vec![assign(
            0,
            Expr::add(Expr::EventValue(EventId(2)), Expr::Const(1)),
        )]);
        let mut vars = [0i64];
        cfg.execute(&mut vars, &mut EvEnv);
        assert_eq!(vars[0], 42);
    }
}
