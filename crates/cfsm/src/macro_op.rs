//! Macro-operations — the currency of software power macro-modeling.
//!
//! POLIS characterizes generated software as a sequence of high-level
//! *macro-operations* (§4.1 of the paper): variable-to-variable assignment
//! (`AVV`), event emission (`AEMIT`), tests on variables (`TIVART`/`TIVARF`
//! for the true/false outcome), and the ~30 pre-defined arithmetic,
//! relational and logical functions (`ADD(x1,x2)`, `NOT(x1)`, `EQ(x1,x2)`,
//! …). Every one of them has an entry in the characterized
//! parameter file giving its delay, code size and energy.

use crate::expr::{BinOp, OpKind, UnOp};
use std::fmt;

/// A macro-operation, as counted by the behavioral interpreter and
/// characterized by the macro-modeling flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroOp {
    /// Assignment of a computed value to a variable (`AVV`).
    Avv,
    /// Event emission (`AEMIT`).
    Aemit,
    /// Test on a variable, true outcome (`TIVART`).
    TivarT,
    /// Test on a variable, false outcome (`TIVARF`).
    TivarF,
    /// Shared-memory read issued to the bus (`MEMRD`).
    MemRead,
    /// Shared-memory write issued to the bus (`MEMWR`).
    MemWrite,
    /// A unary operator from the function library.
    Unary(UnOp),
    /// A binary operator from the function library.
    Binary(BinOp),
}

impl MacroOp {
    /// Maps an expression operator occurrence to its macro-op.
    pub fn from_op(kind: OpKind) -> MacroOp {
        match kind {
            OpKind::Unary(u) => MacroOp::Unary(u),
            OpKind::Binary(b) => MacroOp::Binary(b),
        }
    }

    /// The POLIS-style mnemonic used in parameter files, e.g. `AVV`,
    /// `AEMIT`, `TIVART`, `ADD`, `EQ`.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            MacroOp::Avv => "AVV",
            MacroOp::Aemit => "AEMIT",
            MacroOp::TivarT => "TIVART",
            MacroOp::TivarF => "TIVARF",
            MacroOp::MemRead => "MEMRD",
            MacroOp::MemWrite => "MEMWR",
            MacroOp::Unary(u) => match u {
                UnOp::Neg => "NEG",
                UnOp::Not => "NOT",
                UnOp::LNot => "LNOT",
            },
            MacroOp::Binary(b) => match b {
                BinOp::Add => "ADD",
                BinOp::Sub => "SUB",
                BinOp::Mul => "MUL",
                BinOp::Div => "DIV",
                BinOp::Rem => "REM",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Xor => "XOR",
                BinOp::Shl => "SHL",
                BinOp::Shr => "SHR",
                BinOp::Eq => "EQ",
                BinOp::Ne => "NE",
                BinOp::Lt => "LT",
                BinOp::Le => "LE",
                BinOp::Gt => "GT",
                BinOp::Ge => "GE",
            },
        }
    }

    /// Parses a mnemonic back into a macro-op.
    pub fn from_mnemonic(s: &str) -> Option<MacroOp> {
        ALL_MACRO_OPS.iter().copied().find(|m| m.mnemonic() == s)
    }
}

impl fmt::Display for MacroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Every macro-operation, in a stable order (the characterization flow
/// iterates this list).
pub const ALL_MACRO_OPS: &[MacroOp] = &[
    MacroOp::Avv,
    MacroOp::Aemit,
    MacroOp::TivarT,
    MacroOp::TivarF,
    MacroOp::MemRead,
    MacroOp::MemWrite,
    MacroOp::Unary(UnOp::Neg),
    MacroOp::Unary(UnOp::Not),
    MacroOp::Unary(UnOp::LNot),
    MacroOp::Binary(BinOp::Add),
    MacroOp::Binary(BinOp::Sub),
    MacroOp::Binary(BinOp::Mul),
    MacroOp::Binary(BinOp::Div),
    MacroOp::Binary(BinOp::Rem),
    MacroOp::Binary(BinOp::And),
    MacroOp::Binary(BinOp::Or),
    MacroOp::Binary(BinOp::Xor),
    MacroOp::Binary(BinOp::Shl),
    MacroOp::Binary(BinOp::Shr),
    MacroOp::Binary(BinOp::Eq),
    MacroOp::Binary(BinOp::Ne),
    MacroOp::Binary(BinOp::Lt),
    MacroOp::Binary(BinOp::Le),
    MacroOp::Binary(BinOp::Gt),
    MacroOp::Binary(BinOp::Ge),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = ALL_MACRO_OPS.iter().map(|m| m.mnemonic()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for &m in ALL_MACRO_OPS {
            assert_eq!(MacroOp::from_mnemonic(m.mnemonic()), Some(m));
        }
        assert_eq!(MacroOp::from_mnemonic("BOGUS"), None);
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(MacroOp::Avv.to_string(), "AVV");
        assert_eq!(MacroOp::Binary(BinOp::Add).to_string(), "ADD");
    }

    #[test]
    fn library_size_matches_paper_scale() {
        // The paper cites ~30 library functions; keep the inventory in
        // that ballpark so characterization cost is comparable.
        assert!(ALL_MACRO_OPS.len() >= 20 && ALL_MACRO_OPS.len() <= 40);
    }
}
