//! Integer expressions used in transition guards and bodies.
//!
//! POLIS transition bodies are built from a small library of
//! pre-characterizable arithmetic / relational / logical functions
//! (`ADD(x1,x2)`, `NOT(x1)`, `EQ(x1,x2)`, …). Expressions here mirror that
//! library: every operator node corresponds to one macro-operation for the
//! software macro-modeling flow.

use crate::event::EventId;
use std::fmt;

/// Identifier of a per-process local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical negation (`x == 0`).
    LNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (truncating). Division by zero yields zero (hardware
    /// convention; keeps the behavioral model total).
    Div,
    /// Remainder. Remainder by zero yields zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Arithmetic right shift (modulo 64).
    Shr,
    /// Equality (1/0).
    Eq,
    /// Inequality (1/0).
    Ne,
    /// Less-than (1/0).
    Lt,
    /// Less-or-equal (1/0).
    Le,
    /// Greater-than (1/0).
    Gt,
    /// Greater-or-equal (1/0).
    Ge,
}

/// An integer expression over local variables and the values of the
/// triggering input events.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Local variable read.
    Var(VarId),
    /// The value carried by the given (triggering) input event.
    EventValue(EventId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// `lhs + rhs`. (A static constructor, not an operator overload —
    /// `Expr` values are AST nodes, not numbers.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`. (A static constructor, not an operator overload.)
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs == rhs` (1/0).
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }

    /// `lhs < rhs` (1/0).
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, lhs, rhs)
    }

    /// `lhs > rhs` (1/0).
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, lhs, rhs)
    }

    /// Evaluates the expression.
    ///
    /// `vars[i]` is the value of `VarId(i)`; `event_value(e)` returns the
    /// value carried by input event `e` (0 if absent/pure — consistent with
    /// the generated-code convention of reading a stale buffer).
    pub fn eval(&self, vars: &[i64], event_value: &dyn Fn(EventId) -> i64) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => vars[v.0 as usize],
            Expr::EventValue(e) => event_value(*e),
            Expr::Unary(op, e) => {
                let x = e.eval(vars, event_value);
                match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => !x,
                    UnOp::LNot => i64::from(x == 0),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval(vars, event_value);
                let y = b.eval(vars, event_value);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl(y as u32 % 64),
                    BinOp::Shr => x.wrapping_shr(y as u32 % 64),
                    BinOp::Eq => i64::from(x == y),
                    BinOp::Ne => i64::from(x != y),
                    BinOp::Lt => i64::from(x < y),
                    BinOp::Le => i64::from(x <= y),
                    BinOp::Gt => i64::from(x > y),
                    BinOp::Ge => i64::from(x >= y),
                }
            }
        }
    }

    /// Visits every operator node (used for macro-operation counting and
    /// code generation sizing).
    pub fn visit_ops(&self, f: &mut dyn FnMut(OpKind)) {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::EventValue(_) => {}
            Expr::Unary(op, e) => {
                e.visit_ops(f);
                f(OpKind::Unary(*op));
            }
            Expr::Binary(op, a, b) => {
                a.visit_ops(f);
                b.visit_ops(f);
                f(OpKind::Binary(*op));
            }
        }
    }

    /// Number of operator nodes in the expression.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.visit_ops(&mut |_| n += 1);
        n
    }

    /// Maximum depth of the expression tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::EventValue(_) => 1,
            Expr::Unary(_, e) => 1 + e.depth(),
            Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

/// An operator occurrence reported by [`Expr::visit_ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A unary operator.
    Unary(UnOp),
    /// A binary operator.
    Binary(BinOp),
}

impl From<i64> for Expr {
    fn from(c: i64) -> Self {
        Expr::Const(c)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Self {
        Expr::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev0(_: EventId) -> i64 {
        0
    }

    #[test]
    fn constants_and_vars() {
        let vars = [10, 20];
        assert_eq!(Expr::Const(5).eval(&vars, &ev0), 5);
        assert_eq!(Expr::Var(VarId(1)).eval(&vars, &ev0), 20);
    }

    #[test]
    fn event_values() {
        let f = |e: EventId| if e == EventId(3) { 42 } else { 0 };
        assert_eq!(Expr::EventValue(EventId(3)).eval(&[], &f), 42);
        assert_eq!(Expr::EventValue(EventId(0)).eval(&[], &f), 0);
    }

    #[test]
    fn arithmetic() {
        let e = Expr::add(Expr::Const(2), Expr::bin(BinOp::Mul, 3.into(), 4.into()));
        assert_eq!(e.eval(&[], &ev0), 14);
        assert_eq!(Expr::sub(10.into(), 3.into()).eval(&[], &ev0), 7);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(Expr::bin(BinOp::Div, 5.into(), 0.into()).eval(&[], &ev0), 0);
        assert_eq!(Expr::bin(BinOp::Rem, 5.into(), 0.into()).eval(&[], &ev0), 0);
    }

    #[test]
    fn comparisons_yield_01() {
        assert_eq!(Expr::lt(1.into(), 2.into()).eval(&[], &ev0), 1);
        assert_eq!(Expr::gt(1.into(), 2.into()).eval(&[], &ev0), 0);
        assert_eq!(Expr::eq(7.into(), 7.into()).eval(&[], &ev0), 1);
        assert_eq!(Expr::bin(BinOp::Ne, 7.into(), 7.into()).eval(&[], &ev0), 0);
        assert_eq!(Expr::bin(BinOp::Le, 2.into(), 2.into()).eval(&[], &ev0), 1);
        assert_eq!(Expr::bin(BinOp::Ge, 1.into(), 2.into()).eval(&[], &ev0), 0);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(Expr::un(UnOp::Neg, 5.into()).eval(&[], &ev0), -5);
        assert_eq!(Expr::un(UnOp::Not, 0.into()).eval(&[], &ev0), -1);
        assert_eq!(Expr::un(UnOp::LNot, 0.into()).eval(&[], &ev0), 1);
        assert_eq!(Expr::un(UnOp::LNot, 3.into()).eval(&[], &ev0), 0);
    }

    #[test]
    fn bitwise_and_shifts() {
        assert_eq!(Expr::bin(BinOp::And, 6.into(), 3.into()).eval(&[], &ev0), 2);
        assert_eq!(Expr::bin(BinOp::Or, 6.into(), 1.into()).eval(&[], &ev0), 7);
        assert_eq!(Expr::bin(BinOp::Xor, 6.into(), 3.into()).eval(&[], &ev0), 5);
        assert_eq!(Expr::bin(BinOp::Shl, 1.into(), 4.into()).eval(&[], &ev0), 16);
        assert_eq!(Expr::bin(BinOp::Shr, 16.into(), 4.into()).eval(&[], &ev0), 1);
    }

    #[test]
    fn wrapping_semantics() {
        let e = Expr::add(i64::MAX.into(), 1.into());
        assert_eq!(e.eval(&[], &ev0), i64::MIN);
    }

    #[test]
    fn op_count_and_depth() {
        let e = Expr::add(
            Expr::bin(BinOp::Mul, Expr::Var(VarId(0)), 2.into()),
            Expr::un(UnOp::Neg, 3.into()),
        );
        assert_eq!(e.op_count(), 3);
        assert_eq!(e.depth(), 3);
        let mut kinds = Vec::new();
        e.visit_ops(&mut |k| kinds.push(k));
        assert_eq!(
            kinds,
            vec![
                OpKind::Binary(BinOp::Mul),
                OpKind::Unary(UnOp::Neg),
                OpKind::Binary(BinOp::Add)
            ]
        );
    }
}
