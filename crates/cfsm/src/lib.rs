//! `cfsm` — Codesign Finite State Machines, the POLIS behavioral model.
//!
//! This crate provides the system-specification substrate of the DATE 2000
//! power co-estimation paper: a system is a [`Network`] of concurrent
//! [`Cfsm`] processes communicating through [events](EventDef) with
//! single-place buffers, each process mapped to hardware or software
//! ([`Implementation`]). Transition bodies are [control-flow
//! graphs](Cfg) over integer [expressions](Expr); interpreting a body
//! yields the taken [`PathId`] (the energy-cache key), the emitted events,
//! the [macro-operation](MacroOp) trace (the macro-modeling currency) and
//! the issued shared-memory accesses (the bus/cache workload).
//!
//! # Examples
//!
//! ```
//! use cfsm::{Cfsm, Cfg, Stmt, Expr, Network, EventDef, Implementation, EventOccurrence};
//!
//! // One process that increments a counter on every TICK.
//! let mut nb = Network::builder();
//! let tick = nb.event(EventDef::pure("TICK"));
//! let done = nb.event(EventDef::valued("DONE"));
//!
//! let mut mb = Cfsm::builder("counter");
//! let s = mb.state("run");
//! let n = mb.var("n", 0);
//! mb.transition(
//!     s,
//!     vec![tick],
//!     None,
//!     Cfg::straight_line(vec![
//!         Stmt::Assign { var: n, expr: Expr::add(Expr::Var(n), Expr::Const(1)) },
//!         Stmt::Emit { event: done, value: Some(Expr::Var(n)) },
//!     ]),
//!     s,
//! );
//! let p = nb.process(mb.finish()?, Implementation::Sw);
//!
//! let net = nb.finish()?;
//! let mut state = net.spawn();
//! net.broadcast(&mut state, EventOccurrence::pure(tick));
//! let fired = net.fire(&mut state, p).expect("enabled");
//! assert_eq!(fired.execution.emitted, vec![(done, Some(1))]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
pub mod dot;
mod event;
mod expr;
mod macro_op;
mod machine;
mod network;

pub use cfg::{
    BasicBlock, BlockId, Cfg, CfgBuilder, ExecEnv, Execution, MemAccess, NullEnv, PathId, Stmt,
    Terminator, ValidateCfgError,
};
pub use event::{EventBuffer, EventDef, EventId, EventOccurrence};
pub use expr::{BinOp, Expr, OpKind, UnOp, VarId};
pub use macro_op::{MacroOp, ALL_MACRO_OPS};
pub use machine::{
    Cfsm, CfsmBuilder, CfsmRuntime, FireResult, StateId, Transition, TransitionId,
    ValidateCfsmError,
};
pub use network::{
    BuildNetworkError, Implementation, Network, NetworkBuilder, NetworkState, ProcId, SharedMemory,
};
