//! CFSM networks — a system is a set of communicating CFSMs plus a
//! HW/SW mapping.
//!
//! Events live in a global namespace per network. An emitted occurrence is
//! broadcast to every process that *listens* to the event (i.e. names it in
//! a trigger, guard or body). Each process is mapped to hardware or to
//! software on the shared embedded processor — the mapping decides which
//! power estimator the co-estimation master dispatches its firings to.

use crate::cfg::{ExecEnv, Stmt, Terminator};
use crate::event::{EventDef, EventId, EventOccurrence};
use crate::expr::Expr;
use crate::machine::{Cfsm, CfsmRuntime, FireResult, ValidateCfsmError};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a process within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Whether a process is implemented in hardware or software.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// Application-specific hardware (gate-level estimator).
    Hw,
    /// Embedded software on the shared processor (ISS estimator).
    Sw,
}

impl fmt::Display for Implementation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Implementation::Hw => write!(f, "HW"),
            Implementation::Sw => write!(f, "SW"),
        }
    }
}

#[derive(Debug, Clone)]
struct ProcDef {
    cfsm: Cfsm,
    mapping: Implementation,
    listens: BTreeSet<EventId>,
    emits: BTreeSet<EventId>,
}

/// Errors from [`NetworkBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetworkError {
    /// A process failed CFSM validation.
    InvalidProcess(String, ValidateCfsmError),
    /// A process references an event id outside the network's event table.
    UnknownEvent(String, EventId),
}

impl fmt::Display for BuildNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetworkError::InvalidProcess(p, e) => {
                write!(f, "process `{p}` is invalid: {e}")
            }
            BuildNetworkError::UnknownEvent(p, e) => {
                write!(f, "process `{p}` references unknown event {e}")
            }
        }
    }
}

impl std::error::Error for BuildNetworkError {}

/// The static definition of a system: events, processes and their mapping.
#[derive(Debug, Clone)]
pub struct Network {
    events: Vec<EventDef>,
    procs: Vec<ProcDef>,
}

impl Network {
    /// Starts building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder {
            events: Vec::new(),
            procs: Vec::new(),
        }
    }

    /// The event table.
    pub fn events(&self) -> &[EventDef] {
        &self.events
    }

    /// Resolves an event name to its id.
    pub fn event_by_name(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|e| e.name == name)
            .map(|i| EventId(i as u32))
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// The CFSM of a process.
    pub fn cfsm(&self, p: ProcId) -> &Cfsm {
        &self.procs[p.0 as usize].cfsm
    }

    /// The HW/SW mapping of a process.
    pub fn mapping(&self, p: ProcId) -> Implementation {
        self.procs[p.0 as usize].mapping
    }

    /// Re-maps a process (design-space exploration knob).
    pub fn set_mapping(&mut self, p: ProcId, mapping: Implementation) {
        self.procs[p.0 as usize].mapping = mapping;
    }

    /// Resolves a process name to its id.
    pub fn process_by_name(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .position(|p| p.cfsm.name() == name)
            .map(|i| ProcId(i as u32))
    }

    /// Iterates over process ids.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.procs.len() as u32).map(ProcId)
    }

    /// The events a process listens to (derived from its triggers, guards
    /// and bodies).
    pub fn listens(&self, p: ProcId) -> &BTreeSet<EventId> {
        &self.procs[p.0 as usize].listens
    }

    /// The processes that listen to `event`.
    pub fn listeners(&self, event: EventId) -> impl Iterator<Item = ProcId> + '_ {
        self.procs
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.listens.contains(&event))
            .map(|(i, _)| ProcId(i as u32))
    }

    /// The events a process may emit (the union of its transitions'
    /// [syntactic emit sets](crate::Transition::emits), derived at build
    /// time like the listen sets).
    pub fn emits(&self, p: ProcId) -> &BTreeSet<EventId> {
        &self.procs[p.0 as usize].emits
    }

    /// The processes that may produce `event` — the static
    /// producer/consumer graph edge the liveness checker walks.
    pub fn producers(&self, event: EventId) -> impl Iterator<Item = ProcId> + '_ {
        self.procs
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.emits.contains(&event))
            .map(|(i, _)| ProcId(i as u32))
    }

    /// Creates a fresh runtime state for the whole network.
    pub fn spawn(&self) -> NetworkState {
        NetworkState {
            runtimes: self
                .procs
                .iter()
                .map(|p| p.cfsm.spawn(self.events.len()))
                .collect(),
            memory: SharedMemory::new(),
        }
    }

    /// Delivers an occurrence to every listener (and no one else).
    pub fn broadcast(&self, state: &mut NetworkState, occ: EventOccurrence) {
        for (i, p) in self.procs.iter().enumerate() {
            if p.listens.contains(&occ.event) {
                state.runtimes[i].deliver(occ);
            }
        }
    }

    /// Fires the first enabled transition of process `p`, if any, routing
    /// shared-memory accesses to the network state's functional memory.
    /// Emitted events are **not** yet broadcast — the caller (simulation
    /// master) decides their delivery time.
    pub fn fire(&self, state: &mut NetworkState, p: ProcId) -> Option<FireResult> {
        let NetworkState { runtimes, memory } = state;
        self.procs[p.0 as usize]
            .cfsm
            .try_fire(&mut runtimes[p.0 as usize], memory)
    }

    /// Which process, if any, has an enabled transition (lowest id first).
    pub fn any_enabled(&self, state: &NetworkState) -> Option<ProcId> {
        for (i, p) in self.procs.iter().enumerate() {
            if p.cfsm.enabled(&state.runtimes[i]).is_some() {
                return Some(ProcId(i as u32));
            }
        }
        None
    }
}

/// Mutable runtime state of a [`Network`]: per-process runtimes plus the
/// functional shared memory.
#[derive(Debug, Clone)]
pub struct NetworkState {
    runtimes: Vec<CfsmRuntime>,
    memory: SharedMemory,
}

impl NetworkState {
    /// The runtime of one process.
    pub fn runtime(&self, p: ProcId) -> &CfsmRuntime {
        &self.runtimes[p.0 as usize]
    }

    /// Mutable runtime of one process.
    pub fn runtime_mut(&mut self, p: ProcId) -> &mut CfsmRuntime {
        &mut self.runtimes[p.0 as usize]
    }

    /// The functional shared memory.
    pub fn memory(&self) -> &SharedMemory {
        &self.memory
    }

    /// Mutable functional shared memory.
    pub fn memory_mut(&mut self) -> &mut SharedMemory {
        &mut self.memory
    }
}

/// A sparse, functional model of the system's shared memory.
///
/// Timing and energy of accesses are modeled by the `busmodel` and
/// `cachesim` crates; this type only supplies values.
#[derive(Debug, Clone, Default)]
pub struct SharedMemory {
    cells: HashMap<u64, i64>,
    reads: u64,
    writes: u64,
}

impl SharedMemory {
    /// Creates an empty (zero-filled) memory.
    pub fn new() -> Self {
        SharedMemory::default()
    }

    /// Reads the cell at `addr` (0 if never written).
    pub fn read(&self, addr: u64) -> i64 {
        *self.cells.get(&addr).unwrap_or(&0)
    }

    /// Writes the cell at `addr`.
    pub fn write(&mut self, addr: u64, value: i64) {
        self.cells.insert(addr, value);
    }

    /// Total functional reads/writes performed through [`ExecEnv`].
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

impl ExecEnv for SharedMemory {
    fn event_value(&self, _event: EventId) -> i64 {
        0
    }
    fn mem_read(&mut self, addr: u64) -> i64 {
        self.reads += 1;
        self.read(addr)
    }
    fn mem_write(&mut self, addr: u64, value: i64) {
        self.writes += 1;
        self.write(addr, value);
    }
}

/// Builder for [`Network`]s.
///
/// # Examples
///
/// ```
/// use cfsm::{Network, EventDef, Cfsm, Cfg, EventId, Implementation};
///
/// let mut nb = Network::builder();
/// let tick = nb.event(EventDef::pure("TICK"));
/// let mut mb = Cfsm::builder("blinker");
/// let s = mb.state("s");
/// mb.transition(s, vec![tick], None, Cfg::empty(), s);
/// let machine = mb.finish().expect("valid machine");
/// nb.process(machine, Implementation::Hw);
/// let net = nb.finish().expect("valid network");
/// assert_eq!(net.process_count(), 1);
/// assert_eq!(net.event_by_name("TICK"), Some(tick));
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    events: Vec<EventDef>,
    procs: Vec<(Cfsm, Implementation)>,
}

impl NetworkBuilder {
    /// Declares an event type, returning its id.
    pub fn event(&mut self, def: EventDef) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(def);
        id
    }

    /// Adds a process with its HW/SW mapping, returning its id.
    pub fn process(&mut self, cfsm: Cfsm, mapping: Implementation) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push((cfsm, mapping));
        id
    }

    /// Finalizes: validates every process and derives listen sets.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildNetworkError`] if any process is invalid or
    /// references an event outside the table.
    pub fn finish(self) -> Result<Network, BuildNetworkError> {
        let n_events = self.events.len() as u32;
        let mut procs = Vec::with_capacity(self.procs.len());
        for (cfsm, mapping) in self.procs {
            cfsm.validate()
                .map_err(|e| BuildNetworkError::InvalidProcess(cfsm.name().to_string(), e))?;
            let mut listens = BTreeSet::new();
            let check = |e: EventId| -> Result<(), BuildNetworkError> {
                if e.0 >= n_events {
                    Err(BuildNetworkError::UnknownEvent(cfsm.name().to_string(), e))
                } else {
                    Ok(())
                }
            };
            for t in cfsm.transitions() {
                for &e in &t.trigger {
                    check(e)?;
                    listens.insert(e);
                }
                if let Some(g) = &t.guard {
                    collect_event_reads(g, &mut listens);
                }
                for b in t.body.blocks() {
                    for s in &b.stmts {
                        match s {
                            Stmt::Assign { expr, .. } => collect_event_reads(expr, &mut listens),
                            Stmt::Emit { event, value } => {
                                check(*event)?;
                                if let Some(v) = value {
                                    collect_event_reads(v, &mut listens);
                                }
                            }
                            Stmt::MemRead { addr, .. } => collect_event_reads(addr, &mut listens),
                            Stmt::MemWrite { addr, value } => {
                                collect_event_reads(addr, &mut listens);
                                collect_event_reads(value, &mut listens);
                            }
                        }
                    }
                    if let Terminator::Branch { cond, .. } = &b.term {
                        collect_event_reads(cond, &mut listens);
                    }
                }
            }
            for &e in &listens {
                if e.0 >= n_events {
                    return Err(BuildNetworkError::UnknownEvent(
                        cfsm.name().to_string(),
                        e,
                    ));
                }
            }
            let emits = cfsm.emitted_events();
            procs.push(ProcDef {
                cfsm,
                mapping,
                listens,
                emits,
            });
        }
        Ok(Network {
            events: self.events,
            procs,
        })
    }
}

fn collect_event_reads(e: &Expr, out: &mut BTreeSet<EventId>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::EventValue(ev) => {
            out.insert(*ev);
        }
        Expr::Unary(_, a) => collect_event_reads(a, out),
        Expr::Binary(_, a, b) => {
            collect_event_reads(a, out);
            collect_event_reads(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    

    fn simple_machine(name: &str, trig: EventId, emit: EventId) -> Cfsm {
        let mut b = Cfsm::builder(name);
        let s = b.state("s");
        b.transition(
            s,
            vec![trig],
            None,
            Cfg::straight_line(vec![Stmt::Emit {
                event: emit,
                value: None,
            }]),
            s,
        );
        b.finish().expect("valid")
    }

    #[test]
    fn listen_sets_derived_from_triggers() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let bv = nb.event(EventDef::pure("B"));
        let p = nb.process(simple_machine("m", a, bv), Implementation::Hw);
        let net = nb.finish().expect("valid");
        assert!(net.listens(p).contains(&a));
        assert!(!net.listens(p).contains(&bv));
        assert_eq!(net.listeners(a).collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    fn emit_sets_and_producers_derived_at_build_time() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let bv = nb.event(EventDef::pure("B"));
        let p0 = nb.process(simple_machine("m0", a, bv), Implementation::Hw);
        let p1 = nb.process(simple_machine("m1", bv, a), Implementation::Sw);
        let net = nb.finish().expect("valid");
        assert!(net.emits(p0).contains(&bv) && !net.emits(p0).contains(&a));
        assert!(net.emits(p1).contains(&a) && !net.emits(p1).contains(&bv));
        assert_eq!(net.producers(a).collect::<Vec<_>>(), vec![p1]);
        assert_eq!(net.producers(bv).collect::<Vec<_>>(), vec![p0]);
    }

    #[test]
    fn broadcast_reaches_only_listeners() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let bv = nb.event(EventDef::pure("B"));
        let p0 = nb.process(simple_machine("m0", a, bv), Implementation::Hw);
        let p1 = nb.process(simple_machine("m1", bv, a), Implementation::Sw);
        let net = nb.finish().expect("valid");
        let mut st = net.spawn();
        net.broadcast(&mut st, EventOccurrence::pure(a));
        assert!(st.runtime(p0).buffer().is_present(a));
        assert!(!st.runtime(p1).buffer().is_present(a));
    }

    #[test]
    fn fire_executes_and_returns_emissions() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let bv = nb.event(EventDef::pure("B"));
        let p = nb.process(simple_machine("m", a, bv), Implementation::Hw);
        let net = nb.finish().expect("valid");
        let mut st = net.spawn();
        assert!(net.fire(&mut st, p).is_none());
        net.broadcast(&mut st, EventOccurrence::pure(a));
        assert_eq!(net.any_enabled(&st), Some(p));
        let fr = net.fire(&mut st, p).expect("fired");
        assert_eq!(fr.execution.emitted, vec![(bv, None)]);
        assert_eq!(net.any_enabled(&st), None);
    }

    #[test]
    fn unknown_event_rejected() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        // emits EventId(7), never declared
        nb.process(simple_machine("m", a, EventId(7)), Implementation::Hw);
        assert!(matches!(
            nb.finish(),
            Err(BuildNetworkError::UnknownEvent(_, EventId(7)))
        ));
    }

    #[test]
    fn name_lookup() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let b2 = nb.event(EventDef::valued("B"));
        nb.process(simple_machine("prod", a, b2), Implementation::Sw);
        let net = nb.finish().expect("valid");
        assert_eq!(net.event_by_name("B"), Some(b2));
        assert_eq!(net.event_by_name("missing"), None);
        assert!(net.process_by_name("prod").is_some());
        assert_eq!(net.process_by_name("nope"), None);
    }

    #[test]
    fn mapping_can_be_changed() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let p = nb.process(simple_machine("m", a, a), Implementation::Hw);
        let mut net = nb.finish().expect("valid");
        assert_eq!(net.mapping(p), Implementation::Hw);
        net.set_mapping(p, Implementation::Sw);
        assert_eq!(net.mapping(p), Implementation::Sw);
    }

    #[test]
    fn shared_memory_functional_model() {
        let mut m = SharedMemory::new();
        assert_eq!(m.read(100), 0);
        m.write(100, -5);
        assert_eq!(m.read(100), -5);
        use crate::cfg::ExecEnv;
        let v = m.mem_read(100);
        assert_eq!(v, -5);
        m.mem_write(4, 9);
        assert_eq!(m.access_counts(), (1, 1));
    }

    #[test]
    fn guard_event_reads_count_as_listening() {
        let mut nb = Network::builder();
        let a = nb.event(EventDef::pure("A"));
        let t = nb.event(EventDef::valued("T"));
        let mut mb = Cfsm::builder("g");
        let s = mb.state("s");
        mb.transition(
            s,
            vec![a],
            Some(Expr::gt(Expr::EventValue(t), Expr::Const(0))),
            Cfg::empty(),
            s,
        );
        let p = nb.process(mb.finish().expect("valid machine"), Implementation::Hw);
        let net = nb.finish().expect("valid");
        assert!(net.listens(p).contains(&t));
    }
}
