//! Graphviz (DOT) rendering of networks, machines and control-flow
//! graphs — the "source-level graphical interface" niceties a
//! co-design environment provides for inspecting a specification.

use crate::cfg::{Cfg, Terminator};
use crate::machine::Cfsm;
use crate::network::{Implementation, Network};
use std::fmt::Write as _;

/// Renders the process/event topology of a network: processes as nodes
/// (doublecircle = HW, box = SW), one edge per (emitter, event, listener).
pub fn network_to_dot(net: &Network) -> String {
    let mut s = String::from("digraph network {\n  rankdir=LR;\n");
    for p in net.process_ids() {
        let shape = match net.mapping(p) {
            Implementation::Hw => "doublecircle",
            Implementation::Sw => "box",
        };
        let _ = writeln!(
            s,
            "  p{} [label=\"{}\\n[{}]\" shape={}];",
            p.0,
            net.cfsm(p).name(),
            net.mapping(p),
            shape
        );
    }
    // Emission edges: for each process, each event its bodies can emit,
    // draw an edge to every listener.
    for p in net.process_ids() {
        let mut emitted = std::collections::BTreeSet::new();
        for t in net.cfsm(p).transitions() {
            for b in t.body.blocks() {
                for st in &b.stmts {
                    if let crate::cfg::Stmt::Emit { event, .. } = st {
                        emitted.insert(*event);
                    }
                }
            }
        }
        for e in emitted {
            for q in net.listeners(e) {
                let _ = writeln!(
                    s,
                    "  p{} -> p{} [label=\"{}\"];",
                    p.0, q.0, net.events()[e.0 as usize].name
                );
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Renders one machine's state graph: control states as nodes, one edge
/// per transition labeled with its trigger events.
pub fn machine_to_dot(machine: &Cfsm, event_name: &dyn Fn(crate::EventId) -> String) -> String {
    let mut s = format!("digraph {} {{\n", sanitize(machine.name()));
    for (i, name) in machine.states().iter().enumerate() {
        let style = if i == machine.initial_state().0 as usize {
            " peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(s, "  s{i} [label=\"{name}\"{style}];");
    }
    for t in machine.transitions() {
        let trig: Vec<String> = t.trigger.iter().map(|&e| event_name(e)).collect();
        let guard = if t.guard.is_some() { " [g]" } else { "" };
        let _ = writeln!(
            s,
            "  s{} -> s{} [label=\"{}{}\"];",
            t.from.0,
            t.to.0,
            trig.join(" & "),
            guard
        );
    }
    s.push_str("}\n");
    s
}

/// Renders a transition body's control-flow graph: one node per basic
/// block (showing its statement count), labeled branch edges.
pub fn cfg_to_dot(cfg: &Cfg, title: &str) -> String {
    let mut s = format!("digraph {} {{\n  node [shape=box];\n", sanitize(title));
    for (i, b) in cfg.blocks().iter().enumerate() {
        let _ = writeln!(s, "  b{i} [label=\"B{i}\\n{} stmts\"];", b.stmts.len());
        match &b.term {
            Terminator::Goto(t) => {
                let _ = writeln!(s, "  b{i} -> b{};", t.0);
            }
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => {
                let _ = writeln!(s, "  b{i} -> b{} [label=\"T\"];", then_block.0);
                let _ = writeln!(s, "  b{i} -> b{} [label=\"F\"];", else_block.0);
            }
            Terminator::Return => {
                let _ = writeln!(s, "  b{i} -> exit;");
            }
        }
    }
    s.push_str("  exit [shape=doublecircle label=\"\"];\n}\n");
    s
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_none_or(|c| c.is_numeric()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Stmt, ValidateCfgError};
    use crate::event::EventDef;
    use crate::expr::Expr;
    use crate::{BlockId, CfgBuilder, EventId};

    fn diamond() -> Result<Cfg, ValidateCfgError> {
        let mut b = CfgBuilder::new();
        b.block(
            vec![],
            Terminator::Branch {
                cond: Expr::Const(1),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        b.block(vec![], Terminator::Goto(BlockId(3)));
        b.block(vec![], Terminator::Goto(BlockId(3)));
        b.block(vec![], Terminator::Return);
        b.finish()
    }

    #[test]
    fn cfg_dot_contains_all_blocks_and_edges() {
        let dot = cfg_to_dot(&diamond().expect("valid"), "diamond");
        assert!(dot.starts_with("digraph diamond {"));
        for b in ["b0", "b1", "b2", "b3"] {
            assert!(dot.contains(b), "missing {b}");
        }
        assert!(dot.contains("b0 -> b1 [label=\"T\"]"));
        assert!(dot.contains("b0 -> b2 [label=\"F\"]"));
        assert!(dot.contains("b3 -> exit"));
    }

    #[test]
    fn machine_dot_marks_initial_state_and_triggers() {
        let mut b = Cfsm::builder("m");
        let a = b.state("idle");
        let c = b.state("run");
        b.transition(a, vec![EventId(0)], None, Cfg::empty(), c);
        b.transition(c, vec![EventId(1)], Some(Expr::Const(1)), Cfg::empty(), a);
        let m = b.finish().expect("valid");
        let dot = machine_to_dot(&m, &|e| format!("EV{}", e.0));
        assert!(dot.contains("peripheries=2"), "initial state marked");
        assert!(dot.contains("EV0"));
        assert!(dot.contains("[g]"), "guard annotated");
    }

    #[test]
    fn network_dot_draws_event_edges_between_processes() {
        let mut nb = Network::builder();
        let go = nb.event(EventDef::pure("GO"));
        let out = nb.event(EventDef::pure("OUT"));
        let mut prod = Cfsm::builder("prod");
        let s = prod.state("s");
        prod.transition(
            s,
            vec![go],
            None,
            Cfg::straight_line(vec![Stmt::Emit {
                event: out,
                value: None,
            }]),
            s,
        );
        nb.process(prod.finish().expect("valid"), Implementation::Sw);
        let mut cons = Cfsm::builder("cons");
        let c = cons.state("c");
        cons.transition(c, vec![out], None, Cfg::empty(), c);
        nb.process(cons.finish().expect("valid"), Implementation::Hw);
        let net = nb.finish().expect("valid network");
        let dot = network_to_dot(&net);
        assert!(dot.contains("prod"));
        assert!(dot.contains("cons"));
        assert!(dot.contains("p0 -> p1 [label=\"OUT\"]"));
        assert!(dot.contains("doublecircle"), "HW shape");
        assert!(dot.contains("shape=box"), "SW shape");
    }

    #[test]
    fn sanitize_handles_awkward_names() {
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("1abc"), "g_1abc");
    }
}
