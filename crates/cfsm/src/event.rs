//! Events — the communication primitive of a CFSM network.
//!
//! CFSMs communicate through *events*, possibly carrying an integer value.
//! Following POLIS semantics, each (process, event) input port is a
//! **single-place buffer**: a newly delivered occurrence overwrites an
//! unconsumed one (events can be lost), and firing a transition consumes
//! the buffered occurrences it reads.

use std::fmt;

/// Identifier of an event type within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

/// Static description of an event type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDef {
    /// Human-readable name, e.g. `"END_COMP"`.
    pub name: String,
    /// Whether occurrences carry an integer value.
    pub carries_value: bool,
}

impl EventDef {
    /// Creates a pure (valueless) event definition.
    pub fn pure(name: impl Into<String>) -> Self {
        EventDef {
            name: name.into(),
            carries_value: false,
        }
    }

    /// Creates a valued event definition.
    pub fn valued(name: impl Into<String>) -> Self {
        EventDef {
            name: name.into(),
            carries_value: true,
        }
    }
}

/// An event occurrence: the event plus its (optional) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventOccurrence {
    /// Which event occurred.
    pub event: EventId,
    /// The carried value (`None` for pure events).
    pub value: Option<i64>,
}

impl EventOccurrence {
    /// A pure occurrence of `event`.
    pub fn pure(event: EventId) -> Self {
        EventOccurrence { event, value: None }
    }

    /// A valued occurrence of `event`.
    pub fn valued(event: EventId, value: i64) -> Self {
        EventOccurrence {
            event,
            value: Some(value),
        }
    }
}

/// Per-process single-place input buffers, indexed by [`EventId`].
///
/// # Examples
///
/// ```
/// use cfsm::{EventBuffer, EventId, EventOccurrence};
///
/// let mut buf = EventBuffer::new(4);
/// buf.deliver(EventOccurrence::valued(EventId(2), 7));
/// assert!(buf.is_present(EventId(2)));
/// assert_eq!(buf.value(EventId(2)), Some(7));
/// buf.consume(EventId(2));
/// assert!(!buf.is_present(EventId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBuffer {
    slots: Vec<Option<Option<i64>>>, // present? -> carried value
    lost: u64,
}

impl EventBuffer {
    /// Creates buffers for `n_events` event types, all empty.
    pub fn new(n_events: usize) -> Self {
        EventBuffer {
            slots: vec![None; n_events],
            lost: 0,
        }
    }

    /// Number of event slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are zero event slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Delivers an occurrence, overwriting (losing) any unconsumed one.
    ///
    /// # Panics
    ///
    /// Panics if the event id is out of range.
    pub fn deliver(&mut self, occ: EventOccurrence) {
        let slot = &mut self.slots[occ.event.0 as usize];
        if slot.is_some() {
            self.lost += 1;
        }
        *slot = Some(occ.value);
    }

    /// Whether an unconsumed occurrence of `event` is buffered.
    pub fn is_present(&self, event: EventId) -> bool {
        self.slots
            .get(event.0 as usize)
            .is_some_and(|s| s.is_some())
    }

    /// The buffered value of `event` (None if absent or pure).
    pub fn value(&self, event: EventId) -> Option<i64> {
        self.slots.get(event.0 as usize).copied().flatten().flatten()
    }

    /// Consumes the buffered occurrence of `event`, if any.
    pub fn consume(&mut self, event: EventId) {
        if let Some(slot) = self.slots.get_mut(event.0 as usize) {
            *slot = None;
        }
    }

    /// Consumes all buffered occurrences.
    pub fn consume_all(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Number of occurrences lost to overwrites so far (a POLIS
    /// single-place-buffer diagnostic).
    pub fn lost_count(&self) -> u64 {
        self.lost
    }

    /// Iterates over the currently present events.
    pub fn present(&self) -> impl Iterator<Item = EventId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| EventId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs() {
        let p = EventDef::pure("RESET");
        assert!(!p.carries_value);
        let v = EventDef::valued("TIME");
        assert!(v.carries_value);
        assert_eq!(v.name, "TIME");
    }

    #[test]
    fn deliver_and_consume() {
        let mut b = EventBuffer::new(3);
        assert!(!b.is_present(EventId(0)));
        b.deliver(EventOccurrence::pure(EventId(0)));
        assert!(b.is_present(EventId(0)));
        assert_eq!(b.value(EventId(0)), None);
        b.consume(EventId(0));
        assert!(!b.is_present(EventId(0)));
    }

    #[test]
    fn valued_occurrence_roundtrip() {
        let mut b = EventBuffer::new(1);
        b.deliver(EventOccurrence::valued(EventId(0), -9));
        assert_eq!(b.value(EventId(0)), Some(-9));
    }

    #[test]
    fn overwrite_counts_as_lost() {
        let mut b = EventBuffer::new(1);
        b.deliver(EventOccurrence::valued(EventId(0), 1));
        b.deliver(EventOccurrence::valued(EventId(0), 2));
        assert_eq!(b.lost_count(), 1);
        assert_eq!(b.value(EventId(0)), Some(2)); // newest wins
    }

    #[test]
    fn present_iterates_current() {
        let mut b = EventBuffer::new(4);
        b.deliver(EventOccurrence::pure(EventId(1)));
        b.deliver(EventOccurrence::pure(EventId(3)));
        let present: Vec<_> = b.present().collect();
        assert_eq!(present, vec![EventId(1), EventId(3)]);
    }

    #[test]
    fn consume_all_clears() {
        let mut b = EventBuffer::new(2);
        b.deliver(EventOccurrence::pure(EventId(0)));
        b.deliver(EventOccurrence::pure(EventId(1)));
        b.consume_all();
        assert_eq!(b.present().count(), 0);
    }

    #[test]
    #[should_panic]
    fn deliver_out_of_range_panics() {
        let mut b = EventBuffer::new(1);
        b.deliver(EventOccurrence::pure(EventId(5)));
    }
}
