//! Property-based tests for expressions and control-flow graphs.

use cfsm::{
    BinOp, BlockId, Cfg, CfgBuilder, EventId, Expr, MacroOp, NullEnv, Stmt, Terminator, UnOp,
    VarId,
};
use proptest::prelude::*;

/// Random expression trees over 4 variables.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|c| Expr::Const(c as i64)),
        (0u32..4).prop_map(|v| Expr::Var(VarId(v))),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            (inner, arb_unop()).prop_map(|(a, op)| Expr::un(op, a)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::LNot)]
}

proptest! {
    /// Evaluation is deterministic and total (never panics) for any tree.
    #[test]
    fn expr_eval_total_and_deterministic(e in arb_expr(), vars in prop::collection::vec(any::<i64>(), 4)) {
        let f = |_: EventId| 0i64;
        let a = e.eval(&vars, &f);
        let b = e.eval(&vars, &f);
        prop_assert_eq!(a, b);
    }

    /// visit_ops reports exactly op_count() operators.
    #[test]
    fn expr_visit_matches_count(e in arb_expr()) {
        let mut n = 0usize;
        e.visit_ops(&mut |_| n += 1);
        prop_assert_eq!(n, e.op_count());
        prop_assert!(e.depth() >= 1);
    }

    /// Comparisons always yield 0 or 1.
    #[test]
    fn comparisons_are_boolean(a in any::<i64>(), b in any::<i64>()) {
        for op in [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge] {
            let v = Expr::bin(op, Expr::Const(a), Expr::Const(b)).eval(&[], &|_| 0);
            prop_assert!(v == 0 || v == 1);
        }
    }

    /// A counted loop executes exactly n bodies, its macro-op trace has
    /// n TIVART + 1 TIVARF outcomes, and the path id depends on n.
    #[test]
    fn counted_loop_trace_shape(n in 0i64..200) {
        let i = VarId(0);
        let mut b = CfgBuilder::new();
        b.block(vec![], Terminator::Branch {
            cond: Expr::gt(Expr::Var(i), Expr::Const(0)),
            then_block: BlockId(1),
            else_block: BlockId(2),
        });
        b.block(
            vec![Stmt::Assign { var: i, expr: Expr::sub(Expr::Var(i), Expr::Const(1)) }],
            Terminator::Goto(BlockId(0)),
        );
        b.block(vec![], Terminator::Return);
        let cfg = b.finish().expect("valid");
        let mut vars = [n];
        let exec = cfg.execute(&mut vars, &mut NullEnv);
        prop_assert_eq!(vars[0], 0);
        let taken = exec.macro_ops.iter().filter(|&&m| m == MacroOp::TivarT).count();
        let fallthrough = exec.macro_ops.iter().filter(|&&m| m == MacroOp::TivarF).count();
        prop_assert_eq!(taken, n as usize);
        prop_assert_eq!(fallthrough, 1);

        // Different iteration counts give different path ids.
        let mut vars2 = [n + 1];
        let exec2 = cfg.execute(&mut vars2, &mut NullEnv);
        prop_assert_ne!(exec.path, exec2.path);
    }

    /// Executing the same CFG on the same inputs gives identical
    /// executions (determinism of the behavioral model).
    #[test]
    fn execution_is_reproducible(seed in any::<i64>()) {
        let v = VarId(0);
        let cfg = Cfg::straight_line(vec![
            Stmt::Assign { var: v, expr: Expr::bin(BinOp::Xor, Expr::Var(v), Expr::Const(seed)) },
            Stmt::Emit { event: EventId(0), value: Some(Expr::Var(v)) },
        ]);
        let mut a = [seed];
        let mut b = [seed];
        let ea = cfg.execute(&mut a, &mut NullEnv);
        let eb = cfg.execute(&mut b, &mut NullEnv);
        prop_assert_eq!(ea, eb);
        prop_assert_eq!(a, b);
    }
}
