//! Randomized (seeded, deterministic) tests for expressions and
//! control-flow graphs. Formerly property-based; now driven by the
//! in-repo deterministic PRNG so the suite builds offline.

use cfsm::{
    BinOp, BlockId, Cfg, CfgBuilder, EventId, Expr, MacroOp, NullEnv, Stmt, Terminator, UnOp,
    VarId,
};
use detrand::Rng;

const BINOPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

const UNOPS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::LNot];

/// Random expression tree over 4 variables, depth-bounded.
fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.bool_with(0.3) {
        if rng.bool_with(0.5) {
            Expr::Const(rng.i64_in(i32::MIN as i64, i32::MAX as i64 + 1))
        } else {
            Expr::Var(VarId(rng.u64_in(0, 4) as u32))
        }
    } else if rng.bool_with(0.7) {
        let op = *rng.choose(&BINOPS);
        let a = gen_expr(rng, depth - 1);
        let b = gen_expr(rng, depth - 1);
        Expr::bin(op, a, b)
    } else {
        let op = *rng.choose(&UNOPS);
        let a = gen_expr(rng, depth - 1);
        Expr::un(op, a)
    }
}

/// Evaluation is deterministic and total (never panics) for any tree.
#[test]
fn expr_eval_total_and_deterministic() {
    let mut rng = Rng::new(0xCF50_0001);
    for _ in 0..256 {
        let e = gen_expr(&mut rng, 4);
        let vars: Vec<i64> = (0..4).map(|_| rng.next_u64() as i64).collect();
        let f = |_: EventId| 0i64;
        let a = e.eval(&vars, &f);
        let b = e.eval(&vars, &f);
        assert_eq!(a, b);
    }
}

/// visit_ops reports exactly op_count() operators.
#[test]
fn expr_visit_matches_count() {
    let mut rng = Rng::new(0xCF50_0002);
    for _ in 0..256 {
        let e = gen_expr(&mut rng, 4);
        let mut n = 0usize;
        e.visit_ops(&mut |_| n += 1);
        assert_eq!(n, e.op_count());
        assert!(e.depth() >= 1);
    }
}

/// Comparisons always yield 0 or 1.
#[test]
fn comparisons_are_boolean() {
    let mut rng = Rng::new(0xCF50_0003);
    for _ in 0..256 {
        let a = rng.next_u64() as i64;
        let b = rng.next_u64() as i64;
        for op in [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge] {
            let v = Expr::bin(op, Expr::Const(a), Expr::Const(b)).eval(&[], &|_| 0);
            assert!(v == 0 || v == 1);
        }
    }
}

/// A counted loop executes exactly n bodies, its macro-op trace has
/// n TIVART + 1 TIVARF outcomes, and the path id depends on n.
#[test]
fn counted_loop_trace_shape() {
    let mut rng = Rng::new(0xCF50_0004);
    for case in 0..64 {
        let n = rng.i64_in(0, 200);
        let i = VarId(0);
        let mut b = CfgBuilder::new();
        b.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(i), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        b.block(
            vec![Stmt::Assign { var: i, expr: Expr::sub(Expr::Var(i), Expr::Const(1)) }],
            Terminator::Goto(BlockId(0)),
        );
        b.block(vec![], Terminator::Return);
        let cfg = b.finish().expect("valid");
        let mut vars = [n];
        let exec = cfg.execute(&mut vars, &mut NullEnv);
        assert_eq!(vars[0], 0, "case {case}");
        let taken = exec.macro_ops.iter().filter(|&&m| m == MacroOp::TivarT).count();
        let fallthrough = exec.macro_ops.iter().filter(|&&m| m == MacroOp::TivarF).count();
        assert_eq!(taken, n as usize, "case {case}");
        assert_eq!(fallthrough, 1, "case {case}");

        // Different iteration counts give different path ids.
        let mut vars2 = [n + 1];
        let exec2 = cfg.execute(&mut vars2, &mut NullEnv);
        assert_ne!(exec.path, exec2.path, "case {case}");
    }
}

/// Executing the same CFG on the same inputs gives identical
/// executions (determinism of the behavioral model).
#[test]
fn execution_is_reproducible() {
    let mut rng = Rng::new(0xCF50_0005);
    for _ in 0..64 {
        let seed = rng.next_u64() as i64;
        let v = VarId(0);
        let cfg = Cfg::straight_line(vec![
            Stmt::Assign { var: v, expr: Expr::bin(BinOp::Xor, Expr::Var(v), Expr::Const(seed)) },
            Stmt::Emit { event: EventId(0), value: Some(Expr::Var(v)) },
        ]);
        let mut a = [seed];
        let mut b = [seed];
        let ea = cfg.execute(&mut a, &mut NullEnv);
        let eb = cfg.execute(&mut b, &mut NullEnv);
        assert_eq!(ea, eb);
        assert_eq!(a, b);
    }
}
