//! SIMD lane words: the `u64` lane word of [`crate::word`] widened to
//! `[u64; N]` vectors, and the width-erased multi-stream simulator
//! built on them.
//!
//! The word-parallel machinery packs 64 lanes — consecutive cycles of
//! one stream, or 64 independent streams — into one `u64` and pays one
//! word op per gate visit. This module widens that word to
//! [`Wide<W>`]: `W` consecutive `u64`s treated as one `64 × W`-bit lane
//! word, giving 128/256/512 lanes per op. Everything that made the
//! 64-lane kernels bit-exact carries over unchanged, because every
//! trick was already a pure word-level identity:
//!
//! * masked comparisons (`w & mask != splat(v) & mask`) detect window
//!   activity;
//! * toggle words (`lane ^ ((lane << 1) | prev)`) count transitions,
//!   with the shift carrying across the `u64` boundaries of the wide
//!   word;
//! * `trailing_zeros` finds the first DFF violation, scanning the
//!   constituent `u64`s in order.
//!
//! The [`LaneWord`] trait abstracts exactly those operations, with
//! `u64` itself as the 64-lane instance — the word-parallel kernel and
//! the widened SIMD kernel are one generic engine instantiated at two
//! widths. Per-lane energy is still folded in the scalar kernels' exact
//! float order (clock tree, then toggled nets ascending by net id, then
//! DFF edges ascending by gate order), so every lane of a wide run is
//! bit-identical to a scalar run of the same stream.
//!
//! # Fallback story
//!
//! The default build represents [`Wide<W>`] as a plain `[u64; W]` and
//! lets LLVM auto-vectorize the elementwise loops — this compiles on
//! stable toolchains and is what CI tests. The off-by-default
//! `portable-simd` cargo feature (nightly only) routes the bitwise ops
//! through `std::simd` explicit vectors instead; both paths compute the
//! same bits, so the choice is invisible to results.

use crate::netlist::{NetId, Netlist, ValidateNetlistError};
use crate::power::{EnergyReport, PowerConfig};
use crate::word::MultiLaneSim;
use std::sync::Arc;

/// A lane word: `BITS` independent boolean lanes evaluated by single
/// word-level operations. Implemented by `u64` (64 lanes) and by
/// [`Wide<W>`] (`64 × W` lanes); the gate-evaluation kernels are
/// generic over this trait.
pub trait LaneWord: Copy + PartialEq + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Lanes (bits) in this word.
    const BITS: u32;
    /// The all-zeroes word.
    const ZERO: Self;
    /// The all-ones word.
    const ONES: Self;

    /// A word with every lane holding `v` (broadcast).
    #[inline]
    fn splat(v: bool) -> Self {
        if v {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Bitwise OR.
    fn or(self, other: Self) -> Self;
    /// Bitwise XOR.
    fn xor(self, other: Self) -> Self;
    /// Bitwise NOT.
    fn not(self) -> Self;

    /// A word with the `n` lowest lanes set (`n == BITS` gives
    /// [`LaneWord::ONES`]).
    fn low_mask(n: u32) -> Self;
    /// Lane `j` as a boolean.
    fn bit(self, j: u32) -> bool;
    /// Returns `self` with lane `j` forced to `v`.
    fn with_bit(self, j: u32, v: bool) -> Self;
    /// Whether no lane is set.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
    /// Index of the lowest set lane (`BITS` when none is set).
    fn trailing_zeros(self) -> u32;
    /// Number of set lanes.
    fn count_ones(self) -> u32;
    /// Clears the lowest set lane (identity on zero).
    fn clear_lowest(self) -> Self;
    /// `(self << 1) | carry_in` — the shift a toggle word needs, with
    /// the carry propagating across constituent-`u64` boundaries.
    fn shl1_carry(self, carry_in: bool) -> Self;
    /// Logical shift right by `m` lanes (`0 <= m < BITS`), filling the
    /// vacated top lanes with `fill` — how an input schedule is slid
    /// past a partially committed window.
    fn shr_fill(self, m: u32, fill: bool) -> Self;
    /// Calls `f(j)` for every set lane `j`, ascending — the per-lane
    /// demux loop of the multi-lane engines. Wide words override this
    /// to walk their constituent `u64`s directly, keeping the cost per
    /// set lane O(1) in the width (a `trailing_zeros`/`clear_lowest`
    /// loop would rescan the whole word per lane).
    #[inline]
    fn for_each_lane(self, mut f: impl FnMut(u32)) {
        let mut m = self;
        while !m.is_zero() {
            f(m.trailing_zeros());
            m = m.clear_lowest();
        }
    }
    /// Calls `f(k, word)` for each constituent `u64` (`k` ascending, 64
    /// lanes per word), letting per-lane consumers hoist work to word
    /// granularity — e.g. charging energy into one 64-slot chunk per
    /// word without per-lane bounds checks.
    fn for_each_word(self, f: impl FnMut(usize, u64));
}

impl LaneWord for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn low_mask(n: u32) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }
    #[inline]
    fn bit(self, j: u32) -> bool {
        (self >> j) & 1 == 1
    }
    #[inline]
    fn with_bit(self, j: u32, v: bool) -> Self {
        if v {
            self | (1u64 << j)
        } else {
            self & !(1u64 << j)
        }
    }
    #[inline]
    fn trailing_zeros(self) -> u32 {
        u64::trailing_zeros(self)
    }
    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
    #[inline]
    fn clear_lowest(self) -> Self {
        self & self.wrapping_sub(1)
    }
    #[inline]
    fn shl1_carry(self, carry_in: bool) -> Self {
        (self << 1) | carry_in as u64
    }
    #[inline]
    fn shr_fill(self, m: u32, fill: bool) -> Self {
        debug_assert!(m < 64);
        if m == 0 {
            return self;
        }
        let fill_bits = if fill { u64::MAX << (64 - m) } else { 0 };
        (self >> m) | fill_bits
    }
    #[inline]
    fn for_each_word(self, mut f: impl FnMut(usize, u64)) {
        f(0, self);
    }
}

/// A wide lane word: `W` consecutive `u64`s treated as one
/// `64 × W`-bit word — lane `j` is bit `j % 64` of element `j / 64`.
///
/// The default representation is a plain array whose elementwise ops
/// LLVM auto-vectorizes; the `portable-simd` feature swaps the bitwise
/// ops for `std::simd` vectors (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wide<const W: usize>(pub [u64; W]);

/// 128 lanes (two `u64`s).
pub type W128 = Wide<2>;
/// 256 lanes (four `u64`s).
pub type W256 = Wide<4>;
/// 512 lanes (eight `u64`s).
pub type W512 = Wide<8>;

#[inline]
fn wide_low_mask<const W: usize>(n: u32) -> [u64; W] {
    debug_assert!(n as usize <= 64 * W);
    let mut a = [0u64; W];
    let full = (n / 64) as usize;
    for w in a.iter_mut().take(full.min(W)) {
        *w = u64::MAX;
    }
    let rem = n % 64;
    if rem != 0 && full < W {
        a[full] = (1u64 << rem) - 1;
    }
    a
}

#[inline]
fn wide_trailing_zeros<const W: usize>(a: &[u64; W]) -> u32 {
    for (k, &w) in a.iter().enumerate() {
        if w != 0 {
            return k as u32 * 64 + w.trailing_zeros();
        }
    }
    64 * W as u32
}

#[inline]
fn wide_clear_lowest<const W: usize>(mut a: [u64; W]) -> [u64; W] {
    for w in a.iter_mut() {
        if *w != 0 {
            *w &= w.wrapping_sub(1);
            break;
        }
    }
    a
}

#[inline]
fn wide_shl1_carry<const W: usize>(a: [u64; W], carry_in: bool) -> [u64; W] {
    let mut out = [0u64; W];
    let mut carry = carry_in as u64;
    for (o, &w) in out.iter_mut().zip(a.iter()) {
        *o = (w << 1) | carry;
        carry = w >> 63;
    }
    out
}

#[inline]
fn wide_shr_fill<const W: usize>(a: [u64; W], m: u32, fill: bool) -> [u64; W] {
    debug_assert!((m as usize) < 64 * W);
    let fill_word = if fill { u64::MAX } else { 0 };
    // Element `i` of the result takes bits from the source extended
    // with fill words past the top: that reproduces both the shifted
    // payload and the `fill`-valued vacated lanes in one indexing rule.
    let ext = |i: usize| -> u64 {
        if i < W {
            a[i]
        } else {
            fill_word
        }
    };
    let wsh = (m / 64) as usize;
    let bsh = m % 64;
    let mut out = [0u64; W];
    for (k, o) in out.iter_mut().enumerate() {
        *o = if bsh == 0 {
            ext(k + wsh)
        } else {
            (ext(k + wsh) >> bsh) | (ext(k + wsh + 1) << (64 - bsh))
        };
    }
    out
}

// The shared (width-agnostic) part of the two `LaneWord` impls below;
// only the four bitwise ops differ between the fallback and the
// `std::simd` build.
macro_rules! wide_common_methods {
    () => {
        const BITS: u32 = 64 * W as u32;
        const ZERO: Self = Wide([0u64; W]);
        const ONES: Self = Wide([u64::MAX; W]);

        #[inline]
        fn low_mask(n: u32) -> Self {
            Wide(wide_low_mask::<W>(n))
        }
        #[inline]
        fn bit(self, j: u32) -> bool {
            (self.0[(j / 64) as usize] >> (j % 64)) & 1 == 1
        }
        #[inline]
        fn with_bit(mut self, j: u32, v: bool) -> Self {
            let w = &mut self.0[(j / 64) as usize];
            if v {
                *w |= 1u64 << (j % 64);
            } else {
                *w &= !(1u64 << (j % 64));
            }
            self
        }
        #[inline]
        fn trailing_zeros(self) -> u32 {
            wide_trailing_zeros(&self.0)
        }
        #[inline]
        fn count_ones(self) -> u32 {
            self.0.iter().map(|w| w.count_ones()).sum()
        }
        #[inline]
        fn clear_lowest(self) -> Self {
            Wide(wide_clear_lowest(self.0))
        }
        #[inline]
        fn shl1_carry(self, carry_in: bool) -> Self {
            Wide(wide_shl1_carry(self.0, carry_in))
        }
        #[inline]
        fn shr_fill(self, m: u32, fill: bool) -> Self {
            Wide(wide_shr_fill(self.0, m, fill))
        }
        #[inline]
        fn for_each_lane(self, mut f: impl FnMut(u32)) {
            for (k, &word) in self.0.iter().enumerate() {
                let base = k as u32 * 64;
                let mut w = word;
                while w != 0 {
                    f(base + w.trailing_zeros());
                    w &= w.wrapping_sub(1);
                }
            }
        }
        #[inline]
        fn for_each_word(self, mut f: impl FnMut(usize, u64)) {
            for (k, &word) in self.0.iter().enumerate() {
                f(k, word);
            }
        }
    };
}

#[cfg(not(feature = "portable-simd"))]
impl<const W: usize> LaneWord for Wide<W> {
    wide_common_methods!();

    #[inline]
    fn and(mut self, other: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a &= b;
        }
        self
    }
    #[inline]
    fn or(mut self, other: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
        self
    }
    #[inline]
    fn xor(mut self, other: Self) -> Self {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a ^= b;
        }
        self
    }
    #[inline]
    fn not(mut self) -> Self {
        for a in self.0.iter_mut() {
            *a = !*a;
        }
        self
    }
}

#[cfg(feature = "portable-simd")]
impl<const W: usize> LaneWord for Wide<W>
where
    std::simd::LaneCount<W>: std::simd::SupportedLaneCount,
{
    wide_common_methods!();

    #[inline]
    fn and(self, other: Self) -> Self {
        use std::simd::Simd;
        Wide((Simd::from_array(self.0) & Simd::from_array(other.0)).to_array())
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        use std::simd::Simd;
        Wide((Simd::from_array(self.0) | Simd::from_array(other.0)).to_array())
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        use std::simd::Simd;
        Wide((Simd::from_array(self.0) ^ Simd::from_array(other.0)).to_array())
    }
    #[inline]
    fn not(self) -> Self {
        use std::simd::Simd;
        Wide((!Simd::from_array(self.0)).to_array())
    }
}

/// The toggle word of a cycle-packed lane at any width: lane `j` is set
/// iff the value at slot `j` differs from slot `j - 1`, where slot `-1`
/// is the committed value `prev` (the generic form of
/// [`crate::word::toggle_word`]).
#[inline]
pub fn toggle_word_w<W: LaneWord>(lane: W, prev: bool) -> W {
    lane.xor(lane.shl1_carry(prev))
}

/// The widest lane count [`SimdLaneSim`] supports (a [`W512`] word).
pub const MAX_LANES: usize = 512;

/// A width-erased multi-stream lockstep simulator: up to [`MAX_LANES`]
/// independent stimulus streams over one shared netlist, packed into
/// the narrowest lane word that fits the requested count. Each lane is
/// bit-identical to a scalar [`crate::Simulator`] run of the same
/// stream (see [`MultiLaneSim`]).
///
/// This is the simulation target of lane schedulers: Monte-Carlo
/// stimulus points and fault/stimulus variants map one sweep unit per
/// lane and demux per-lane reports afterwards.
///
/// # Examples
///
/// ```
/// use gatesim::{GateKind, Netlist, PowerConfig, SimdLaneSim};
/// use std::sync::Arc;
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let x = n.gate(GateKind::Not, vec![a]);
/// n.mark_output("x", x);
/// let mut sim = SimdLaneSim::new(Arc::new(n), PowerConfig::date2000_defaults(), 100)?;
/// sim.set_input(70, a, true); // stream 70 raises `a`, the rest hold low
/// sim.step();
/// assert!(!sim.value(x, 70) && sim.value(x, 0));
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub enum SimdLaneSim {
    /// Up to 64 streams in a `u64` word.
    U64(MultiLaneSim<u64>),
    /// 65–128 streams in a [`W128`] word.
    W128(MultiLaneSim<W128>),
    /// 129–256 streams in a [`W256`] word.
    W256(MultiLaneSim<W256>),
    /// 257–512 streams in a [`W512`] word.
    W512(MultiLaneSim<W512>),
}

macro_rules! each_width {
    ($self:expr, $sim:ident => $body:expr) => {
        match $self {
            SimdLaneSim::U64($sim) => $body,
            SimdLaneSim::W128($sim) => $body,
            SimdLaneSim::W256($sim) => $body,
            SimdLaneSim::W512($sim) => $body,
        }
    };
}

impl SimdLaneSim {
    /// Builds a simulator for `lanes` independent streams
    /// (1..=[`MAX_LANES`]) in the narrowest word width that holds them,
    /// validating the netlist. All streams start from the scalar reset
    /// state.
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is
    /// malformed.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_LANES`].
    pub fn new(
        netlist: Arc<Netlist>,
        config: PowerConfig,
        lanes: usize,
    ) -> Result<Self, ValidateNetlistError> {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "1..={MAX_LANES} lanes per simd simulator"
        );
        Ok(if lanes <= 64 {
            SimdLaneSim::U64(MultiLaneSim::new(netlist, config, lanes)?)
        } else if lanes <= 128 {
            SimdLaneSim::W128(MultiLaneSim::new(netlist, config, lanes)?)
        } else if lanes <= 256 {
            SimdLaneSim::W256(MultiLaneSim::new(netlist, config, lanes)?)
        } else {
            SimdLaneSim::W512(MultiLaneSim::new(netlist, config, lanes)?)
        })
    }

    /// The shared netlist this simulator evaluates.
    pub fn netlist(&self) -> &Arc<Netlist> {
        each_width!(self, s => s.netlist())
    }

    /// Number of independent streams in flight.
    pub fn lanes(&self) -> usize {
        each_width!(self, s => s.lanes())
    }

    /// Lanes per word of the selected width (64/128/256/512) — how many
    /// streams one word op covers, including any unoccupied tail lanes.
    pub fn word_lanes(&self) -> usize {
        match self {
            SimdLaneSim::U64(_) => 64,
            SimdLaneSim::W128(_) => 128,
            SimdLaneSim::W256(_) => 256,
            SimdLaneSim::W512(_) => 512,
        }
    }

    /// Forces a primary input for one stream from the next cycle on
    /// (see [`MultiLaneSim::set_input`]).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an `Input` gate or `lane` is out of range.
    #[inline]
    pub fn set_input(&mut self, lane: usize, net: NetId, value: bool) {
        each_width!(self, s => s.set_input(lane, net, value));
    }

    /// The settled value of a net in one stream.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn value(&self, net: NetId, lane: usize) -> bool {
        each_width!(self, s => s.value(net, lane))
    }

    /// Total toggle count of a net in one stream so far.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn toggle_count(&self, net: NetId, lane: usize) -> u64 {
        each_width!(self, s => s.toggle_count(net, lane))
    }

    /// One stream's accumulated cycle-by-cycle energy report.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn report(&self, lane: usize) -> &EnergyReport {
        each_width!(self, s => s.report(lane))
    }

    /// Cycles simulated so far (all streams advance together).
    pub fn cycle(&self) -> u64 {
        each_width!(self, s => s.cycle())
    }

    /// Combinational word evaluations so far (each covers every lane).
    pub fn gate_evals(&self) -> u64 {
        each_width!(self, s => s.gate_evals())
    }

    /// Committed `(gate, stream, cycle)` evaluation slots:
    /// `gate_evals × lanes` (see [`MultiLaneSim::gate_eval_slots`]).
    pub fn gate_eval_slots(&self) -> u64 {
        each_width!(self, s => s.gate_eval_slots())
    }

    /// Net value changes observed so far, summed over all streams.
    pub fn gate_events(&self) -> u64 {
        each_width!(self, s => s.gate_events())
    }

    /// Simulates one clock cycle of every stream in lockstep.
    pub fn step(&mut self) {
        each_width!(self, s => s.step());
    }

    /// Runs `n` lockstep cycles.
    pub fn run(&mut self, n: u64) {
        each_width!(self, s => s.run(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::Rng;

    /// Reference model: a `Vec<bool>` of lanes.
    fn ref_bits(n: u32, rng: &mut Rng) -> Vec<bool> {
        (0..n).map(|_| rng.bool_with(0.5)).collect()
    }

    fn from_bits<W: LaneWord>(bits: &[bool]) -> W {
        bits.iter()
            .enumerate()
            .fold(W::ZERO, |w, (i, &b)| w.with_bit(i as u32, b))
    }

    fn to_bits<W: LaneWord>(w: W) -> Vec<bool> {
        (0..W::BITS).map(|j| w.bit(j)).collect()
    }

    fn check_width<W: LaneWord>(seed: u64) {
        let mut rng = Rng::new(seed);
        for _ in 0..40 {
            let a_bits = ref_bits(W::BITS, &mut rng);
            let b_bits = ref_bits(W::BITS, &mut rng);
            let a: W = from_bits(&a_bits);
            let b: W = from_bits(&b_bits);
            // Bitwise ops against the boolean model.
            let pair = |f: fn(bool, bool) -> bool| -> Vec<bool> {
                a_bits.iter().zip(&b_bits).map(|(&x, &y)| f(x, y)).collect()
            };
            assert_eq!(to_bits(a.and(b)), pair(|x, y| x && y));
            assert_eq!(to_bits(a.or(b)), pair(|x, y| x || y));
            assert_eq!(to_bits(a.xor(b)), pair(|x, y| x ^ y));
            assert_eq!(
                to_bits(a.not()),
                a_bits.iter().map(|&x| !x).collect::<Vec<_>>()
            );
            // Population counts and scans.
            assert_eq!(
                a.count_ones(),
                a_bits.iter().filter(|&&x| x).count() as u32
            );
            let first_set = a_bits.iter().position(|&x| x).map(|p| p as u32);
            assert_eq!(a.trailing_zeros(), first_set.unwrap_or(W::BITS));
            if let Some(p) = first_set {
                assert_eq!(a.clear_lowest(), a.with_bit(p, false));
            }
            // Shift with carry-in (toggle-word shift).
            for carry in [false, true] {
                let mut expect = vec![carry];
                expect.extend(&a_bits[..W::BITS as usize - 1]);
                assert_eq!(to_bits(a.shl1_carry(carry)), expect);
            }
            // Schedule shift: right by m, top filled.
            let m = rng.u64_in(0, W::BITS as u64) as u32;
            for fill in [false, true] {
                let mut expect: Vec<bool> = a_bits[m as usize..].to_vec();
                expect.resize(W::BITS as usize, fill);
                assert_eq!(to_bits(a.shr_fill(m, fill)), expect, "m = {m}");
            }
            // Masks.
            let n = rng.u64_in(0, W::BITS as u64 + 1) as u32;
            let mask = W::low_mask(n);
            assert_eq!(mask.count_ones(), n);
            assert_eq!(mask.and(W::ONES), mask);
            if n < W::BITS {
                assert!(!mask.bit(n));
            }
        }
        assert!(W::ZERO.is_zero() && !W::ONES.is_zero());
        assert_eq!(W::splat(true), W::ONES);
        assert_eq!(W::splat(false), W::ZERO);
        assert_eq!(W::ZERO.trailing_zeros(), W::BITS);
        assert_eq!(W::ZERO.clear_lowest(), W::ZERO);
    }

    #[test]
    fn lane_word_ops_match_the_boolean_model_at_every_width() {
        check_width::<u64>(1);
        check_width::<W128>(2);
        check_width::<W256>(3);
        check_width::<W512>(4);
        check_width::<Wide<1>>(5);
    }

    #[test]
    fn wide_toggle_word_matches_u64_per_element_semantics() {
        let mut rng = Rng::new(99);
        for _ in 0..20 {
            let bits = ref_bits(256, &mut rng);
            let prev = rng.bool_with(0.5);
            let w: W256 = from_bits(&bits);
            let t = toggle_word_w(w, prev);
            let mut last = prev;
            for (j, &b) in bits.iter().enumerate() {
                assert_eq!(t.bit(j as u32), b != last, "lane {j}");
                last = b;
            }
        }
    }

    #[test]
    fn simd_lane_sim_picks_the_narrowest_width() {
        use crate::netlist::GateKind;
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        n.mark_output("x", x);
        let shared = Arc::new(n);
        let cfg = PowerConfig::date2000_defaults();
        for (lanes, words) in [(1, 64), (64, 64), (65, 128), (128, 128), (129, 256), (512, 512)] {
            let sim = SimdLaneSim::new(Arc::clone(&shared), cfg.clone(), lanes).expect("valid");
            assert_eq!(sim.lanes(), lanes);
            assert_eq!(sim.word_lanes(), words, "lanes = {lanes}");
        }
    }
}
