//! Cycle-based logic simulation with toggle-count energy.
//!
//! Two kernels produce bit-identical results:
//!
//! * **Event-driven** (the default, [`SimKernel::EventDriven`]): per-net
//!   combinational fanout lists and a topological levelization are built
//!   once at construction; each cycle only the gates whose fan-in
//!   actually changed are re-evaluated, driven by a dirty queue keyed by
//!   level. Toggle counting falls out of the events themselves — no
//!   per-cycle snapshot of the value vector.
//! * **Oblivious** ([`SimKernel::Oblivious`], forced process-wide with
//!   `GATESIM_OBLIVIOUS=1`): the reference path — every combinational
//!   gate is re-evaluated every cycle in topological order and toggles
//!   are found by a full before/after diff, the way the modified SIS
//!   power estimator of the paper works.
//!
//! Equivalence is contractual, not approximate: the event-driven kernel
//! accumulates switch energy over the toggled nets in ascending net-id
//! order and then clocks DFFs in ascending gate order — the exact float
//! operation sequence of the oblivious diff — so the two kernels agree
//! to the last mantissa bit. The differential fuzz suite and the golden
//! reports enforce this.

use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::{CapacitanceMap, EnergyReport, PowerConfig};
use std::sync::Arc;

/// Which inner loop a [`Simulator`] runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKernel {
    /// Evaluate only gates whose fan-in changed, in level order.
    EventDriven,
    /// Re-evaluate every combinational gate every cycle (reference path).
    Oblivious,
}

impl SimKernel {
    /// The kernel selected by the environment: `GATESIM_OBLIVIOUS=1`
    /// forces the oblivious reference path; anything else (including
    /// unset) selects the event-driven kernel.
    pub fn from_env() -> Self {
        match std::env::var_os("GATESIM_OBLIVIOUS") {
            Some(v) if v == "1" => SimKernel::Oblivious,
            _ => SimKernel::EventDriven,
        }
    }
}

/// A simulation instance bound to one netlist.
///
/// The netlist is held behind an [`Arc`], so many simulator instances
/// (e.g. one per design-space exploration point) share a single
/// immutable structure; per-instance state (values, toggles, energy) is
/// always private to the instance.
///
/// # Examples
///
/// ```
/// use gatesim::{Netlist, GateKind, Simulator, PowerConfig};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let x = n.gate(GateKind::Xor, vec![a, b]);
/// n.mark_output("x", x);
///
/// let mut sim = Simulator::new(&n, PowerConfig::date2000_defaults())?;
/// sim.set_input(a, true);
/// let e = sim.step();
/// assert!(sim.value(x));
/// assert!(e > 0.0); // nets toggled
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Arc<Netlist>,
    order: Vec<NetId>,
    caps: CapacitanceMap,
    config: PowerConfig,
    kernel: SimKernel,
    values: Vec<bool>,
    inputs: Vec<bool>,
    report: EnergyReport,
    toggles: Vec<u64>,
    cycle: u64,
    gate_evals: u64,
    gate_events: u64,
    // Event-driven machinery (empty under the oblivious kernel).
    /// Per-gate combinational level (0 for sources, constants, DFFs).
    levels: Vec<u32>,
    max_level: u32,
    /// For each net, the combinational gates that read it.
    comb_fanout: Vec<Vec<u32>>,
    /// Dirty queue: one bucket of gate indices per level.
    level_queue: Vec<Vec<u32>>,
    /// Dedupe flags for `level_queue`.
    in_queue: Vec<bool>,
    /// Primary-input gate indices, ascending.
    input_ids: Vec<u32>,
    /// `(gate index, D-input net)` per DFF, ascending by gate index.
    dffs: Vec<(u32, u32)>,
    /// DFF output nets that changed at the previous clock edge; their
    /// combinational fanout must re-evaluate at the next cycle's settle.
    pending_edge: Vec<u32>,
    /// Scratch: nets toggled during the current cycle's settle.
    toggled: Vec<u32>,
    /// Scratch: D values sampled simultaneously at the clock edge.
    edge_sample: Vec<bool>,
}

impl Simulator {
    /// Builds a simulator, validating the netlist. The kernel is taken
    /// from the environment ([`SimKernel::from_env`]).
    ///
    /// All nets start at their reset values (DFF init values, inputs low,
    /// combinational logic settled accordingly).
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is malformed.
    pub fn new(netlist: &Netlist, config: PowerConfig) -> Result<Self, ValidateNetlistError> {
        Self::with_kernel(Arc::new(netlist.clone()), config, SimKernel::from_env())
    }

    /// Builds a simulator over an already-shared netlist without cloning
    /// it, with the kernel taken from the environment. This is what
    /// design-space sweeps use: every exploration point holds the same
    /// `Arc<Netlist>`.
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is malformed.
    pub fn with_shared(
        netlist: Arc<Netlist>,
        config: PowerConfig,
    ) -> Result<Self, ValidateNetlistError> {
        Self::with_kernel(netlist, config, SimKernel::from_env())
    }

    /// Builds a simulator with an explicitly chosen kernel (differential
    /// tests and benchmarks pin both paths regardless of environment).
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is malformed.
    pub fn with_kernel(
        netlist: Arc<Netlist>,
        config: PowerConfig,
        kernel: SimKernel,
    ) -> Result<Self, ValidateNetlistError> {
        let order = netlist.validate()?;
        let caps = CapacitanceMap::new(&netlist, &config);
        let n = netlist.gate_count();
        let (levels, max_level) = netlist.comb_levels(&order);
        let comb_fanout = netlist.comb_fanout_adjacency();
        let mut input_ids = Vec::new();
        let mut dffs = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Input => input_ids.push(i as u32),
                GateKind::Dff(_) => dffs.push((i as u32, g.inputs[0].0)),
                _ => {}
            }
        }
        let mut sim = Simulator {
            netlist,
            order,
            caps,
            config,
            kernel,
            values: vec![false; n],
            inputs: vec![false; n],
            report: EnergyReport::default(),
            toggles: vec![0; n],
            cycle: 0,
            gate_evals: 0,
            gate_events: 0,
            levels,
            max_level,
            comb_fanout,
            level_queue: vec![Vec::new(); max_level as usize + 1],
            in_queue: vec![false; n],
            input_ids,
            dffs,
            pending_edge: Vec::new(),
            toggled: Vec::new(),
            edge_sample: Vec::new(),
        };
        // Settle reset state without charging energy.
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            if let GateKind::Dff(init) = g.kind {
                sim.values[i] = init;
            }
        }
        sim.settle_full();
        if sim.kernel == SimKernel::EventDriven {
            // The full reset settle evaluates combinational gates *before*
            // forcing constants high, so gates downstream of a `Const1`
            // hold stale values until the first cycle's settle — a quirk
            // the oblivious diff charges as first-cycle toggles. Schedule
            // those fanouts now so the event kernel reproduces it exactly.
            for (i, g) in sim.netlist.gates().iter().enumerate() {
                if g.kind == GateKind::Const1 {
                    for k in 0..sim.comb_fanout[i].len() {
                        let target = sim.comb_fanout[i][k];
                        Self::sched(
                            &mut sim.level_queue,
                            &mut sim.in_queue,
                            &sim.levels,
                            target,
                        );
                    }
                }
            }
        }
        Ok(sim)
    }

    /// The shared netlist this simulator evaluates.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The kernel this instance was built with.
    pub fn kernel(&self) -> SimKernel {
        self.kernel
    }

    /// Combinational gate evaluations performed so far (the event-driven
    /// kernel's whole point is making this grow slower than
    /// `gates × cycles`).
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Net value changes observed so far (input, combinational, and DFF
    /// output toggles).
    pub fn gate_events(&self) -> u64 {
        self.gate_events
    }

    /// Forces a primary input for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an `Input` gate.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert_eq!(
            self.netlist.gates()[net.0 as usize].kind,
            GateKind::Input,
            "{net} is not a primary input"
        );
        self.inputs[net.0 as usize] = value;
    }

    /// Forces a whole bus of inputs from the low bits of `value`
    /// (bit *i* of `value` drives `nets[i]`).
    pub fn set_input_bus(&mut self, nets: &[NetId], value: u64) {
        for (i, &n) in nets.iter().enumerate() {
            self.set_input(n, (value >> i) & 1 == 1);
        }
    }

    /// The settled value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }

    /// Reads a bus of nets as an integer (bit *i* from `nets[i]`).
    pub fn value_bus(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | ((self.value(n) as u64) << i))
    }

    /// Simulates one clock cycle with the currently forced inputs and
    /// returns the cycle's energy in joules.
    ///
    /// A cycle consists of: apply inputs → settle combinational logic →
    /// charge toggled nets + clock tree → clock DFFs.
    pub fn step(&mut self) -> f64 {
        match self.kernel {
            SimKernel::EventDriven => self.step_event(),
            SimKernel::Oblivious => self.step_oblivious(),
        }
    }

    /// Runs `n` cycles and returns the energy over them, in joules.
    pub fn run(&mut self, n: u64) -> f64 {
        (0..n).map(|_| self.step()).sum()
    }

    /// The accumulated cycle-by-cycle energy report.
    pub fn report(&self) -> &EnergyReport {
        &self.report
    }

    /// Clock-tree energy charged every cycle regardless of activity,
    /// joules.
    pub fn clock_energy_per_cycle_j(&self) -> f64 {
        self.caps.clock_energy_per_cycle_j()
    }

    /// Total toggle count of a net so far.
    pub fn toggle_count(&self, net: NetId) -> u64 {
        self.toggles[net.0 as usize]
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Clears the energy report, toggle counters, and activity counters
    /// (simulation state is kept).
    pub fn clear_stats(&mut self) {
        self.report = EnergyReport::default();
        for t in &mut self.toggles {
            *t = 0;
        }
        self.gate_evals = 0;
        self.gate_events = 0;
    }

    /// Enqueues gate `g` in its level's dirty bucket (idempotent).
    fn sched(level_queue: &mut [Vec<u32>], in_queue: &mut [bool], levels: &[u32], g: u32) {
        if !in_queue[g as usize] {
            in_queue[g as usize] = true;
            level_queue[levels[g as usize] as usize].push(g);
        }
    }

    /// Evaluates the combinational gate at `idx` against current values.
    fn eval_gate(&self, idx: usize) -> bool {
        let g = &self.netlist.gates()[idx];
        match g.kind {
            GateKind::Buf => self.values[g.inputs[0].0 as usize],
            GateKind::Not => !self.values[g.inputs[0].0 as usize],
            GateKind::And => g.inputs.iter().all(|&i| self.values[i.0 as usize]),
            GateKind::Or => g.inputs.iter().any(|&i| self.values[i.0 as usize]),
            GateKind::Nand => !g.inputs.iter().all(|&i| self.values[i.0 as usize]),
            GateKind::Nor => !g.inputs.iter().any(|&i| self.values[i.0 as usize]),
            GateKind::Xor => g
                .inputs
                .iter()
                .fold(false, |acc, &i| acc ^ self.values[i.0 as usize]),
            GateKind::Xnor => !g
                .inputs
                .iter()
                .fold(false, |acc, &i| acc ^ self.values[i.0 as usize]),
            GateKind::Mux => {
                let sel = self.values[g.inputs[0].0 as usize];
                if sel {
                    self.values[g.inputs[1].0 as usize]
                } else {
                    self.values[g.inputs[2].0 as usize]
                }
            }
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff(_) => {
                unreachable!("not a combinational gate")
            }
        }
    }

    /// Event-driven cycle: wake only the gates whose fan-in changed,
    /// sweep the dirty buckets in ascending level order (each gate is
    /// evaluated at most once, after all its fan-ins are final), then
    /// charge the toggled nets in the oblivious kernel's accumulation
    /// order.
    fn step_event(&mut self) -> f64 {
        // DFF outputs that changed at the previous edge drive this
        // cycle's settle, alongside any changed primary inputs.
        let pending = std::mem::take(&mut self.pending_edge);
        for &q in &pending {
            for k in 0..self.comb_fanout[q as usize].len() {
                let g = self.comb_fanout[q as usize][k];
                Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
            }
        }
        self.pending_edge = pending;
        self.pending_edge.clear();

        self.toggled.clear();
        for k in 0..self.input_ids.len() {
            let i = self.input_ids[k] as usize;
            if self.values[i] != self.inputs[i] {
                self.values[i] = self.inputs[i];
                self.toggled.push(i as u32);
                for j in 0..self.comb_fanout[i].len() {
                    let g = self.comb_fanout[i][j];
                    Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
                }
            }
        }

        // Levelized settle: a gate only ever wakes fanouts at strictly
        // higher levels, so one ascending pass drains everything.
        for lvl in 1..=self.max_level as usize {
            let mut bucket = std::mem::take(&mut self.level_queue[lvl]);
            for &g in &bucket {
                self.in_queue[g as usize] = false;
                self.gate_evals += 1;
                let v = self.eval_gate(g as usize);
                if v != self.values[g as usize] {
                    self.values[g as usize] = v;
                    self.toggled.push(g);
                    for k in 0..self.comb_fanout[g as usize].len() {
                        let succ = self.comb_fanout[g as usize][k];
                        Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, succ);
                    }
                }
            }
            bucket.clear();
            self.level_queue[lvl] = bucket;
        }

        // Energy: clock tree first, then toggled nets ascending by net
        // id — the float order of the oblivious before/after diff.
        self.toggled.sort_unstable();
        let mut energy = self.caps.clock_energy_per_cycle_j();
        for k in 0..self.toggled.len() {
            let i = self.toggled[k];
            self.toggles[i as usize] += 1;
            energy += self.config.switch_energy_j(self.caps.cap_ff(i));
        }
        self.gate_events += self.toggled.len() as u64;

        // Clock edge: sample all D inputs first (DFF-to-DFF chains shift
        // simultaneously), then commit in ascending gate order.
        self.edge_sample.clear();
        for k in 0..self.dffs.len() {
            let d = self.dffs[k].1;
            self.edge_sample.push(self.values[d as usize]);
        }
        for k in 0..self.dffs.len() {
            let q = self.dffs[k].0;
            let v = self.edge_sample[k];
            if self.values[q as usize] != v {
                self.toggles[q as usize] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(q));
                self.values[q as usize] = v;
                self.gate_events += 1;
                self.pending_edge.push(q);
            }
        }
        self.cycle += 1;
        self.report.per_cycle_j.push(energy);
        energy
    }

    /// Oblivious reference cycle: full value snapshot, full settle, full
    /// diff — kept verbatim for differential testing.
    fn step_oblivious(&mut self) -> f64 {
        let before = self.values.clone();
        // 1. Apply inputs.
        for (i, g) in self.netlist.gates().iter().enumerate() {
            if g.kind == GateKind::Input {
                self.values[i] = self.inputs[i];
            }
        }
        // 2. Settle combinational logic.
        self.settle_full();
        self.gate_evals += self.order.len() as u64;
        // 3. Energy from toggles against the previous settled state.
        let mut energy = self.caps.clock_energy_per_cycle_j();
        for (i, (&now, &was)) in self.values.iter().zip(&before).enumerate() {
            if now != was {
                self.toggles[i] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(i as u32));
                self.gate_events += 1;
            }
        }
        // 4. Clock edge: DFFs sample their D inputs simultaneously. A Q
        //    output that changes switches its net's capacitance too (its
        //    downstream effect is charged at the next cycle's settle).
        let sampled: Vec<(usize, bool)> = self
            .netlist
            .gates()
            .iter()
            .enumerate()
            .filter_map(|(i, g)| {
                if g.kind.is_sequential() {
                    Some((i, self.values[g.inputs[0].0 as usize]))
                } else {
                    None
                }
            })
            .collect();
        for (i, v) in sampled {
            if self.values[i] != v {
                self.toggles[i] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(i as u32));
                self.gate_events += 1;
            }
            self.values[i] = v;
        }
        self.cycle += 1;
        self.report.per_cycle_j.push(energy);
        energy
    }

    /// Propagates values through all combinational gates (topological
    /// order), leaving DFF outputs and inputs untouched.
    fn settle_full(&mut self) {
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            self.values[id.0 as usize] = self.eval_gate(id.0 as usize);
        }
        // Constants hold their values.
        for (i, g) in self.netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => self.values[i] = false,
                GateKind::Const1 => self.values[i] = true,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn cfg() -> PowerConfig {
        PowerConfig::date2000_defaults()
    }

    #[test]
    fn gate_truth_tables() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let and = n.gate(GateKind::And, vec![a, b]);
        let or = n.gate(GateKind::Or, vec![a, b]);
        let nand = n.gate(GateKind::Nand, vec![a, b]);
        let nor = n.gate(GateKind::Nor, vec![a, b]);
        let xor = n.gate(GateKind::Xor, vec![a, b]);
        let xnor = n.gate(GateKind::Xnor, vec![a, b]);
        let not = n.gate(GateKind::Not, vec![a]);
        let buf = n.gate(GateKind::Buf, vec![a]);
        for kernel in [SimKernel::EventDriven, SimKernel::Oblivious] {
            let mut sim =
                Simulator::with_kernel(Arc::new(n.clone()), cfg(), kernel).expect("valid");
            for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
                sim.set_input(a, va);
                sim.set_input(b, vb);
                sim.step();
                assert_eq!(sim.value(and), va && vb);
                assert_eq!(sim.value(or), va || vb);
                assert_eq!(sim.value(nand), !(va && vb));
                assert_eq!(sim.value(nor), !(va || vb));
                assert_eq!(sim.value(xor), va ^ vb);
                assert_eq!(sim.value(xnor), !(va ^ vb));
                assert_eq!(sim.value(not), !va);
                assert_eq!(sim.value(buf), va);
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new();
        let s = n.input();
        let a = n.input();
        let b = n.input();
        let m = n.gate(GateKind::Mux, vec![s, a, b]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input(a, true);
        sim.set_input(b, false);
        sim.set_input(s, true);
        sim.step();
        assert!(sim.value(m));
        sim.set_input(s, false);
        sim.step();
        assert!(!sim.value(m));
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut n = Netlist::new();
        let d = n.input();
        let q = n.dff(d, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input(d, true);
        sim.step();
        // During the cycle the old Q (reset value) is visible; after the
        // edge the new value is latched.
        assert!(sim.value(q));
        sim.set_input(d, false);
        sim.step();
        assert!(!sim.value(q));
    }

    #[test]
    fn toggle_flop_oscillates() {
        let mut n = Netlist::new();
        let inv = n.gate(GateKind::Not, vec![NetId(1)]);
        let q = n.dff(inv, false);
        for kernel in [SimKernel::EventDriven, SimKernel::Oblivious] {
            let mut sim =
                Simulator::with_kernel(Arc::new(n.clone()), cfg(), kernel).expect("valid");
            let mut seen = Vec::new();
            for _ in 0..4 {
                sim.step();
                seen.push(sim.value(q));
            }
            assert_eq!(seen, vec![true, false, true, false]);
        }
    }

    #[test]
    fn energy_zero_when_nothing_toggles() {
        let mut n = Netlist::new();
        let a = n.input();
        let _x = n.gate(GateKind::Not, vec![a]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        // No DFFs → no clock energy; inputs held → no toggles.
        let e1 = sim.step();
        assert_eq!(e1, 0.0);
        sim.set_input(a, true);
        let e2 = sim.step();
        assert!(e2 > 0.0);
        let e3 = sim.step();
        assert_eq!(e3, 0.0);
    }

    #[test]
    fn energy_scales_with_activity() {
        // A 4-bit input bus into inverters: toggling more bits costs more.
        let mut n = Netlist::new();
        let bits: Vec<NetId> = (0..4).map(|_| n.input()).collect();
        for &b in &bits {
            n.gate(GateKind::Not, vec![b]);
        }
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input_bus(&bits, 0b0001);
        let e1 = sim.step();
        sim.set_input_bus(&bits, 0b1110);
        let e4 = sim.step(); // all 4 bits flip
        assert!(e4 > e1);
        assert_eq!(sim.toggle_count(bits[0]), 2);
    }

    #[test]
    fn bus_helpers_roundtrip() {
        let mut n = Netlist::new();
        let bits: Vec<NetId> = (0..8).map(|_| n.input()).collect();
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input_bus(&bits, 0xA5);
        sim.step();
        assert_eq!(sim.value_bus(&bits), 0xA5);
    }

    #[test]
    fn report_accumulates_and_clears() {
        let mut n = Netlist::new();
        let d = n.input();
        let _q = n.dff(d, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.run(5);
        assert_eq!(sim.report().cycles(), 5);
        assert!(sim.report().total_j() > 0.0); // clock energy
        assert_eq!(sim.cycle(), 5);
        sim.clear_stats();
        assert_eq!(sim.report().cycles(), 0);
        assert_eq!(sim.gate_evals(), 0);
        assert_eq!(sim.gate_events(), 0);
    }

    #[test]
    fn determinism() {
        let mut n = Netlist::new();
        let a = n.input();
        let inv = n.gate(GateKind::Not, vec![NetId(2)]);
        let q = n.dff(inv, false);
        let x = n.gate(GateKind::Xor, vec![a, q]);
        n.mark_output("x", x);
        let run = || {
            let mut sim = Simulator::new(&n, cfg()).expect("valid");
            let mut trace = Vec::new();
            for i in 0..20u64 {
                sim.set_input(a, i % 3 == 0);
                let e = sim.step();
                trace.push((sim.value(x), e.to_bits()));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn with_shared_does_not_clone_the_netlist() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        n.mark_output("x", x);
        let shared = Arc::new(n);
        let sim = Simulator::with_shared(Arc::clone(&shared), cfg()).expect("valid");
        assert!(Arc::ptr_eq(sim.netlist(), &shared));
    }

    #[test]
    fn kernels_agree_bitwise_on_a_small_design() {
        // Mixed netlist: constants (init quirk), a DFF-to-DFF shift
        // chain, and reconvergent combinational logic.
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let one = n.constant(true);
        let zero = n.constant(false);
        let x = n.gate(GateKind::Xor, vec![a, one]);
        let y = n.gate(GateKind::And, vec![x, b]);
        let q1 = n.dff(y, false);
        let q2 = n.dff(q1, true);
        let m = n.gate(GateKind::Mux, vec![q2, x, zero]);
        n.mark_output("m", m);
        let shared = Arc::new(n);
        let run = |kernel| {
            let mut sim =
                Simulator::with_kernel(Arc::clone(&shared), cfg(), kernel).expect("valid");
            let mut trace = Vec::new();
            for i in 0..32u64 {
                sim.set_input(a, i % 3 == 0);
                sim.set_input(b, i % 5 != 0);
                let e = sim.step();
                let vals: Vec<bool> = (0..shared.gate_count())
                    .map(|k| sim.value(NetId(k as u32)))
                    .collect();
                trace.push((e.to_bits(), vals));
            }
            let toggles: Vec<u64> = (0..shared.gate_count())
                .map(|k| sim.toggle_count(NetId(k as u32)))
                .collect();
            (trace, toggles, sim.report().total_j().to_bits())
        };
        assert_eq!(run(SimKernel::EventDriven), run(SimKernel::Oblivious));
    }

    #[test]
    fn event_kernel_evaluates_fewer_gates_when_inputs_hold() {
        let mut n = Netlist::new();
        let a = n.input();
        let mut prev = a;
        for _ in 0..16 {
            prev = n.gate(GateKind::Not, vec![prev]);
        }
        n.mark_output("out", prev);
        let shared = Arc::new(n);
        let mut ev = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::EventDriven)
            .expect("valid");
        let mut ob = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::Oblivious)
            .expect("valid");
        // Inputs never change: the event kernel should evaluate nothing.
        ev.run(10);
        ob.run(10);
        assert_eq!(ev.gate_evals(), 0);
        assert_eq!(ob.gate_evals(), 16 * 10);
        assert_eq!(ev.report().total_j().to_bits(), ob.report().total_j().to_bits());
        // One input flip wakes the whole inverter chain exactly once.
        ev.set_input(a, true);
        ev.step();
        assert_eq!(ev.gate_evals(), 16);
        assert_eq!(ev.gate_events(), 17);
    }
}
