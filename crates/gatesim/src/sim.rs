//! Cycle-based logic simulation with toggle-count energy.
//!
//! Four kernels produce bit-identical results:
//!
//! * **Event-driven** (the default, [`SimKernel::EventDriven`]): per-net
//!   combinational fanout lists and a topological levelization are built
//!   once at construction; each cycle only the gates whose fan-in
//!   actually changed are re-evaluated, driven by a dirty queue keyed by
//!   level. Toggle counting falls out of the events themselves — no
//!   per-cycle snapshot of the value vector.
//! * **Oblivious** ([`SimKernel::Oblivious`], forced process-wide with
//!   `GATESIM_OBLIVIOUS=1`): the reference path — every combinational
//!   gate is re-evaluated every cycle in topological order and toggles
//!   are found by a full before/after diff, the way the modified SIS
//!   power estimator of the paper works.
//! * **Word-parallel** ([`SimKernel::WordParallel`]): up to 64
//!   consecutive cycles are evaluated per gate visit by packing each
//!   net's value over the window into one `u64` *lane word* (bit *j* =
//!   cycle *j*) and evaluating AND/OR/XOR/NOT/MUX as single word ops.
//!   Sequential feedback bounds the batch: a window is *speculative*
//!   under the assumption that no DFF output changes inside it, and
//!   only the prefix up to (and including) the first cycle whose clock
//!   edge would change a flop is *committed*; the remainder is
//!   replayed in a fresh window from the new register state. Energy
//!   falls out of per-net toggle words
//!   ([`crate::word::toggle_word`]) popcounted over the committed
//!   prefix.
//! * **Simd** ([`SimKernel::Simd`]): the word-parallel engine
//!   instantiated at a [`crate::simd::Wide`] lane word — 256 cycles per
//!   gate visit instead of 64, with the same speculate / commit-prefix /
//!   replay seam, masked comparisons, and epoch-stamped lazy lane
//!   invalidation (the engine is generic over
//!   [`crate::simd::LaneWord`], so there is one implementation, not
//!   two). The default build carries the wide word as `[u64; 4]` and
//!   lets LLVM vectorize; the `portable-simd` feature routes the ops
//!   through `std::simd`.
//!
//! Equivalence is contractual, not approximate: every kernel
//! accumulates switch energy over the toggled nets in ascending net-id
//! order and then clocks DFFs in ascending gate order — the exact float
//! operation sequence of the oblivious diff — so the kernels agree
//! to the last mantissa bit. The differential fuzz suite and the golden
//! reports enforce this.

use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::{CapacitanceMap, EnergyReport, PowerConfig};
use crate::simd::{toggle_word_w, LaneWord, Wide};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which inner loop a [`Simulator`] runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKernel {
    /// Evaluate only gates whose fan-in changed, in level order.
    EventDriven,
    /// Re-evaluate every combinational gate every cycle (reference path).
    Oblivious,
    /// Evaluate up to 64 cycles per gate visit as one `u64` word op,
    /// speculating across DFF boundaries and committing the bit-exact
    /// prefix (see the module docs).
    WordParallel,
    /// Evaluate up to 256 cycles per gate visit as one wide
    /// ([`crate::simd::W256`]) word op — the word-parallel engine at
    /// four times the window width (see the module docs).
    Simd,
}

/// A kernel name that parses to no known [`SimKernel`] — raised by
/// [`SimKernel::from_str`](std::str::FromStr) and by the
/// `GATESIM_KERNEL` environment hatch, instead of silently falling back
/// to a default kernel a benchmark or CI matrix did not ask for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError {
    value: String,
}

impl ParseKernelError {
    /// The rejected kernel name, verbatim.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown gate-simulation kernel `{}` (expected one of: \
             event, oblivious, word, simd — case-insensitive)",
            self.value
        )
    }
}

impl std::error::Error for ParseKernelError {}

impl std::str::FromStr for SimKernel {
    type Err = ParseKernelError;

    /// Parses a kernel name, case-insensitively: `event`, `oblivious`,
    /// `word`, or `simd`. This is the single parser behind the
    /// `GATESIM_KERNEL` hatch — tests and tools should go through it
    /// rather than re-matching strings.
    fn from_str(s: &str) -> Result<Self, ParseKernelError> {
        let t = s.trim();
        for (name, kernel) in [
            ("event", SimKernel::EventDriven),
            ("oblivious", SimKernel::Oblivious),
            ("word", SimKernel::WordParallel),
            ("simd", SimKernel::Simd),
        ] {
            if t.eq_ignore_ascii_case(name) {
                return Ok(kernel);
            }
        }
        Err(ParseKernelError {
            value: s.to_string(),
        })
    }
}

impl SimKernel {
    /// The kernel explicitly forced by the environment, if any.
    ///
    /// `GATESIM_KERNEL={event,oblivious,word,simd}` (case-insensitive)
    /// picks any kernel and takes precedence; the legacy
    /// `GATESIM_OBLIVIOUS=1` hatch still forces the oblivious reference
    /// path. Unset or empty `GATESIM_KERNEL` forces nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ParseKernelError`] if `GATESIM_KERNEL` is set to
    /// anything other than a known kernel name — a typo'd kernel must
    /// fail loudly, not silently fall back.
    pub fn env_override() -> Result<Option<Self>, ParseKernelError> {
        if let Some(v) = std::env::var_os("GATESIM_KERNEL") {
            if !v.is_empty() {
                let s = v.to_str().ok_or_else(|| ParseKernelError {
                    value: v.to_string_lossy().into_owned(),
                })?;
                return s.parse().map(Some);
            }
        }
        Ok(match std::env::var_os("GATESIM_OBLIVIOUS") {
            Some(v) if v == "1" => Some(SimKernel::Oblivious),
            _ => None,
        })
    }

    /// The kernel selected by the environment alone: the override, or
    /// the event-driven default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseKernelError`] if `GATESIM_KERNEL` names an
    /// unknown kernel (see [`SimKernel::env_override`]).
    pub fn from_env() -> Result<Self, ParseKernelError> {
        Ok(SimKernel::env_override()?.unwrap_or(SimKernel::EventDriven))
    }

    /// Picks the kernel for one netlist: the environment override wins;
    /// otherwise the window heuristic of [`SimKernel::choose`] decides.
    /// Safe at any answer — the kernels are contractually bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ParseKernelError`] if `GATESIM_KERNEL` names an
    /// unknown kernel (see [`SimKernel::env_override`]).
    pub fn auto_select(netlist: &Netlist) -> Result<Self, ParseKernelError> {
        Ok(SimKernel::choose(SimKernel::env_override()?, netlist))
    }

    /// The pure (environment-free) selection rule behind
    /// [`SimKernel::auto_select`], keyed on how long the speculative
    /// windows are expected to run before a flop bounds them:
    ///
    /// * a forced kernel always wins;
    /// * no sequential state at all — every window commits its full
    ///   width, so take the widest kernel ([`SimKernel::Simd`], 256
    ///   cycles per gate visit);
    /// * flops but no sequential feedback
    ///   ([`Netlist::sequential_feedback`] is false — shift registers,
    ///   pipelined datapaths): the state settles to the input schedule
    ///   within the pipeline depth, so windows amortize once inputs
    ///   hold, but each input change still bounds a few windows during
    ///   the flush — [`SimKernel::WordParallel`]'s 64-cycle window
    ///   keeps that misspeculation waste small;
    /// * sequential feedback (counters, FSM registers): the expected
    ///   committed window length approaches one cycle, which forfeits
    ///   the lane packing's advantage — stay [`SimKernel::EventDriven`].
    pub fn choose(forced: Option<SimKernel>, netlist: &Netlist) -> Self {
        if let Some(k) = forced {
            return k;
        }
        if netlist.dff_count() == 0 {
            SimKernel::Simd
        } else if !netlist.sequential_feedback() {
            SimKernel::WordParallel
        } else {
            SimKernel::EventDriven
        }
    }

    /// Whether this kernel batches cycles into speculative lane-word
    /// windows ([`SimKernel::WordParallel`] or [`SimKernel::Simd`]) —
    /// the kernels [`Simulator::run_window`] and
    /// [`Simulator::window_value`] work under.
    pub const fn is_windowed(self) -> bool {
        matches!(self, SimKernel::WordParallel | SimKernel::Simd)
    }

    /// Maximum cycles one speculative window can commit under this
    /// kernel: 64 for word-parallel, 256 for simd, and 1 for the scalar
    /// kernels (which evaluate cycle by cycle).
    pub const fn window_bits(self) -> u32 {
        match self {
            SimKernel::WordParallel => 64,
            SimKernel::Simd => 256,
            SimKernel::EventDriven | SimKernel::Oblivious => 1,
        }
    }

    /// `u64`s per net in the window lane buffer (0 for scalar kernels).
    const fn window_words(self) -> usize {
        match self {
            SimKernel::WordParallel => 1,
            SimKernel::Simd => 4,
            SimKernel::EventDriven | SimKernel::Oblivious => 0,
        }
    }
}

/// The outcome of one speculative window under a windowed kernel
/// ([`SimKernel::is_windowed`]; see [`Simulator::run_window`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRun {
    /// Cycles actually committed (at least 1, at most the kernel's
    /// [`SimKernel::window_bits`], never more than requested).
    pub committed: u64,
    /// Whether the window ended because a stop net was asserted — the
    /// stop cycle itself is the last committed cycle.
    pub stopped: bool,
    /// Energy over the committed cycles, in joules.
    pub energy_j: f64,
}

/// A simulation instance bound to one netlist.
///
/// The netlist is held behind an [`Arc`], so many simulator instances
/// (e.g. one per design-space exploration point) share a single
/// immutable structure; per-instance state (values, toggles, energy) is
/// always private to the instance.
///
/// # Examples
///
/// ```
/// use gatesim::{Netlist, GateKind, Simulator, PowerConfig};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let x = n.gate(GateKind::Xor, vec![a, b]);
/// n.mark_output("x", x);
///
/// let mut sim = Simulator::new(&n, PowerConfig::date2000_defaults())?;
/// sim.set_input(a, true);
/// let e = sim.step();
/// assert!(sim.value(x));
/// assert!(e > 0.0); // nets toggled
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Arc<Netlist>,
    order: Vec<NetId>,
    caps: CapacitanceMap,
    config: PowerConfig,
    kernel: SimKernel,
    values: Vec<bool>,
    inputs: Vec<bool>,
    report: EnergyReport,
    toggles: Vec<u64>,
    cycle: u64,
    gate_evals: u64,
    gate_events: u64,
    // Event-driven machinery (empty under the oblivious kernel).
    /// Per-gate combinational level (0 for sources, constants, DFFs).
    levels: Vec<u32>,
    max_level: u32,
    /// For each net, the combinational gates that read it.
    comb_fanout: Vec<Vec<u32>>,
    /// Dirty queue: one bucket of gate indices per level.
    level_queue: Vec<Vec<u32>>,
    /// Dedupe flags for `level_queue`.
    in_queue: Vec<bool>,
    /// Primary-input gate indices, ascending.
    input_ids: Vec<u32>,
    /// `(gate index, D-input net)` per DFF, ascending by gate index.
    dffs: Vec<(u32, u32)>,
    /// DFF output nets that changed at the previous clock edge; their
    /// combinational fanout must re-evaluate at the next cycle's settle.
    pending_edge: Vec<u32>,
    /// Scratch: nets toggled during the current cycle's settle.
    toggled: Vec<u32>,
    /// Scratch: D values sampled simultaneously at the clock edge.
    edge_sample: Vec<bool>,
    // Windowed-kernel machinery (empty under the scalar kernels).
    /// Per-net lane words for the current window, flat at stride
    /// `kernel.window_words()`: bit `j % 64` of `lanes[i * stride +
    /// j / 64]` is net `i`'s value at window cycle `j`. Valid only
    /// where `lane_epoch` matches `epoch`; stale entries mean "held at
    /// `values` all window".
    lanes: Vec<u64>,
    /// Window stamp per lane word (lazy invalidation — no per-window
    /// clearing of the lane buffer).
    lane_epoch: Vec<u64>,
    /// Current window stamp (starts at 0 = nothing valid; bumped at
    /// each window start).
    epoch: u64,
    /// Gates whose fan-in changed at the last committed clock edge;
    /// they must re-evaluate at the next window's settle.
    word_pending: Vec<u32>,
    /// Scratch: nets whose lane differs from their committed value
    /// somewhere in the current window (ascending after sort).
    active: Vec<u32>,
    /// Scratch: per-`active`-net toggle words over the committed
    /// prefix, flat at stride `kernel.window_words()`.
    active_toggle: Vec<u64>,
    /// Cycles committed by the most recent window (bounds
    /// [`Simulator::window_value`]).
    window_len: u64,
    /// Committed `(gate, cycle)` evaluation slots (see
    /// [`Simulator::gate_eval_slots`]).
    gate_eval_slots: u64,
}

impl Simulator {
    /// Builds a simulator, validating the netlist. The kernel is
    /// auto-selected per netlist ([`SimKernel::auto_select`]); the
    /// `GATESIM_KERNEL` environment hatch keeps precedence.
    ///
    /// All nets start at their reset values (DFF init values, inputs low,
    /// combinational logic settled accordingly).
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is
    /// malformed, or its [`ValidateNetlistError::Kernel`] variant if
    /// `GATESIM_KERNEL` names an unknown kernel.
    pub fn new(netlist: &Netlist, config: PowerConfig) -> Result<Self, ValidateNetlistError> {
        let kernel = SimKernel::auto_select(netlist)?;
        Self::with_kernel(Arc::new(netlist.clone()), config, kernel)
    }

    /// Builds a simulator over an already-shared netlist without cloning
    /// it, with the kernel auto-selected per netlist
    /// ([`SimKernel::auto_select`]). This is what design-space sweeps
    /// use: every exploration point holds the same `Arc<Netlist>`.
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is
    /// malformed, or its [`ValidateNetlistError::Kernel`] variant if
    /// `GATESIM_KERNEL` names an unknown kernel.
    pub fn with_shared(
        netlist: Arc<Netlist>,
        config: PowerConfig,
    ) -> Result<Self, ValidateNetlistError> {
        let kernel = SimKernel::auto_select(&netlist)?;
        Self::with_kernel(netlist, config, kernel)
    }

    /// Builds a simulator with an explicitly chosen kernel (differential
    /// tests and benchmarks pin both paths regardless of environment).
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is malformed.
    pub fn with_kernel(
        netlist: Arc<Netlist>,
        config: PowerConfig,
        kernel: SimKernel,
    ) -> Result<Self, ValidateNetlistError> {
        let order = netlist.validate()?;
        let caps = CapacitanceMap::new(&netlist, &config);
        let n = netlist.gate_count();
        let (levels, max_level) = netlist.comb_levels(&order);
        let comb_fanout = netlist.comb_fanout_adjacency();
        let mut input_ids = Vec::new();
        let mut dffs = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Input => input_ids.push(i as u32),
                GateKind::Dff(_) => dffs.push((i as u32, g.inputs[0].0)),
                _ => {}
            }
        }
        let mut sim = Simulator {
            netlist,
            order,
            caps,
            config,
            kernel,
            values: vec![false; n],
            inputs: vec![false; n],
            report: EnergyReport::default(),
            toggles: vec![0; n],
            cycle: 0,
            gate_evals: 0,
            gate_events: 0,
            levels,
            max_level,
            comb_fanout,
            level_queue: vec![Vec::new(); max_level as usize + 1],
            in_queue: vec![false; n],
            input_ids,
            dffs,
            pending_edge: Vec::new(),
            toggled: Vec::new(),
            edge_sample: Vec::new(),
            lanes: vec![0; n * kernel.window_words()],
            lane_epoch: if kernel.is_windowed() {
                vec![0; n]
            } else {
                Vec::new()
            },
            epoch: 0,
            word_pending: Vec::new(),
            active: Vec::new(),
            active_toggle: Vec::new(),
            window_len: 0,
            gate_eval_slots: 0,
        };
        // Settle reset state without charging energy.
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            if let GateKind::Dff(init) = g.kind {
                sim.values[i] = init;
            }
        }
        sim.settle_full();
        if sim.kernel != SimKernel::Oblivious {
            // The full reset settle evaluates combinational gates *before*
            // forcing constants high, so gates downstream of a `Const1`
            // hold stale values until the first cycle's settle — a quirk
            // the oblivious diff charges as first-cycle toggles. Schedule
            // those fanouts now so the event-driven and word-parallel
            // kernels reproduce it exactly (both drain this queue at
            // their first settle).
            for (i, g) in sim.netlist.gates().iter().enumerate() {
                if g.kind == GateKind::Const1 {
                    for k in 0..sim.comb_fanout[i].len() {
                        let target = sim.comb_fanout[i][k];
                        Self::sched(
                            &mut sim.level_queue,
                            &mut sim.in_queue,
                            &sim.levels,
                            target,
                        );
                    }
                }
            }
        }
        Ok(sim)
    }

    /// The shared netlist this simulator evaluates.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// The kernel this instance was built with.
    pub fn kernel(&self) -> SimKernel {
        self.kernel
    }

    /// Combinational gate evaluations performed so far, counted in the
    /// kernel's own *work units*: the scalar kernels count one per gate
    /// visit per cycle, while the word-parallel kernel counts one per
    /// gate visit per *window* (a single `u64` op covering up to 64
    /// cycles). Use [`Simulator::gate_eval_slots`] for a
    /// cycle-equivalent measure, and [`Simulator::gate_events`] for the
    /// kernel-invariant activity count.
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Committed `(gate, cycle)` evaluation slots: each gate evaluation
    /// weighted by the number of cycles it committed. Under the scalar
    /// kernels this equals [`Simulator::gate_evals`] (every evaluation
    /// covers exactly one cycle); under the word-parallel kernel it is
    /// `Σ evals × committed window length` — the work a scalar sweep of
    /// the same dirty gates would have performed, which is what makes
    /// eval-reduction ratios comparable across kernels.
    pub fn gate_eval_slots(&self) -> u64 {
        self.gate_eval_slots
    }

    /// Net value changes observed so far (input, combinational, and DFF
    /// output toggles). Unlike [`Simulator::gate_evals`], this counter
    /// is *kernel-invariant*: bit-identical simulations produce the
    /// same toggles, so equal `gate_events` across kernels is part of
    /// the equivalence contract and cross-kernel activity comparisons
    /// (e.g. `MetricsSink` aggregates) must use it.
    pub fn gate_events(&self) -> u64 {
        self.gate_events
    }

    /// Forces a primary input for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an `Input` gate.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert_eq!(
            self.netlist.gates()[net.0 as usize].kind,
            GateKind::Input,
            "{net} is not a primary input"
        );
        self.inputs[net.0 as usize] = value;
    }

    /// Forces a whole bus of inputs from the low bits of `value`
    /// (bit *i* of `value` drives `nets[i]`).
    pub fn set_input_bus(&mut self, nets: &[NetId], value: u64) {
        for (i, &n) in nets.iter().enumerate() {
            self.set_input(n, (value >> i) & 1 == 1);
        }
    }

    /// The settled value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }

    /// Reads a bus of nets as an integer (bit *i* from `nets[i]`).
    pub fn value_bus(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | ((self.value(n) as u64) << i))
    }

    /// Simulates one clock cycle with the currently forced inputs and
    /// returns the cycle's energy in joules.
    ///
    /// A cycle consists of: apply inputs → settle combinational logic →
    /// charge toggled nets + clock tree → clock DFFs.
    pub fn step(&mut self) -> f64 {
        match self.kernel {
            SimKernel::EventDriven => self.step_event(),
            SimKernel::Oblivious => self.step_oblivious(),
            SimKernel::WordParallel | SimKernel::Simd => {
                self.windowed_window(1, &[]);
                self.report.per_cycle_j[self.report.per_cycle_j.len() - 1]
            }
        }
    }

    /// Runs `n` cycles with held inputs and returns the energy over
    /// them, in joules. Under the windowed kernels the cycles are
    /// batched into windows of up to [`SimKernel::window_bits`] cycles;
    /// the returned energy is re-folded cycle by cycle from the report
    /// so the float sum is bit-identical to `n` scalar
    /// [`Simulator::step`] calls.
    pub fn run(&mut self, n: u64) -> f64 {
        if self.kernel.is_windowed() {
            let start = self.report.per_cycle_j.len();
            let mut left = n;
            while left > 0 {
                let (m, _) = self.windowed_window(left, &[]);
                left -= m;
            }
            self.report.per_cycle_j[start..].iter().sum()
        } else {
            (0..n).map(|_| self.step()).sum()
        }
    }

    /// Runs one batched block: `changes[j]` is the set of input forcings
    /// applied before cycle `j` (an empty set holds the inputs). Returns
    /// the energy over `changes.len()` cycles.
    ///
    /// This is the uniform batched driving surface across kernels: the
    /// scalar kernels loop `set_input` + `step`, while the windowed
    /// kernels pack each input's schedule into lane words so a whole
    /// block of cycles is evaluated per gate visit. Results are
    /// bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if a scheduled net is not an `Input` gate.
    pub fn run_block(&mut self, changes: &[Vec<(NetId, bool)>]) -> f64 {
        match self.kernel {
            SimKernel::WordParallel => self.run_block_w::<1>(changes),
            SimKernel::Simd => self.run_block_w::<4>(changes),
            SimKernel::EventDriven | SimKernel::Oblivious => {
                let mut energy = 0.0;
                for cyc in changes {
                    for &(net, v) in cyc {
                        self.set_input(net, v);
                    }
                    energy += self.step();
                }
                energy
            }
        }
    }

    /// [`Simulator::run_block`] under a windowed kernel at lane-word
    /// width `W`.
    fn run_block_w<const W: usize>(&mut self, changes: &[Vec<(NetId, bool)>]) -> f64
    where
        Wide<W>: LaneWord,
    {
        let bits = <Wide<W> as LaneWord>::BITS;
        let start = self.report.per_cycle_j.len();
        let mut pos = 0usize;
        while pos < changes.len() {
            let chunk = (changes.len() - pos).min(bits as usize);
            // Pack each changed input's schedule into a lane word:
            // start from the currently forced value, overwrite from
            // each change's offset onward (carry-forward to the top
            // lane so partial commits can shift the tail into a replay
            // window).
            let mut sched: Vec<(u32, Wide<W>)> = Vec::new();
            let mut slot_of: HashMap<u32, usize> = HashMap::new();
            for (off, cyc) in changes[pos..pos + chunk].iter().enumerate() {
                for &(net, v) in cyc {
                    assert_eq!(
                        self.netlist.gates()[net.0 as usize].kind,
                        GateKind::Input,
                        "{net} is not a primary input"
                    );
                    let slot = *slot_of.entry(net.0).or_insert_with(|| {
                        sched.push((net.0, Wide::splat(self.inputs[net.0 as usize])));
                        sched.len() - 1
                    });
                    let keep = Wide::<W>::low_mask(off as u32);
                    sched[slot].1 = sched[slot]
                        .1
                        .and(keep)
                        .or(Wide::splat(v).and(keep.not()));
                }
            }
            // Speculate / commit / replay until the chunk is consumed.
            let mut live = sched.clone();
            let mut left = chunk as u64;
            while left > 0 {
                let (m, _) = self.word_window_w::<W>(left, &live, &[]);
                left -= m;
                if left > 0 {
                    for w in &mut live {
                        w.1 = w.1.shr_fill(m as u32, w.1.bit(bits - 1));
                    }
                }
            }
            // The last scheduled slot is the forced value going forward.
            for &(i, w) in &sched {
                self.inputs[i as usize] = w.bit(bits - 1);
            }
            pos += chunk;
        }
        self.report.per_cycle_j[start..].iter().sum()
    }

    /// Runs one speculative window of at most `max_cycles` cycles
    /// (capped at the kernel's [`SimKernel::window_bits`]) with held
    /// inputs, additionally stopping at the first cycle where any
    /// `stop` net is asserted — the seam data-dependent input sequences
    /// (and wider lanes or GPU offload) drive the kernel through. The
    /// stop cycle itself is committed; per-cycle values over the
    /// committed prefix are readable through
    /// [`Simulator::window_value`] until the next window starts.
    ///
    /// # Panics
    ///
    /// Panics unless the kernel is windowed
    /// ([`SimKernel::is_windowed`]) and `max_cycles >= 1`.
    pub fn run_window(&mut self, max_cycles: u64, stop: &[NetId]) -> WindowRun {
        assert!(
            self.kernel.is_windowed(),
            "run_window requires a windowed kernel (word-parallel or simd)"
        );
        assert!(max_cycles >= 1, "a window is at least one cycle");
        let start = self.report.per_cycle_j.len();
        let (committed, stopped) = self.windowed_window(max_cycles, stop);
        WindowRun {
            committed,
            stopped,
            energy_j: self.report.per_cycle_j[start..].iter().sum(),
        }
    }

    /// A non-sequential net's value at cycle `cycle_in_window` of the
    /// most recent window (windowed kernels only; valid until the next
    /// window starts).
    ///
    /// # Panics
    ///
    /// Panics unless the kernel is windowed
    /// ([`SimKernel::is_windowed`]), the cycle is within the last
    /// committed window, and the net is combinational, constant, or an
    /// input (DFF outputs change *at* the committing edge, so their
    /// per-cycle history is not representable as one lane word; read
    /// them via [`Simulator::value`] after the window instead).
    pub fn window_value(&self, net: NetId, cycle_in_window: u64) -> bool {
        assert!(
            self.kernel.is_windowed(),
            "window_value requires a windowed kernel (word-parallel or simd)"
        );
        assert!(
            cycle_in_window < self.window_len,
            "cycle {cycle_in_window} beyond the committed window ({} cycles)",
            self.window_len
        );
        let i = net.0 as usize;
        assert!(
            !self.netlist.gates()[i].kind.is_sequential(),
            "{net} is a DFF output; window lanes only cover combinational nets"
        );
        if self.lane_epoch[i] == self.epoch {
            let stride = self.kernel.window_words();
            let w = self.lanes[i * stride + (cycle_in_window / 64) as usize];
            (w >> (cycle_in_window % 64)) & 1 == 1
        } else {
            self.values[i]
        }
    }

    /// Reads a bus of nets at one cycle of the most recent window (bit
    /// *i* from `nets[i]`; see [`Simulator::window_value`]).
    pub fn window_value_bus(&self, nets: &[NetId], cycle_in_window: u64) -> u64 {
        nets.iter().enumerate().fold(0u64, |acc, (i, &n)| {
            acc | ((self.window_value(n, cycle_in_window) as u64) << i)
        })
    }

    /// The accumulated cycle-by-cycle energy report.
    pub fn report(&self) -> &EnergyReport {
        &self.report
    }

    /// Clock-tree energy charged every cycle regardless of activity,
    /// joules.
    pub fn clock_energy_per_cycle_j(&self) -> f64 {
        self.caps.clock_energy_per_cycle_j()
    }

    /// Total toggle count of a net so far.
    pub fn toggle_count(&self, net: NetId) -> u64 {
        self.toggles[net.0 as usize]
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Clears the energy report, toggle counters, and activity counters
    /// (simulation state is kept).
    pub fn clear_stats(&mut self) {
        self.report = EnergyReport::default();
        for t in &mut self.toggles {
            *t = 0;
        }
        self.gate_evals = 0;
        self.gate_events = 0;
        self.gate_eval_slots = 0;
    }

    /// Enqueues gate `g` in its level's dirty bucket (idempotent).
    fn sched(level_queue: &mut [Vec<u32>], in_queue: &mut [bool], levels: &[u32], g: u32) {
        if !in_queue[g as usize] {
            in_queue[g as usize] = true;
            level_queue[levels[g as usize] as usize].push(g);
        }
    }

    /// Evaluates the combinational gate at `idx` against current values.
    fn eval_gate(&self, idx: usize) -> bool {
        let g = &self.netlist.gates()[idx];
        match g.kind {
            GateKind::Buf => self.values[g.inputs[0].0 as usize],
            GateKind::Not => !self.values[g.inputs[0].0 as usize],
            GateKind::And => g.inputs.iter().all(|&i| self.values[i.0 as usize]),
            GateKind::Or => g.inputs.iter().any(|&i| self.values[i.0 as usize]),
            GateKind::Nand => !g.inputs.iter().all(|&i| self.values[i.0 as usize]),
            GateKind::Nor => !g.inputs.iter().any(|&i| self.values[i.0 as usize]),
            GateKind::Xor => g
                .inputs
                .iter()
                .fold(false, |acc, &i| acc ^ self.values[i.0 as usize]),
            GateKind::Xnor => !g
                .inputs
                .iter()
                .fold(false, |acc, &i| acc ^ self.values[i.0 as usize]),
            GateKind::Mux => {
                let sel = self.values[g.inputs[0].0 as usize];
                if sel {
                    self.values[g.inputs[1].0 as usize]
                } else {
                    self.values[g.inputs[2].0 as usize]
                }
            }
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff(_) => {
                unreachable!("not a combinational gate")
            }
        }
    }

    /// Event-driven cycle: wake only the gates whose fan-in changed,
    /// sweep the dirty buckets in ascending level order (each gate is
    /// evaluated at most once, after all its fan-ins are final), then
    /// charge the toggled nets in the oblivious kernel's accumulation
    /// order.
    fn step_event(&mut self) -> f64 {
        // DFF outputs that changed at the previous edge drive this
        // cycle's settle, alongside any changed primary inputs.
        let pending = std::mem::take(&mut self.pending_edge);
        for &q in &pending {
            for k in 0..self.comb_fanout[q as usize].len() {
                let g = self.comb_fanout[q as usize][k];
                Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
            }
        }
        self.pending_edge = pending;
        self.pending_edge.clear();

        self.toggled.clear();
        for k in 0..self.input_ids.len() {
            let i = self.input_ids[k] as usize;
            if self.values[i] != self.inputs[i] {
                self.values[i] = self.inputs[i];
                self.toggled.push(i as u32);
                for j in 0..self.comb_fanout[i].len() {
                    let g = self.comb_fanout[i][j];
                    Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
                }
            }
        }

        // Levelized settle: a gate only ever wakes fanouts at strictly
        // higher levels, so one ascending pass drains everything.
        for lvl in 1..=self.max_level as usize {
            let mut bucket = std::mem::take(&mut self.level_queue[lvl]);
            for &g in &bucket {
                self.in_queue[g as usize] = false;
                self.gate_evals += 1;
                self.gate_eval_slots += 1;
                let v = self.eval_gate(g as usize);
                if v != self.values[g as usize] {
                    self.values[g as usize] = v;
                    self.toggled.push(g);
                    for k in 0..self.comb_fanout[g as usize].len() {
                        let succ = self.comb_fanout[g as usize][k];
                        Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, succ);
                    }
                }
            }
            bucket.clear();
            self.level_queue[lvl] = bucket;
        }

        // Energy: clock tree first, then toggled nets ascending by net
        // id — the float order of the oblivious before/after diff.
        self.toggled.sort_unstable();
        let mut energy = self.caps.clock_energy_per_cycle_j();
        for k in 0..self.toggled.len() {
            let i = self.toggled[k];
            self.toggles[i as usize] += 1;
            energy += self.config.switch_energy_j(self.caps.cap_ff(i));
        }
        self.gate_events += self.toggled.len() as u64;

        // Clock edge: sample all D inputs first (DFF-to-DFF chains shift
        // simultaneously), then commit in ascending gate order.
        self.edge_sample.clear();
        for k in 0..self.dffs.len() {
            let d = self.dffs[k].1;
            self.edge_sample.push(self.values[d as usize]);
        }
        for k in 0..self.dffs.len() {
            let q = self.dffs[k].0;
            let v = self.edge_sample[k];
            if self.values[q as usize] != v {
                self.toggles[q as usize] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(q));
                self.values[q as usize] = v;
                self.gate_events += 1;
                self.pending_edge.push(q);
            }
        }
        self.cycle += 1;
        self.report.per_cycle_j.push(energy);
        energy
    }

    /// Oblivious reference cycle: full value snapshot, full settle, full
    /// diff — kept verbatim for differential testing.
    fn step_oblivious(&mut self) -> f64 {
        let before = self.values.clone();
        // 1. Apply inputs.
        for (i, g) in self.netlist.gates().iter().enumerate() {
            if g.kind == GateKind::Input {
                self.values[i] = self.inputs[i];
            }
        }
        // 2. Settle combinational logic.
        self.settle_full();
        self.gate_evals += self.order.len() as u64;
        self.gate_eval_slots += self.order.len() as u64;
        // 3. Energy from toggles against the previous settled state.
        let mut energy = self.caps.clock_energy_per_cycle_j();
        for (i, (&now, &was)) in self.values.iter().zip(&before).enumerate() {
            if now != was {
                self.toggles[i] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(i as u32));
                self.gate_events += 1;
            }
        }
        // 4. Clock edge: DFFs sample their D inputs simultaneously. A Q
        //    output that changes switches its net's capacitance too (its
        //    downstream effect is charged at the next cycle's settle).
        let sampled: Vec<(usize, bool)> = self
            .netlist
            .gates()
            .iter()
            .enumerate()
            .filter_map(|(i, g)| {
                if g.kind.is_sequential() {
                    Some((i, self.values[g.inputs[0].0 as usize]))
                } else {
                    None
                }
            })
            .collect();
        for (i, v) in sampled {
            if self.values[i] != v {
                self.toggles[i] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(i as u32));
                self.gate_events += 1;
            }
            self.values[i] = v;
        }
        self.cycle += 1;
        self.report.per_cycle_j.push(energy);
        energy
    }

    /// Propagates values through all combinational gates (topological
    /// order), leaving DFF outputs and inputs untouched.
    fn settle_full(&mut self) {
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            self.values[id.0 as usize] = self.eval_gate(id.0 as usize);
        }
        // Constants hold their values.
        for (i, g) in self.netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => self.values[i] = false,
                GateKind::Const1 => self.values[i] = true,
                _ => {}
            }
        }
    }

    /// Runs one speculative window under whichever windowed kernel this
    /// instance was built with (monomorphization dispatch point).
    fn windowed_window(&mut self, budget: u64, stop: &[NetId]) -> (u64, bool) {
        match self.kernel {
            SimKernel::WordParallel => self.word_window_w::<1>(budget, &[], stop),
            SimKernel::Simd => self.word_window_w::<4>(budget, &[], stop),
            SimKernel::EventDriven | SimKernel::Oblivious => {
                unreachable!("not a windowed kernel")
            }
        }
    }

    /// A net's lane word for the current window: the computed lanes if
    /// the net changed this window, else its committed value broadcast
    /// to every cycle slot.
    #[inline]
    fn lane_of_w<const W: usize>(&self, i: usize) -> Wide<W>
    where
        Wide<W>: LaneWord,
    {
        if self.lane_epoch[i] == self.epoch {
            lane_get::<W>(&self.lanes, i)
        } else {
            Wide::splat(self.values[i])
        }
    }

    /// Evaluates the combinational gate at `idx` as one word op over
    /// the current window's lanes.
    fn eval_gate_word_w<const W: usize>(&self, idx: usize) -> Wide<W>
    where
        Wide<W>: LaneWord,
    {
        let g = &self.netlist.gates()[idx];
        match g.kind {
            GateKind::Buf => self.lane_of_w::<W>(g.inputs[0].0 as usize),
            GateKind::Not => self.lane_of_w::<W>(g.inputs[0].0 as usize).not(),
            GateKind::And => g
                .inputs
                .iter()
                .fold(Wide::ONES, |a, &i| a.and(self.lane_of_w::<W>(i.0 as usize))),
            GateKind::Or => g
                .inputs
                .iter()
                .fold(Wide::ZERO, |a, &i| a.or(self.lane_of_w::<W>(i.0 as usize))),
            GateKind::Nand => g
                .inputs
                .iter()
                .fold(Wide::ONES, |a, &i| a.and(self.lane_of_w::<W>(i.0 as usize)))
                .not(),
            GateKind::Nor => g
                .inputs
                .iter()
                .fold(Wide::ZERO, |a, &i| a.or(self.lane_of_w::<W>(i.0 as usize)))
                .not(),
            GateKind::Xor => g
                .inputs
                .iter()
                .fold(Wide::ZERO, |a, &i| a.xor(self.lane_of_w::<W>(i.0 as usize))),
            GateKind::Xnor => g
                .inputs
                .iter()
                .fold(Wide::ZERO, |a, &i| a.xor(self.lane_of_w::<W>(i.0 as usize)))
                .not(),
            GateKind::Mux => {
                let s = self.lane_of_w::<W>(g.inputs[0].0 as usize);
                s.and(self.lane_of_w::<W>(g.inputs[1].0 as usize))
                    .or(s.not().and(self.lane_of_w::<W>(g.inputs[2].0 as usize)))
            }
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff(_) => {
                unreachable!("not a combinational gate")
            }
        }
    }

    /// One speculative word window at lane-word width `W`: evaluates up
    /// to `budget` (≤ the word's lane count) cycles at once under the
    /// assumption that no DFF changes inside the window, then commits
    /// the longest provably exact prefix.
    ///
    /// * Inputs are held at their forced values unless `sched` supplies
    ///   an explicit per-cycle lane word for them (bit `j` = the value
    ///   forced before window cycle `j`).
    /// * The speculation is *self-checking*: DFF outputs are held at
    ///   their committed values, so the first window cycle `t` whose
    ///   clock edge would change any flop (`D` lane bit `t` ≠ held `Q`)
    ///   invalidates cycles `t + 1` onward — cycles `0..=t` are exact
    ///   because the state change only propagates after the edge. The
    ///   window commits through `t`, clocks the flops from the `D`
    ///   lanes at `t`, and the caller re-enters with the remainder (the
    ///   replay seam).
    /// * A `stop` net asserted within the exact prefix bounds the
    ///   commit the same way: its first asserted cycle is the last one
    ///   committed, and `stopped` is reported so the caller can react
    ///   (data-dependent input sequencing).
    ///
    /// Committed per-cycle energies are pushed onto the report in the
    /// scalar kernels' exact float accumulation order: clock tree, then
    /// toggled nets ascending by net id, then (at the edge cycle only)
    /// DFF outputs ascending by gate order.
    fn word_window_w<const W: usize>(
        &mut self,
        budget: u64,
        sched: &[(u32, Wide<W>)],
        stop: &[NetId],
    ) -> (u64, bool)
    where
        Wide<W>: LaneWord,
    {
        let bits = <Wide<W> as LaneWord>::BITS;
        let b = budget.min(bits as u64) as u32;
        let mask = Wide::<W>::low_mask(b);
        self.epoch += 1;
        self.active.clear();
        // Scheduled inputs: an explicit per-cycle lane overrides the
        // held value.
        for &(i, w) in sched {
            let iu = i as usize;
            lane_set::<W>(&mut self.lanes, iu, w);
            self.lane_epoch[iu] = self.epoch;
            if w.and(mask) != Wide::splat(self.values[iu]).and(mask) {
                self.active.push(i);
                for k in 0..self.comb_fanout[iu].len() {
                    let g = self.comb_fanout[iu][k];
                    Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
                }
            }
        }
        // Held inputs that changed since the last committed cycle
        // toggle at window cycle 0 and hold.
        for k in 0..self.input_ids.len() {
            let i = self.input_ids[k] as usize;
            if self.lane_epoch[i] == self.epoch {
                continue; // scheduled above
            }
            if self.values[i] != self.inputs[i] {
                lane_set::<W>(&mut self.lanes, i, Wide::splat(self.inputs[i]));
                self.lane_epoch[i] = self.epoch;
                self.active.push(i as u32);
                for j in 0..self.comb_fanout[i].len() {
                    let g = self.comb_fanout[i][j];
                    Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
                }
            }
        }
        // Gates invalidated by the previous window's clock edge (or the
        // construction-time constant-quirk seeds already queued).
        let pending = std::mem::take(&mut self.word_pending);
        for &g in &pending {
            Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, g);
        }
        self.word_pending = pending;
        self.word_pending.clear();

        // Levelized word settle: each dirty gate is evaluated exactly
        // once, as one word op covering every cycle of the window.
        let mut window_evals = 0u64;
        for lvl in 1..=self.max_level as usize {
            let mut bucket = std::mem::take(&mut self.level_queue[lvl]);
            for &g in &bucket {
                self.in_queue[g as usize] = false;
                self.gate_evals += 1;
                window_evals += 1;
                let w = self.eval_gate_word_w::<W>(g as usize);
                if w.and(mask) != Wide::splat(self.values[g as usize]).and(mask) {
                    lane_set::<W>(&mut self.lanes, g as usize, w);
                    self.lane_epoch[g as usize] = self.epoch;
                    self.active.push(g);
                    for k in 0..self.comb_fanout[g as usize].len() {
                        let succ = self.comb_fanout[g as usize][k];
                        Self::sched(&mut self.level_queue, &mut self.in_queue, &self.levels, succ);
                    }
                }
            }
            bucket.clear();
            self.level_queue[lvl] = bucket;
        }

        // Longest exact prefix: the speculation (flops hold) is valid
        // through the first cycle whose edge would change a flop.
        let mut m = b;
        for k in 0..self.dffs.len() {
            let (q, d) = self.dffs[k];
            let viol = self
                .lane_of_w::<W>(d as usize)
                .xor(Wide::splat(self.values[q as usize]))
                .and(mask);
            if !viol.is_zero() {
                let t = viol.trailing_zeros() + 1;
                if t < m {
                    m = t;
                }
            }
        }
        // A stop net asserted within the exact prefix ends the window
        // at its first asserted cycle.
        let mut stopped = false;
        for &s in stop {
            let sl = self.lane_of_w::<W>(s.0 as usize).and(mask);
            if !sl.is_zero() {
                let t = sl.trailing_zeros() + 1;
                if t <= m {
                    m = t;
                    stopped = true;
                }
            }
        }
        self.gate_eval_slots += window_evals * m as u64;

        // Commit: toggle words over the committed prefix, then the
        // per-cycle energy fold in the scalar kernels' order.
        let cmask = Wide::<W>::low_mask(m);
        self.active.sort_unstable();
        self.active_toggle.clear();
        for k in 0..self.active.len() {
            let i = self.active[k] as usize;
            let t = toggle_word_w(lane_get::<W>(&self.lanes, i), self.values[i]).and(cmask);
            self.active_toggle.extend_from_slice(&t.0);
        }
        // Sample every D at the edge cycle before any state is written
        // (DFF-to-DFF chains shift simultaneously).
        self.edge_sample.clear();
        for k in 0..self.dffs.len() {
            let d = self.dffs[k].1;
            self.edge_sample
                .push(self.lane_of_w::<W>(d as usize).bit(m - 1));
        }
        let clock = self.caps.clock_energy_per_cycle_j();
        for j in 0..m {
            let mut energy = clock;
            let (jw, jb) = ((j / 64) as usize, j % 64);
            for k in 0..self.active.len() {
                if (self.active_toggle[k * W + jw] >> jb) & 1 == 1 {
                    energy += self.config.switch_energy_j(self.caps.cap_ff(self.active[k]));
                }
            }
            if j + 1 == m {
                for k in 0..self.dffs.len() {
                    let q = self.dffs[k].0;
                    if self.edge_sample[k] != self.values[q as usize] {
                        energy += self.config.switch_energy_j(self.caps.cap_ff(q));
                    }
                }
            }
            self.report.per_cycle_j.push(energy);
        }
        // Commit state and counters: active nets take their edge-cycle
        // values, flops clock, and changed flop fanouts re-settle at
        // the next window.
        for k in 0..self.active.len() {
            let i = self.active[k] as usize;
            let pc: u64 = self.active_toggle[k * W..(k + 1) * W]
                .iter()
                .map(|w| w.count_ones() as u64)
                .sum();
            self.toggles[i] += pc;
            self.gate_events += pc;
            self.values[i] = lane_get::<W>(&self.lanes, i).bit(m - 1);
        }
        for k in 0..self.dffs.len() {
            let q = self.dffs[k].0 as usize;
            let v = self.edge_sample[k];
            if self.values[q] != v {
                self.toggles[q] += 1;
                self.gate_events += 1;
                self.values[q] = v;
                for j in 0..self.comb_fanout[q].len() {
                    self.word_pending.push(self.comb_fanout[q][j]);
                }
            }
        }
        self.cycle += m as u64;
        self.window_len = m as u64;
        (m as u64, stopped)
    }
}

/// Reads net `i`'s lane word from the flat window lane buffer.
#[inline]
fn lane_get<const W: usize>(lanes: &[u64], i: usize) -> Wide<W> {
    let mut a = [0u64; W];
    a.copy_from_slice(&lanes[i * W..(i + 1) * W]);
    Wide(a)
}

/// Writes net `i`'s lane word into the flat window lane buffer.
#[inline]
fn lane_set<const W: usize>(lanes: &mut [u64], i: usize, w: Wide<W>) {
    lanes[i * W..(i + 1) * W].copy_from_slice(&w.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn cfg() -> PowerConfig {
        PowerConfig::date2000_defaults()
    }

    #[test]
    fn gate_truth_tables() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let and = n.gate(GateKind::And, vec![a, b]);
        let or = n.gate(GateKind::Or, vec![a, b]);
        let nand = n.gate(GateKind::Nand, vec![a, b]);
        let nor = n.gate(GateKind::Nor, vec![a, b]);
        let xor = n.gate(GateKind::Xor, vec![a, b]);
        let xnor = n.gate(GateKind::Xnor, vec![a, b]);
        let not = n.gate(GateKind::Not, vec![a]);
        let buf = n.gate(GateKind::Buf, vec![a]);
        for kernel in [SimKernel::EventDriven, SimKernel::Oblivious] {
            let mut sim =
                Simulator::with_kernel(Arc::new(n.clone()), cfg(), kernel).expect("valid");
            for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
                sim.set_input(a, va);
                sim.set_input(b, vb);
                sim.step();
                assert_eq!(sim.value(and), va && vb);
                assert_eq!(sim.value(or), va || vb);
                assert_eq!(sim.value(nand), !(va && vb));
                assert_eq!(sim.value(nor), !(va || vb));
                assert_eq!(sim.value(xor), va ^ vb);
                assert_eq!(sim.value(xnor), !(va ^ vb));
                assert_eq!(sim.value(not), !va);
                assert_eq!(sim.value(buf), va);
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new();
        let s = n.input();
        let a = n.input();
        let b = n.input();
        let m = n.gate(GateKind::Mux, vec![s, a, b]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input(a, true);
        sim.set_input(b, false);
        sim.set_input(s, true);
        sim.step();
        assert!(sim.value(m));
        sim.set_input(s, false);
        sim.step();
        assert!(!sim.value(m));
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut n = Netlist::new();
        let d = n.input();
        let q = n.dff(d, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input(d, true);
        sim.step();
        // During the cycle the old Q (reset value) is visible; after the
        // edge the new value is latched.
        assert!(sim.value(q));
        sim.set_input(d, false);
        sim.step();
        assert!(!sim.value(q));
    }

    #[test]
    fn toggle_flop_oscillates() {
        let mut n = Netlist::new();
        let inv = n.gate(GateKind::Not, vec![NetId(1)]);
        let q = n.dff(inv, false);
        for kernel in [SimKernel::EventDriven, SimKernel::Oblivious] {
            let mut sim =
                Simulator::with_kernel(Arc::new(n.clone()), cfg(), kernel).expect("valid");
            let mut seen = Vec::new();
            for _ in 0..4 {
                sim.step();
                seen.push(sim.value(q));
            }
            assert_eq!(seen, vec![true, false, true, false]);
        }
    }

    #[test]
    fn energy_zero_when_nothing_toggles() {
        let mut n = Netlist::new();
        let a = n.input();
        let _x = n.gate(GateKind::Not, vec![a]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        // No DFFs → no clock energy; inputs held → no toggles.
        let e1 = sim.step();
        assert_eq!(e1, 0.0);
        sim.set_input(a, true);
        let e2 = sim.step();
        assert!(e2 > 0.0);
        let e3 = sim.step();
        assert_eq!(e3, 0.0);
    }

    #[test]
    fn energy_scales_with_activity() {
        // A 4-bit input bus into inverters: toggling more bits costs more.
        let mut n = Netlist::new();
        let bits: Vec<NetId> = (0..4).map(|_| n.input()).collect();
        for &b in &bits {
            n.gate(GateKind::Not, vec![b]);
        }
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input_bus(&bits, 0b0001);
        let e1 = sim.step();
        sim.set_input_bus(&bits, 0b1110);
        let e4 = sim.step(); // all 4 bits flip
        assert!(e4 > e1);
        assert_eq!(sim.toggle_count(bits[0]), 2);
    }

    #[test]
    fn bus_helpers_roundtrip() {
        let mut n = Netlist::new();
        let bits: Vec<NetId> = (0..8).map(|_| n.input()).collect();
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input_bus(&bits, 0xA5);
        sim.step();
        assert_eq!(sim.value_bus(&bits), 0xA5);
    }

    #[test]
    fn report_accumulates_and_clears() {
        let mut n = Netlist::new();
        let d = n.input();
        let _q = n.dff(d, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.run(5);
        assert_eq!(sim.report().cycles(), 5);
        assert!(sim.report().total_j() > 0.0); // clock energy
        assert_eq!(sim.cycle(), 5);
        sim.clear_stats();
        assert_eq!(sim.report().cycles(), 0);
        assert_eq!(sim.gate_evals(), 0);
        assert_eq!(sim.gate_events(), 0);
    }

    #[test]
    fn determinism() {
        let mut n = Netlist::new();
        let a = n.input();
        let inv = n.gate(GateKind::Not, vec![NetId(2)]);
        let q = n.dff(inv, false);
        let x = n.gate(GateKind::Xor, vec![a, q]);
        n.mark_output("x", x);
        let run = || {
            let mut sim = Simulator::new(&n, cfg()).expect("valid");
            let mut trace = Vec::new();
            for i in 0..20u64 {
                sim.set_input(a, i % 3 == 0);
                let e = sim.step();
                trace.push((sim.value(x), e.to_bits()));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn with_shared_does_not_clone_the_netlist() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        n.mark_output("x", x);
        let shared = Arc::new(n);
        let sim = Simulator::with_shared(Arc::clone(&shared), cfg()).expect("valid");
        assert!(Arc::ptr_eq(sim.netlist(), &shared));
    }

    #[test]
    fn kernels_agree_bitwise_on_a_small_design() {
        // Mixed netlist: constants (init quirk), a DFF-to-DFF shift
        // chain, and reconvergent combinational logic.
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let one = n.constant(true);
        let zero = n.constant(false);
        let x = n.gate(GateKind::Xor, vec![a, one]);
        let y = n.gate(GateKind::And, vec![x, b]);
        let q1 = n.dff(y, false);
        let q2 = n.dff(q1, true);
        let m = n.gate(GateKind::Mux, vec![q2, x, zero]);
        n.mark_output("m", m);
        let shared = Arc::new(n);
        let run = |kernel| {
            let mut sim =
                Simulator::with_kernel(Arc::clone(&shared), cfg(), kernel).expect("valid");
            let mut trace = Vec::new();
            for i in 0..32u64 {
                sim.set_input(a, i % 3 == 0);
                sim.set_input(b, i % 5 != 0);
                let e = sim.step();
                let vals: Vec<bool> = (0..shared.gate_count())
                    .map(|k| sim.value(NetId(k as u32)))
                    .collect();
                trace.push((e.to_bits(), vals));
            }
            let toggles: Vec<u64> = (0..shared.gate_count())
                .map(|k| sim.toggle_count(NetId(k as u32)))
                .collect();
            (trace, toggles, sim.report().total_j().to_bits())
        };
        assert_eq!(run(SimKernel::EventDriven), run(SimKernel::Oblivious));
        assert_eq!(run(SimKernel::WordParallel), run(SimKernel::Oblivious));
        assert_eq!(run(SimKernel::Simd), run(SimKernel::Oblivious));
    }

    #[test]
    fn word_kernel_batches_held_runs_bitwise() {
        // A shift chain with a self-toggling head: every cycle changes
        // flop state, so every window commits exactly one cycle — the
        // worst case for speculation must still be bit-exact.
        let mut n = Netlist::new();
        let inv = n.gate(GateKind::Not, vec![NetId(1)]);
        let mut q = n.dff(inv, false);
        for _ in 0..5 {
            q = n.dff(q, false);
        }
        n.mark_output("q", q);
        let shared = Arc::new(n);
        let run = |kernel| {
            let mut sim =
                Simulator::with_kernel(Arc::clone(&shared), cfg(), kernel).expect("valid");
            let e = sim.run(130); // non-multiple of 64
            let report: Vec<u64> = sim.report().per_cycle_j.iter().map(|x| x.to_bits()).collect();
            (e.to_bits(), report, sim.gate_events())
        };
        assert_eq!(run(SimKernel::WordParallel), run(SimKernel::Oblivious));
        assert_eq!(run(SimKernel::Simd), run(SimKernel::Oblivious));
    }

    #[test]
    fn word_kernel_commits_whole_windows_when_quiescent() {
        // Inputs held, no flops toggling: one window eval covers 64
        // cycles, so eval counts collapse while slots stay honest.
        let mut n = Netlist::new();
        let a = n.input();
        let mut prev = a;
        for _ in 0..8 {
            prev = n.gate(GateKind::Not, vec![prev]);
        }
        n.mark_output("out", prev);
        let shared = Arc::new(n);
        let mut sim = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::WordParallel)
            .expect("valid");
        sim.run(256);
        assert_eq!(sim.gate_evals(), 0, "nothing dirty while inputs hold");
        assert_eq!(sim.gate_eval_slots(), 0);
        // One input flip wakes the chain once for the whole 64-cycle
        // window: 8 word evals commit 8 × 64 slots.
        sim.set_input(a, true);
        sim.run(64);
        assert_eq!(sim.gate_evals(), 8);
        assert_eq!(sim.gate_eval_slots(), 8 * 64);
        // The scalar kernels keep evals == slots by definition.
        let mut ev = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::EventDriven)
            .expect("valid");
        ev.set_input(a, true);
        ev.run(64);
        assert_eq!(ev.gate_evals(), ev.gate_eval_slots());
    }

    #[test]
    fn run_block_matches_per_cycle_stepping_across_kernels() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.gate(GateKind::Xor, vec![a, b]);
        let q = n.dff(x, false);
        let y = n.gate(GateKind::And, vec![q, a]);
        n.mark_output("y", y);
        let shared = Arc::new(n);
        let changes: Vec<Vec<(NetId, bool)>> = (0..130u64)
            .map(|i| {
                let mut c = Vec::new();
                if i % 7 == 0 {
                    c.push((a, i % 14 == 0));
                }
                if i % 11 == 3 {
                    c.push((b, i % 22 == 3));
                }
                c
            })
            .collect();
        let drive = |kernel| {
            let mut sim =
                Simulator::with_kernel(Arc::clone(&shared), cfg(), kernel).expect("valid");
            let e = sim.run_block(&changes);
            let report: Vec<u64> = sim.report().per_cycle_j.iter().map(|x| x.to_bits()).collect();
            let toggles: Vec<u64> = (0..shared.gate_count())
                .map(|k| sim.toggle_count(NetId(k as u32)))
                .collect();
            (e.to_bits(), report, toggles, sim.gate_events())
        };
        let word = drive(SimKernel::WordParallel);
        assert_eq!(word, drive(SimKernel::Oblivious));
        assert_eq!(word, drive(SimKernel::EventDriven));
        assert_eq!(word, drive(SimKernel::Simd));
    }

    #[test]
    fn run_window_stops_at_the_first_asserted_stop_net() {
        // A 3-bit counter's AND-of-bits goes high at cycle 6 (count 7
        // visible during cycle 7? — pinned below against scalar truth).
        let mut n = Netlist::new();
        let inv = n.gate(GateKind::Not, vec![NetId(1)]);
        let q0 = n.dff(inv, false);
        let x1 = n.gate(GateKind::Xor, vec![q0, NetId(3)]);
        // forward reference: q1 is gate 3
        let q1 = n.dff(x1, false);
        let stop = n.gate(GateKind::And, vec![q0, q1]);
        n.mark_output("stop", stop);
        let shared = Arc::new(n);
        // Scalar truth: first cycle where `stop` settles high.
        let mut scalar = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::EventDriven)
            .expect("valid");
        let mut first_high = 0u64;
        for c in 1..=64u64 {
            scalar.step();
            if scalar.value(stop) {
                first_high = c;
                break;
            }
        }
        assert!(first_high > 1, "stop must not fire immediately");
        for kernel in [SimKernel::WordParallel, SimKernel::Simd] {
            let mut sim =
                Simulator::with_kernel(Arc::clone(&shared), cfg(), kernel).expect("valid");
            let mut committed = 0u64;
            let win = loop {
                let w = sim.run_window(kernel.window_bits() as u64, &[stop]);
                committed += w.committed;
                if w.stopped {
                    break w;
                }
            };
            assert!(win.stopped);
            assert_eq!(committed, first_high, "stop cycle is the last committed");
            // The stop net reads high at the stop cycle through the
            // window lane, and the committed prefix is replayable history.
            assert!(sim.window_value(stop, win.committed - 1));
            assert_eq!(sim.cycle(), first_high);
        }
    }

    #[test]
    fn window_value_exposes_percycle_history() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        n.mark_output("x", x);
        let shared = Arc::new(n);
        for kernel in [SimKernel::WordParallel, SimKernel::Simd] {
            let mut sim =
                Simulator::with_kernel(Arc::clone(&shared), cfg(), kernel).expect("valid");
            // Schedule a mid-block flip via run_block, then read history.
            let mut changes = vec![Vec::new(); 10];
            changes[4].push((a, true));
            sim.run_block(&changes);
            // run_block's last window covered all 10 cycles (no flops).
            for j in 0..10u64 {
                assert_eq!(sim.window_value(a, j), j >= 4);
                assert_eq!(sim.window_value(x, j), j < 4);
            }
        }
    }

    #[test]
    fn env_kernel_hatch_precedence() {
        // Own-process test: the unit-test binary may touch the
        // environment (no other test here reads it concurrently).
        std::env::set_var("GATESIM_KERNEL", "word");
        std::env::set_var("GATESIM_OBLIVIOUS", "1");
        assert_eq!(SimKernel::from_env(), Ok(SimKernel::WordParallel));
        // Parsing is case-insensitive and whitespace-tolerant.
        std::env::set_var("GATESIM_KERNEL", " SIMD ");
        assert_eq!(SimKernel::from_env(), Ok(SimKernel::Simd));
        // Unknown values surface a typed error listing the options.
        std::env::set_var("GATESIM_KERNEL", "warp");
        let err = SimKernel::from_env().expect_err("unknown kernel");
        assert_eq!(err.value(), "warp");
        let msg = err.to_string();
        for option in ["event", "oblivious", "word", "simd"] {
            assert!(msg.contains(option), "{msg:?} must list {option:?}");
        }
        // Empty means unset: the legacy oblivious hatch applies.
        std::env::set_var("GATESIM_KERNEL", "");
        assert_eq!(SimKernel::from_env(), Ok(SimKernel::Oblivious));
        std::env::remove_var("GATESIM_KERNEL");
        assert_eq!(SimKernel::from_env(), Ok(SimKernel::Oblivious));
        std::env::remove_var("GATESIM_OBLIVIOUS");
        assert_eq!(SimKernel::from_env(), Ok(SimKernel::EventDriven));
    }

    #[test]
    fn kernel_choice_scales_with_state_structure() {
        // Purely combinational: full-width speculative windows always
        // commit, so the widest (simd) kernel wins.
        let mut comb = Netlist::new();
        let a = comb.input();
        let x = comb.gate(GateKind::Not, vec![a]);
        comb.mark_output("x", x);
        assert_eq!(SimKernel::choose(None, &comb), SimKernel::Simd);
        // Feed-forward flops (a pipeline): state settles to the input
        // stream, so windows still run long — word-parallel pays off.
        let mut pipe = Netlist::new();
        let b = pipe.input();
        let s1 = pipe.dff(b, false);
        let s2 = pipe.dff(s1, false);
        pipe.mark_output("q", s2);
        assert_eq!(SimKernel::choose(None, &pipe), SimKernel::WordParallel);
        // Sequential feedback (a toggle flop): every window commits a
        // single cycle, so speculation never amortizes — event-driven.
        let mut fb = Netlist::new();
        let inv = fb.gate(GateKind::Not, vec![NetId(1)]);
        let q = fb.dff(inv, false);
        fb.mark_output("q", q);
        assert_eq!(SimKernel::choose(None, &fb), SimKernel::EventDriven);
        // A forced kernel always wins over the heuristic.
        for forced in [
            SimKernel::EventDriven,
            SimKernel::Oblivious,
            SimKernel::WordParallel,
            SimKernel::Simd,
        ] {
            assert_eq!(SimKernel::choose(Some(forced), &comb), forced);
            assert_eq!(SimKernel::choose(Some(forced), &pipe), forced);
            assert_eq!(SimKernel::choose(Some(forced), &fb), forced);
        }
    }

    #[test]
    fn simd_kernel_commits_256_cycle_windows_when_quiescent() {
        // The simd kernel quadruples the window: 8 wide evals cover
        // 8 × 256 committed slots, four times the word kernel's batch.
        let mut n = Netlist::new();
        let a = n.input();
        let mut prev = a;
        for _ in 0..8 {
            prev = n.gate(GateKind::Not, vec![prev]);
        }
        n.mark_output("out", prev);
        let shared = Arc::new(n);
        let mut sim =
            Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::Simd).expect("valid");
        sim.run(512);
        assert_eq!(sim.gate_evals(), 0, "nothing dirty while inputs hold");
        assert_eq!(sim.gate_eval_slots(), 0);
        sim.set_input(a, true);
        sim.run(256);
        assert_eq!(sim.gate_evals(), 8);
        assert_eq!(sim.gate_eval_slots(), 8 * 256);
        // Same drive through the word kernel: identical energy, but the
        // flip's window only spans 64 cycles (the three quiescent
        // follow-up windows commit free), so a quarter of the slots.
        let mut word = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::WordParallel)
            .expect("valid");
        word.run(512);
        word.set_input(a, true);
        word.run(256);
        assert_eq!(
            sim.report().total_j().to_bits(),
            word.report().total_j().to_bits()
        );
        assert_eq!(word.gate_evals(), 8);
        assert_eq!(word.gate_eval_slots(), 8 * 64);
    }

    #[test]
    fn event_kernel_evaluates_fewer_gates_when_inputs_hold() {
        let mut n = Netlist::new();
        let a = n.input();
        let mut prev = a;
        for _ in 0..16 {
            prev = n.gate(GateKind::Not, vec![prev]);
        }
        n.mark_output("out", prev);
        let shared = Arc::new(n);
        let mut ev = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::EventDriven)
            .expect("valid");
        let mut ob = Simulator::with_kernel(Arc::clone(&shared), cfg(), SimKernel::Oblivious)
            .expect("valid");
        // Inputs never change: the event kernel should evaluate nothing.
        ev.run(10);
        ob.run(10);
        assert_eq!(ev.gate_evals(), 0);
        assert_eq!(ob.gate_evals(), 16 * 10);
        assert_eq!(ev.report().total_j().to_bits(), ob.report().total_j().to_bits());
        // One input flip wakes the whole inverter chain exactly once.
        ev.set_input(a, true);
        ev.step();
        assert_eq!(ev.gate_evals(), 16);
        assert_eq!(ev.gate_events(), 17);
    }
}
