//! Cycle-based logic simulation with toggle-count energy.
//!
//! The simulator evaluates the combinational gates in topological order
//! once per cycle (zero-delay semantics), then clocks all DFFs
//! simultaneously. Every net whose settled value differs from the previous
//! cycle contributes one switch of its effective capacitance to the
//! cycle's energy — the same accounting the modified SIS power estimator
//! of the paper performs.

use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::{CapacitanceMap, EnergyReport, PowerConfig};

/// A simulation instance bound to one netlist.
///
/// # Examples
///
/// ```
/// use gatesim::{Netlist, GateKind, Simulator, PowerConfig};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let x = n.gate(GateKind::Xor, vec![a, b]);
/// n.mark_output("x", x);
///
/// let mut sim = Simulator::new(&n, PowerConfig::date2000_defaults())?;
/// sim.set_input(a, true);
/// let e = sim.step();
/// assert!(sim.value(x));
/// assert!(e > 0.0); // nets toggled
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    order: Vec<NetId>,
    caps: CapacitanceMap,
    config: PowerConfig,
    values: Vec<bool>,
    inputs: Vec<bool>,
    report: EnergyReport,
    toggles: Vec<u64>,
    cycle: u64,
}

impl Simulator {
    /// Builds a simulator, validating the netlist.
    ///
    /// All nets start at their reset values (DFF init values, inputs low,
    /// combinational logic settled accordingly).
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is malformed.
    pub fn new(netlist: &Netlist, config: PowerConfig) -> Result<Self, ValidateNetlistError> {
        let order = netlist.validate()?;
        let caps = CapacitanceMap::new(netlist, &config);
        let n = netlist.gate_count();
        let mut sim = Simulator {
            netlist: netlist.clone(),
            order,
            caps,
            config,
            values: vec![false; n],
            inputs: vec![false; n],
            report: EnergyReport::default(),
            toggles: vec![0; n],
            cycle: 0,
        };
        // Settle reset state without charging energy.
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            if let GateKind::Dff(init) = g.kind {
                sim.values[i] = init;
            }
        }
        sim.settle();
        Ok(sim)
    }

    /// Forces a primary input for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an `Input` gate.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        assert_eq!(
            self.netlist.gates()[net.0 as usize].kind,
            GateKind::Input,
            "{net} is not a primary input"
        );
        self.inputs[net.0 as usize] = value;
    }

    /// Forces a whole bus of inputs from the low bits of `value`
    /// (bit *i* of `value` drives `nets[i]`).
    pub fn set_input_bus(&mut self, nets: &[NetId], value: u64) {
        for (i, &n) in nets.iter().enumerate() {
            self.set_input(n, (value >> i) & 1 == 1);
        }
    }

    /// The settled value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }

    /// Reads a bus of nets as an integer (bit *i* from `nets[i]`).
    pub fn value_bus(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &n)| acc | ((self.value(n) as u64) << i))
    }

    /// Simulates one clock cycle with the currently forced inputs and
    /// returns the cycle's energy in joules.
    ///
    /// A cycle consists of: apply inputs → settle combinational logic →
    /// charge toggled nets + clock tree → clock DFFs.
    pub fn step(&mut self) -> f64 {
        let before = self.values.clone();
        // 1. Apply inputs.
        for (i, g) in self.netlist.gates().iter().enumerate() {
            if g.kind == GateKind::Input {
                self.values[i] = self.inputs[i];
            }
        }
        // 2. Settle combinational logic.
        self.settle();
        // 3. Energy from toggles against the previous settled state.
        let mut energy = self.caps.clock_energy_per_cycle_j();
        for (i, (&now, &was)) in self.values.iter().zip(&before).enumerate() {
            if now != was {
                self.toggles[i] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(i as u32));
            }
        }
        // 4. Clock edge: DFFs sample their D inputs simultaneously. A Q
        //    output that changes switches its net's capacitance too (its
        //    downstream effect is charged at the next cycle's settle).
        let sampled: Vec<(usize, bool)> = self
            .netlist
            .gates()
            .iter()
            .enumerate()
            .filter_map(|(i, g)| {
                if g.kind.is_sequential() {
                    Some((i, self.values[g.inputs[0].0 as usize]))
                } else {
                    None
                }
            })
            .collect();
        for (i, v) in sampled {
            if self.values[i] != v {
                self.toggles[i] += 1;
                energy += self.config.switch_energy_j(self.caps.cap_ff(i as u32));
            }
            self.values[i] = v;
        }
        self.cycle += 1;
        self.report.per_cycle_j.push(energy);
        energy
    }

    /// Runs `n` cycles and returns the energy over them, in joules.
    pub fn run(&mut self, n: u64) -> f64 {
        (0..n).map(|_| self.step()).sum()
    }

    /// The accumulated cycle-by-cycle energy report.
    pub fn report(&self) -> &EnergyReport {
        &self.report
    }

    /// Clock-tree energy charged every cycle regardless of activity,
    /// joules.
    pub fn clock_energy_per_cycle_j(&self) -> f64 {
        self.caps.clock_energy_per_cycle_j()
    }

    /// Total toggle count of a net so far.
    pub fn toggle_count(&self, net: NetId) -> u64 {
        self.toggles[net.0 as usize]
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Clears the energy report and toggle counters (state is kept).
    pub fn clear_stats(&mut self) {
        self.report = EnergyReport::default();
        for t in &mut self.toggles {
            *t = 0;
        }
    }

    /// Propagates values through the combinational gates (topological
    /// order), leaving DFF outputs and inputs untouched.
    fn settle(&mut self) {
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let g = &self.netlist.gates()[id.0 as usize];
            let v = match g.kind {
                GateKind::Buf => self.values[g.inputs[0].0 as usize],
                GateKind::Not => !self.values[g.inputs[0].0 as usize],
                GateKind::And => g.inputs.iter().all(|&i| self.values[i.0 as usize]),
                GateKind::Or => g.inputs.iter().any(|&i| self.values[i.0 as usize]),
                GateKind::Nand => !g.inputs.iter().all(|&i| self.values[i.0 as usize]),
                GateKind::Nor => !g.inputs.iter().any(|&i| self.values[i.0 as usize]),
                GateKind::Xor => g
                    .inputs
                    .iter()
                    .fold(false, |acc, &i| acc ^ self.values[i.0 as usize]),
                GateKind::Xnor => !g
                    .inputs
                    .iter()
                    .fold(false, |acc, &i| acc ^ self.values[i.0 as usize]),
                GateKind::Mux => {
                    let sel = self.values[g.inputs[0].0 as usize];
                    if sel {
                        self.values[g.inputs[1].0 as usize]
                    } else {
                        self.values[g.inputs[2].0 as usize]
                    }
                }
                GateKind::Input
                | GateKind::Const0
                | GateKind::Const1
                | GateKind::Dff(_) => unreachable!("not in combinational order"),
            };
            self.values[id.0 as usize] = v;
        }
        // Constants hold their values.
        for (i, g) in self.netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => self.values[i] = false,
                GateKind::Const1 => self.values[i] = true,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn cfg() -> PowerConfig {
        PowerConfig::date2000_defaults()
    }

    #[test]
    fn gate_truth_tables() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let and = n.gate(GateKind::And, vec![a, b]);
        let or = n.gate(GateKind::Or, vec![a, b]);
        let nand = n.gate(GateKind::Nand, vec![a, b]);
        let nor = n.gate(GateKind::Nor, vec![a, b]);
        let xor = n.gate(GateKind::Xor, vec![a, b]);
        let xnor = n.gate(GateKind::Xnor, vec![a, b]);
        let not = n.gate(GateKind::Not, vec![a]);
        let buf = n.gate(GateKind::Buf, vec![a]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.step();
            assert_eq!(sim.value(and), va && vb);
            assert_eq!(sim.value(or), va || vb);
            assert_eq!(sim.value(nand), !(va && vb));
            assert_eq!(sim.value(nor), !(va || vb));
            assert_eq!(sim.value(xor), va ^ vb);
            assert_eq!(sim.value(xnor), !(va ^ vb));
            assert_eq!(sim.value(not), !va);
            assert_eq!(sim.value(buf), va);
        }
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new();
        let s = n.input();
        let a = n.input();
        let b = n.input();
        let m = n.gate(GateKind::Mux, vec![s, a, b]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input(a, true);
        sim.set_input(b, false);
        sim.set_input(s, true);
        sim.step();
        assert!(sim.value(m));
        sim.set_input(s, false);
        sim.step();
        assert!(!sim.value(m));
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut n = Netlist::new();
        let d = n.input();
        let q = n.dff(d, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input(d, true);
        sim.step();
        // During the cycle the old Q (reset value) is visible; after the
        // edge the new value is latched.
        assert!(sim.value(q));
        sim.set_input(d, false);
        sim.step();
        assert!(!sim.value(q));
    }

    #[test]
    fn toggle_flop_oscillates() {
        let mut n = Netlist::new();
        let inv = n.gate(GateKind::Not, vec![NetId(1)]);
        let q = n.dff(inv, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.step();
            seen.push(sim.value(q));
        }
        assert_eq!(seen, vec![true, false, true, false]);
    }

    #[test]
    fn energy_zero_when_nothing_toggles() {
        let mut n = Netlist::new();
        let a = n.input();
        let _x = n.gate(GateKind::Not, vec![a]);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        // No DFFs → no clock energy; inputs held → no toggles.
        let e1 = sim.step();
        assert_eq!(e1, 0.0);
        sim.set_input(a, true);
        let e2 = sim.step();
        assert!(e2 > 0.0);
        let e3 = sim.step();
        assert_eq!(e3, 0.0);
    }

    #[test]
    fn energy_scales_with_activity() {
        // A 4-bit input bus into inverters: toggling more bits costs more.
        let mut n = Netlist::new();
        let bits: Vec<NetId> = (0..4).map(|_| n.input()).collect();
        for &b in &bits {
            n.gate(GateKind::Not, vec![b]);
        }
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input_bus(&bits, 0b0001);
        let e1 = sim.step();
        sim.set_input_bus(&bits, 0b1110);
        let e4 = sim.step(); // all 4 bits flip
        assert!(e4 > e1);
        assert_eq!(sim.toggle_count(bits[0]), 2);
    }

    #[test]
    fn bus_helpers_roundtrip() {
        let mut n = Netlist::new();
        let bits: Vec<NetId> = (0..8).map(|_| n.input()).collect();
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.set_input_bus(&bits, 0xA5);
        sim.step();
        assert_eq!(sim.value_bus(&bits), 0xA5);
    }

    #[test]
    fn report_accumulates_and_clears() {
        let mut n = Netlist::new();
        let d = n.input();
        let _q = n.dff(d, false);
        let mut sim = Simulator::new(&n, cfg()).expect("valid");
        sim.run(5);
        assert_eq!(sim.report().cycles(), 5);
        assert!(sim.report().total_j() > 0.0); // clock energy
        assert_eq!(sim.cycle(), 5);
        sim.clear_stats();
        assert_eq!(sim.report().cycles(), 0);
    }

    #[test]
    fn determinism() {
        let mut n = Netlist::new();
        let a = n.input();
        let inv = n.gate(GateKind::Not, vec![NetId(2)]);
        let q = n.dff(inv, false);
        let x = n.gate(GateKind::Xor, vec![a, q]);
        n.mark_output("x", x);
        let run = || {
            let mut sim = Simulator::new(&n, cfg()).expect("valid");
            let mut trace = Vec::new();
            for i in 0..20u64 {
                sim.set_input(a, i % 3 == 0);
                let e = sim.step();
                trace.push((sim.value(x), e.to_bits()));
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
