//! Gate-level netlist intermediate representation.
//!
//! A [`Netlist`] is a flat array of [`Gate`]s; the output net of gate *i*
//! is [`NetId`]`(i)`. Primary inputs are `Input` gates whose value the
//! simulator forces each cycle; sequential state is held in `Dff` gates
//! that sample their data input on the (implicit) clock edge.

use crate::sim::ParseKernelError;
use std::fmt;

/// Identifier of a net — the output of the gate with the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (value forced by the simulator).
    Input,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// 2-input XOR (n-ary = parity).
    Xor,
    /// 2-input XNOR (n-ary = inverted parity).
    Xnor,
    /// 2:1 multiplexer: inputs `[sel, a, b]`, output = sel ? a : b.
    Mux,
    /// D flip-flop: input `[d]`; samples on the clock edge. The `bool` is
    /// the reset/initial value.
    Dff(bool),
}

impl GateKind {
    /// Whether this kind is a state element.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff(_))
    }

    /// Whether this kind takes no inputs.
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Intrinsic output capacitance in femtofarads, before fanout loading
    /// (typical 0.25µm standard-cell figures; the absolute scale cancels
    /// out of the paper's speedup/ranking results).
    pub fn intrinsic_cap_ff(self) -> f64 {
        match self {
            GateKind::Input => 2.0,
            GateKind::Const0 | GateKind::Const1 => 0.0,
            GateKind::Buf => 3.0,
            GateKind::Not => 2.0,
            GateKind::And | GateKind::Or => 4.0,
            GateKind::Nand | GateKind::Nor => 3.0,
            GateKind::Xor | GateKind::Xnor => 6.0,
            GateKind::Mux => 7.0,
            GateKind::Dff(_) => 10.0,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "input",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
            GateKind::Dff(_) => "dff",
        };
        f.write_str(s)
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Input nets, in positional order (see [`GateKind`] for conventions).
    pub inputs: Vec<NetId>,
}

/// Errors detected by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateNetlistError {
    /// A gate references a net that does not exist.
    DanglingNet {
        /// The referencing gate.
        gate: NetId,
        /// The missing input net.
        input: NetId,
    },
    /// A gate has the wrong number of inputs for its kind.
    BadArity {
        /// The offending gate.
        gate: NetId,
        /// Its kind.
        kind: GateKind,
        /// How many inputs it has.
        got: usize,
    },
    /// The combinational part of the netlist has a cycle through the given
    /// gate (cycles must be broken by DFFs).
    CombinationalCycle(NetId),
    /// The `GATESIM_KERNEL` environment override named an unknown
    /// kernel, so a simulator honoring it cannot be constructed.
    Kernel(ParseKernelError),
}

impl From<ParseKernelError> for ValidateNetlistError {
    fn from(e: ParseKernelError) -> Self {
        ValidateNetlistError::Kernel(e)
    }
}

impl fmt::Display for ValidateNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateNetlistError::DanglingNet { gate, input } => {
                write!(f, "gate {gate} reads nonexistent net {input}")
            }
            ValidateNetlistError::BadArity { gate, kind, got } => {
                write!(f, "gate {gate} of kind {kind} has invalid arity {got}")
            }
            ValidateNetlistError::CombinationalCycle(g) => {
                write!(f, "combinational cycle through gate {g}")
            }
            ValidateNetlistError::Kernel(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ValidateNetlistError {}

/// A flat gate-level netlist (see module docs).
///
/// # Examples
///
/// ```
/// use gatesim::{Netlist, GateKind};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let x = n.gate(GateKind::Xor, vec![a, b]);
/// n.mark_output("sum", x);
/// assert_eq!(n.gate_count(), 3);
/// n.validate()?;
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if the arity is statically wrong for `kind` (sources take 0
    /// inputs, `Buf`/`Not`/`Dff` take 1, `Mux` takes 3, others ≥ 1).
    pub fn gate(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let ok = match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => inputs.is_empty(),
            GateKind::Buf | GateKind::Not | GateKind::Dff(_) => inputs.len() == 1,
            GateKind::Mux => inputs.len() == 3,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => !inputs.is_empty(),
            GateKind::Xor | GateKind::Xnor => !inputs.is_empty(),
        };
        assert!(ok, "gate kind {kind} cannot take {} inputs", inputs.len());
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate { kind, inputs });
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> NetId {
        self.gate(GateKind::Input, vec![])
    }

    /// Adds a constant.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.gate(
            if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            },
            vec![],
        )
    }

    /// Adds a D flip-flop with the given initial value.
    pub fn dff(&mut self, d: NetId, init: bool) -> NetId {
        self.gate(GateKind::Dff(init), vec![d])
    }

    /// Adds a *wire*: a buffer whose driver is connected later with
    /// [`drive`](Netlist::drive). Until driven, the wire references
    /// itself, which [`validate`](Netlist::validate) reports as a
    /// combinational cycle — so forgetting to drive a wire cannot go
    /// unnoticed.
    pub fn wire(&mut self) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![id],
        });
        id
    }

    /// Connects a previously created [`wire`](Netlist::wire) to its
    /// driver.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not a buffer (only wires may be re-driven).
    pub fn drive(&mut self, wire: NetId, src: NetId) {
        let g = &mut self.gates[wire.0 as usize];
        assert_eq!(g.kind, GateKind::Buf, "only wires (buffers) can be driven");
        g.inputs[0] = src;
    }

    /// Names a net as a primary output.
    pub fn mark_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Looks up an output by name.
    pub fn output(&self, name: &str) -> Option<NetId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    /// The gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (including inputs and constants).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of sequential elements.
    pub fn dff_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind.is_sequential())
            .count()
    }

    /// Ids of the primary inputs, in creation order.
    pub fn primary_inputs(&self) -> Vec<NetId> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Input)
            .map(|(i, _)| NetId(i as u32))
            .collect()
    }

    /// Fanout count of each net.
    pub fn fanouts(&self) -> Vec<u32> {
        let mut f = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for &i in &g.inputs {
                f[i.0 as usize] += 1;
            }
        }
        f
    }

    /// Combinational fanout adjacency: entry *i* lists the indices of
    /// the combinational gates reading net *i* (a gate reading the same
    /// net through several pins appears once per pin; schedulers dedupe).
    /// Sources and DFFs never appear — DFFs sample their D input at the
    /// clock edge, not during the combinational settle.
    pub fn comb_fanout_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.gates.len()];
        for (g_idx, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() || g.kind.is_source() {
                continue;
            }
            for &i in &g.inputs {
                adj[i.0 as usize].push(g_idx as u32);
            }
        }
        adj
    }

    /// Topological levelization of the combinational gates: sources,
    /// constants, and DFF outputs sit at level 0, and a combinational
    /// gate's level is one more than the maximum level of its fan-ins.
    /// `order` must be a topological order from [`Netlist::validate`].
    /// Returns `(levels, max_level)`.
    pub fn comb_levels(&self, order: &[NetId]) -> (Vec<u32>, u32) {
        let mut levels = vec![0u32; self.gates.len()];
        let mut max_level = 0u32;
        for &id in order {
            let g = &self.gates[id.0 as usize];
            let lvl = 1 + g
                .inputs
                .iter()
                .map(|&i| levels[i.0 as usize])
                .max()
                .unwrap_or(0);
            levels[id.0 as usize] = lvl;
            max_level = max_level.max(lvl);
        }
        (levels, max_level)
    }

    /// Whether any flip-flop's next-state cone depends — transitively,
    /// through combinational logic and other flip-flops — on its own
    /// output: true iff the graph whose nodes are DFFs and whose edges
    /// run from each DFF feeding another's D-cone has a cycle
    /// (self-loops included, e.g. a toggle flop).
    ///
    /// Feed-forward pipelines (shift registers, pipelined datapaths)
    /// return false: their state settles to the input schedule within
    /// the pipeline depth, so speculative word windows still commit
    /// long prefixes and the word kernels amortize. Feedback state
    /// (counters, FSM registers) returns true — there the expected
    /// committed window length approaches one cycle and event-driven
    /// simulation wins. [`crate::SimKernel::auto_select`] keys on this.
    ///
    /// Robust to malformed netlists (dangling references are skipped);
    /// run [`Netlist::validate`] for real diagnostics.
    pub fn sequential_feedback(&self) -> bool {
        let mut ord = vec![u32::MAX; self.gates.len()];
        let mut dffs = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                ord[i] = dffs.len() as u32;
                dffs.push(i as u32);
            }
        }
        let nd = dffs.len();
        if nd == 0 {
            return false;
        }
        // For each DFF, walk backward from its D input through
        // combinational gates, collecting the DFFs its next state reads.
        let mut deps: Vec<Vec<u32>> = vec![Vec::new(); nd];
        let mut seen = vec![u32::MAX; self.gates.len()];
        for (k, &gi) in dffs.iter().enumerate() {
            let mut stack: Vec<u32> = self.gates[gi as usize]
                .inputs
                .iter()
                .map(|n| n.0)
                .collect();
            while let Some(i) = stack.pop() {
                let Some(g) = self.gates.get(i as usize) else {
                    continue;
                };
                if seen[i as usize] == k as u32 {
                    continue;
                }
                seen[i as usize] = k as u32;
                if g.kind.is_sequential() {
                    deps[k].push(ord[i as usize]);
                } else if !g.kind.is_source() {
                    stack.extend(g.inputs.iter().map(|n| n.0));
                }
            }
        }
        // Kahn over the DFF dependency graph: a cycle is feedback.
        let mut indeg = vec![0u32; nd];
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); nd];
        for (k, srcs) in deps.iter().enumerate() {
            for &s in srcs {
                out[s as usize].push(k as u32);
                indeg[k] += 1;
            }
        }
        let mut ready: Vec<u32> = (0..nd as u32).filter(|&k| indeg[k as usize] == 0).collect();
        let mut done = 0usize;
        while let Some(k) = ready.pop() {
            done += 1;
            for &succ in &out[k as usize] {
                indeg[succ as usize] -= 1;
                if indeg[succ as usize] == 0 {
                    ready.push(succ);
                }
            }
        }
        done != nd
    }

    /// Checks referential integrity, arity, and combinational acyclicity;
    /// returns the topological evaluation order of combinational gates.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateNetlistError`] found.
    pub fn validate(&self) -> Result<Vec<NetId>, ValidateNetlistError> {
        let n = self.gates.len() as u32;
        for (i, g) in self.gates.iter().enumerate() {
            let gid = NetId(i as u32);
            for &inp in &g.inputs {
                if inp.0 >= n {
                    return Err(ValidateNetlistError::DanglingNet {
                        gate: gid,
                        input: inp,
                    });
                }
            }
            let ok = match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => g.inputs.is_empty(),
                GateKind::Buf | GateKind::Not | GateKind::Dff(_) => g.inputs.len() == 1,
                GateKind::Mux => g.inputs.len() == 3,
                _ => !g.inputs.is_empty(),
            };
            if !ok {
                return Err(ValidateNetlistError::BadArity {
                    gate: gid,
                    kind: g.kind,
                    got: g.inputs.len(),
                });
            }
        }
        // Kahn topological sort over combinational edges only: DFF outputs
        // and sources have no combinational dependencies.
        let mut indeg = vec![0u32; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() || g.kind.is_source() {
                continue;
            }
            indeg[i] = g
                .inputs
                .iter()
                .filter(|inp| {
                    let src = &self.gates[inp.0 as usize];
                    !(src.kind.is_sequential() || src.kind.is_source())
                })
                .count() as u32;
        }
        // Combinational fanout adjacency.
        let mut order = Vec::new();
        let mut ready: Vec<u32> = (0..self.gates.len() as u32)
            .filter(|&i| {
                let k = self.gates[i as usize].kind;
                !(k.is_sequential() || k.is_source()) && indeg[i as usize] == 0
            })
            .collect();
        ready.reverse(); // pop from the end, keep ascending tendency
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() || g.kind.is_source() {
                continue;
            }
            for &inp in &g.inputs {
                let src = &self.gates[inp.0 as usize];
                if !(src.kind.is_sequential() || src.kind.is_source()) {
                    fanout[inp.0 as usize].push(i as u32);
                }
            }
        }
        while let Some(i) = ready.pop() {
            order.push(NetId(i));
            for &succ in &fanout[i as usize] {
                indeg[succ as usize] -= 1;
                if indeg[succ as usize] == 0 {
                    ready.push(succ);
                }
            }
        }
        let comb_total = self
            .gates
            .iter()
            .filter(|g| !(g.kind.is_sequential() || g.kind.is_source()))
            .count();
        if order.len() != comb_total {
            // Some combinational gate never reached indegree 0: cycle.
            let cyclic = (0..self.gates.len() as u32)
                .find(|&i| {
                    let k = self.gates[i as usize].kind;
                    !(k.is_sequential() || k.is_source()) && indeg[i as usize] > 0
                })
                .unwrap_or(0);
            return Err(ValidateNetlistError::CombinationalCycle(NetId(cyclic)));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_half_adder() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let sum = n.gate(GateKind::Xor, vec![a, b]);
        let carry = n.gate(GateKind::And, vec![a, b]);
        n.mark_output("sum", sum);
        n.mark_output("carry", carry);
        assert_eq!(n.gate_count(), 4);
        assert_eq!(n.dff_count(), 0);
        assert_eq!(n.primary_inputs(), vec![a, b]);
        assert_eq!(n.output("sum"), Some(sum));
        assert_eq!(n.output("nope"), None);
        let order = n.validate().expect("valid");
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn fanout_counting() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        let _y = n.gate(GateKind::And, vec![a, x]);
        let f = n.fanouts();
        assert_eq!(f[a.0 as usize], 2);
        assert_eq!(f[x.0 as usize], 1);
    }

    #[test]
    fn dff_breaks_cycles() {
        // q = dff(not q) — a toggle flop: legal because the DFF breaks
        // the loop. The inverter forward-references the DFF's net id.
        let mut n = Netlist::new();
        let inv = n.gate(GateKind::Not, vec![NetId(1)]); // forward ref to dff
        let q = n.dff(inv, false);
        assert_eq!(q, NetId(1));
        let order = n.validate().expect("valid: dff breaks the loop");
        assert_eq!(order, vec![inv]);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new();
        // gate 0 reads gate 1, gate 1 reads gate 0 — no DFF.
        let g0 = n.gate(GateKind::Not, vec![NetId(1)]);
        let _g1 = n.gate(GateKind::Not, vec![g0]);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn dangling_reference_detected() {
        let mut n = Netlist::new();
        n.gate(GateKind::Not, vec![NetId(42)]);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::DanglingNet { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn wrong_arity_panics_at_build() {
        let mut n = Netlist::new();
        let a = n.input();
        n.gate(GateKind::Mux, vec![a]);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        let y = n.gate(GateKind::Not, vec![x]);
        let z = n.gate(GateKind::And, vec![x, y]);
        let order = n.validate().expect("valid");
        let pos = |id: NetId| order.iter().position(|&o| o == id).expect("in order");
        assert!(pos(x) < pos(y));
        assert!(pos(y) < pos(z));
    }

    #[test]
    fn feedback_detection_separates_pipelines_from_state_machines() {
        // Combinational-only: no state at all.
        let mut comb = Netlist::new();
        let a = comb.input();
        comb.gate(GateKind::Not, vec![a]);
        assert!(!comb.sequential_feedback());

        // Shift register: DFFs chained forward, no loop.
        let mut pipe = Netlist::new();
        let a = pipe.input();
        let s1 = pipe.dff(a, false);
        let s2 = pipe.dff(s1, false);
        let _s3 = pipe.dff(s2, false);
        assert!(!pipe.sequential_feedback());

        // Toggle flop: q = dff(not q) — a self-loop through an inverter.
        let mut tog = Netlist::new();
        let inv = tog.gate(GateKind::Not, vec![NetId(1)]);
        tog.dff(inv, false);
        assert!(tog.sequential_feedback());

        // Two-flop loop: q0 feeds q1's D-cone and vice versa.
        let mut loop2 = Netlist::new();
        let x = loop2.wire();
        let q0 = loop2.dff(x, false);
        let q1 = loop2.dff(q0, true);
        loop2.drive(x, q1);
        assert!(loop2.sequential_feedback());

        // A loop plus an independent pipeline is still feedback.
        let a = loop2.input();
        let _tail = loop2.dff(a, false);
        assert!(loop2.sequential_feedback());
    }

    #[test]
    fn intrinsic_caps_are_positive_for_logic() {
        for k in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
            GateKind::Dff(false),
        ] {
            assert!(k.intrinsic_cap_ff() > 0.0, "{k} must have cap");
        }
    }
}
