//! Word-level (bit-parallel) simulation support: lane packing utilities
//! and a multi-stream lockstep simulator generic over the lane width.
//!
//! The software analogue of hardware-accelerated power estimation
//! (Coburn/Ravi/Raghunathan): a net's value over 64 cycle slots — or
//! across 64 independent stimulus streams — is one `u64` *lane word*,
//! and every gate evaluation is a single word operation (`&`, `|`, `^`,
//! `!`, and `(s & a) | (!s & b)` for a mux). Toggle counting becomes a
//! popcount over a *toggle word* ([`toggle_word`]). The
//! [`crate::simd::LaneWord`] trait widens the same scheme to 128/256/512
//! lanes per word op.
//!
//! Three consumers build on these primitives:
//!
//! * [`crate::SimKernel::WordParallel`] packs up to 64 *consecutive
//!   cycles of one stream* into each lane word, with a speculate /
//!   commit-prefix / replay seam at DFF boundaries (see
//!   `gatesim::sim`); [`crate::SimKernel::Simd`] is the same engine at
//!   256 cycles per word.
//! * [`MultiLaneSim`] (here) packs *independent streams* into each lane
//!   word — one per lane — and steps them in lockstep; sequential
//!   feedback never limits the batch because the lanes share nothing,
//!   which is what makes word-level evaluation pay off on state-dense
//!   netlists. Each lane is bit-identical to a scalar
//!   [`crate::Simulator`] run of the same stream, including the
//!   per-cycle float accumulation order and the seed's constant-init
//!   quirk. [`LaneSim`] is its classic 64-stream `u64` instance;
//!   [`crate::SimdLaneSim`] erases the width and scales to 512 streams.

use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::{CapacitanceMap, EnergyReport, PowerConfig};
use crate::simd::LaneWord;
use std::sync::Arc;

/// Number of cycle (or stream) slots packed into one `u64` lane word.
pub const LANES: usize = 64;

/// Bit-planes of the bit-sliced per-lane toggle counters in
/// [`MultiLaneSim`]: plane `k` holds bit `k` of every lane's running
/// count, so counts up to `2^TOGGLE_PLANES - 1` live entirely in word
/// ops; wraps past the top plane spill into a per-lane overflow array.
/// Eight planes keep a wrap (a whole cache line of spill traffic) down
/// to once per 256 toggles of a net, while the plane-major carry pass
/// concentrates its traffic in the bottom row or two.
const TOGGLE_PLANES: usize = 8;

/// A `u64` lane word with every slot holding `v`.
#[inline]
pub fn broadcast(v: bool) -> u64 {
    if v {
        u64::MAX
    } else {
        0
    }
}

/// Packs up to 64 slot values into a lane word (`bits[i]` → bit `i`).
///
/// # Panics
///
/// Panics if more than [`LANES`] values are given.
pub fn pack_lanes(bits: &[bool]) -> u64 {
    assert!(bits.len() <= LANES, "at most {LANES} lanes fit in a word");
    bits.iter()
        .enumerate()
        .fold(0u64, |w, (i, &b)| w | ((b as u64) << i))
}

/// Unpacks the low `n` slots of a lane word (inverse of [`pack_lanes`]).
///
/// # Panics
///
/// Panics if `n` exceeds [`LANES`].
pub fn unpack_lanes(word: u64, n: usize) -> Vec<bool> {
    assert!(n <= LANES, "a word holds at most {LANES} lanes");
    (0..n).map(|i| (word >> i) & 1 == 1).collect()
}

/// The toggle word of a *cycle-packed* lane: bit `j` is set iff the
/// net's value at cycle `j` differs from its value at cycle `j - 1`,
/// where cycle `-1` is the committed value `prev` from before the
/// window. `popcount(toggle_word(..) & prefix_mask)` is exactly the
/// scalar kernels' toggle count over that prefix.
/// ([`crate::simd::toggle_word_w`] is the width-generic form.)
#[inline]
pub fn toggle_word(lane: u64, prev: bool) -> u64 {
    lane ^ ((lane << 1) | prev as u64)
}

/// One compiled combinational word operation: evaluate `kind` over the
/// argument slice and store the result lane at `out`.
#[derive(Debug, Clone, Copy)]
struct CompiledOp {
    kind: GateKind,
    out: u32,
    args_start: u32,
    args_len: u32,
}

/// A maximal consecutive range of compiled ops sharing one
/// `(kind, args_len)` shape, so the evaluator can hoist the kind
/// dispatch out of the per-op loop and run a tight specialized sweep
/// over each run.
#[derive(Debug, Clone, Copy)]
struct EvalRun {
    kind: GateKind,
    args_len: u32,
    start: u32,
    end: u32,
}

/// The netlist's combinational logic flattened to a branch-light op
/// stream in topological order — one pass is one full settle.
#[derive(Debug, Clone)]
struct CompiledOps {
    ops: Vec<CompiledOp>,
    args: Vec<u32>,
    runs: Vec<EvalRun>,
}

/// Sort rank of a gate kind within one depth level (any fixed order
/// works; the point is grouping equal kinds together).
fn kind_rank(kind: GateKind) -> u8 {
    match kind {
        GateKind::Buf => 0,
        GateKind::Not => 1,
        GateKind::And => 2,
        GateKind::Or => 3,
        GateKind::Nand => 4,
        GateKind::Nor => 5,
        GateKind::Xor => 6,
        GateKind::Xnor => 7,
        GateKind::Mux => 8,
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff(_) => 9,
    }
}

fn compile(netlist: &Netlist, order: &[NetId]) -> CompiledOps {
    // Logic depth per net: non-combinational sources stay 0, each gate
    // sits one past its deepest input. Evaluating in ascending depth is
    // topologically valid (a gate only reads strictly shallower nets),
    // and inside a level no gate depends on another — so a stable sort
    // by (depth, kind) is free to group equal kinds into long runs,
    // keeping the evaluator's per-op kind dispatch predicted instead of
    // mispredicting on every netlist-order kind change.
    let mut depth = vec![0u32; netlist.gate_count()];
    for &id in order {
        let g = &netlist.gates()[id.0 as usize];
        let deepest = g.inputs.iter().map(|i| depth[i.0 as usize]).max();
        depth[id.0 as usize] = deepest.unwrap_or(0) + 1;
    }
    let mut sorted: Vec<NetId> = order.to_vec();
    sorted.sort_by_key(|id| {
        let g = &netlist.gates()[id.0 as usize];
        (depth[id.0 as usize], kind_rank(g.kind), g.inputs.len())
    });
    let mut ops: Vec<CompiledOp> = Vec::with_capacity(sorted.len());
    let mut args = Vec::new();
    let mut runs: Vec<EvalRun> = Vec::new();
    for &id in &sorted {
        let g = &netlist.gates()[id.0 as usize];
        let start = args.len() as u32;
        args.extend(g.inputs.iter().map(|n| n.0));
        let len = g.inputs.len() as u32;
        match runs.last_mut() {
            Some(r) if r.kind == g.kind && r.args_len == len => r.end += 1,
            _ => runs.push(EvalRun {
                kind: g.kind,
                args_len: len,
                start: ops.len() as u32,
                end: ops.len() as u32 + 1,
            }),
        }
        ops.push(CompiledOp {
            kind: g.kind,
            out: id.0,
            args_start: start,
            args_len: len,
        });
    }
    CompiledOps { ops, args, runs }
}

/// Evaluates one compiled op over lane words of any width.
#[inline]
fn eval_op<W: LaneWord>(op: &CompiledOp, args: &[u32], values: &[W]) -> W {
    let ins = &args[op.args_start as usize..(op.args_start + op.args_len) as usize];
    match op.kind {
        GateKind::Buf => values[ins[0] as usize],
        GateKind::Not => values[ins[0] as usize].not(),
        GateKind::And => ins
            .iter()
            .fold(W::ONES, |a, &i| a.and(values[i as usize])),
        GateKind::Or => ins.iter().fold(W::ZERO, |a, &i| a.or(values[i as usize])),
        GateKind::Nand => ins
            .iter()
            .fold(W::ONES, |a, &i| a.and(values[i as usize]))
            .not(),
        GateKind::Nor => ins
            .iter()
            .fold(W::ZERO, |a, &i| a.or(values[i as usize]))
            .not(),
        GateKind::Xor => ins.iter().fold(W::ZERO, |a, &i| a.xor(values[i as usize])),
        GateKind::Xnor => ins
            .iter()
            .fold(W::ZERO, |a, &i| a.xor(values[i as usize]))
            .not(),
        GateKind::Mux => {
            let s = values[ins[0] as usize];
            s.and(values[ins[1] as usize])
                .or(s.not().and(values[ins[2] as usize]))
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff(_) => {
            unreachable!("not a combinational gate")
        }
    }
}

/// One specialized evaluation sweep over a run of same-shape ops: for
/// each op, `eval` computes the settled word, and the toggle against
/// the overwritten previous value is recorded branchlessly into the
/// mask/scratch pair. Monomorphized per gate shape so the kind dispatch
/// lives outside the loop.
#[inline]
fn sweep_run<W: LaneWord>(
    ops: &[CompiledOp],
    values: &mut [W],
    lane_mask: W,
    toggled_mask: &mut [u64],
    toggle_scratch: &mut [W],
    eval: impl Fn(&CompiledOp, &[W]) -> W,
) {
    for op in ops {
        let out = op.out as usize;
        let v = eval(op, values);
        let t = v.xor(values[out]).and(lane_mask);
        values[out] = v;
        toggled_mask[out / 64] |= (!t.is_zero() as u64) << (out % 64);
        toggle_scratch[out] = t;
    }
}

/// A lockstep simulator of *independent* stimulus streams over one
/// shared netlist — one stream per lane of the lane word `W`, so a
/// `u64` word carries 64 streams and a [`crate::simd::W256`] word 256.
///
/// Every cycle runs one full compiled word pass (oblivious-style) and a
/// full before/after diff, so the per-lane energy accumulation order —
/// clock tree, then toggled nets ascending by net id, then DFF edges
/// ascending by gate order — is the scalar kernels' order exactly, and
/// each lane's [`EnergyReport`] is bit-identical to a scalar run.
///
/// # Examples
///
/// ```
/// use gatesim::{GateKind, LaneSim, Netlist, PowerConfig};
/// use std::sync::Arc;
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let x = n.gate(GateKind::Not, vec![a]);
/// n.mark_output("x", x);
/// let mut sim = LaneSim::new(Arc::new(n), PowerConfig::date2000_defaults(), 2)?;
/// sim.set_input(0, a, true); // stream 0 raises `a`, stream 1 holds low
/// sim.step();
/// assert!(!sim.value(x, 0) && sim.value(x, 1));
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiLaneSim<W: LaneWord> {
    netlist: Arc<Netlist>,
    caps: CapacitanceMap,
    lanes: usize,
    lane_mask: W,
    compiled: CompiledOps,
    input_ids: Vec<u32>,
    /// One bit per net: is it a primary input? `set_input` validates
    /// against this instead of indexing the full gate array — the check
    /// runs per (lane, change) in the hot driving loop, and the bitmap
    /// stays cache-resident where the gate records do not.
    input_mask: Vec<u64>,
    /// `(gate index, D-input net)` per DFF, ascending by gate index.
    dffs: Vec<(u32, u32)>,
    values: Vec<W>,
    inputs: Vec<W>,
    /// One bit per net: toggled this step. The input-apply and eval
    /// sweeps record toggles here as they overwrite each net's settled
    /// value (the old word is already in hand at that moment), and the
    /// charge pass drains set bits in ascending net order — the scalar
    /// kernels' float accumulation order — without a separate
    /// whole-array `prev` diff scan.
    toggled_mask: Vec<u64>,
    /// The toggle word recorded for each net set in `toggled_mask`
    /// (stale entries for unset nets are never read).
    toggle_scratch: Vec<W>,
    edge_sample: Vec<W>,
    /// Per-step, per-lane energy scratch, padded to the full `W::BITS`
    /// slots so the charge loop can slice one whole 64-slot chunk per
    /// constituent word (lanes past `lanes` are never set in a masked
    /// toggle word and stay at the clock-fill value).
    energy: Vec<f64>,
    /// Switch energy per net, precomputed once from the capacitance
    /// map — the charge drain reads it per toggled net.
    switch_e: Vec<f64>,
    /// Bit-sliced per-lane toggle counters, plane-major: plane `k` of
    /// net `i` lives at `k * nets + i`, so the end-of-step carry pass
    /// sweeps one dense row per plane (and plane `k`'s row is touched
    /// only by nets still carrying after `k` halvings — the hot
    /// footprint is ~2 rows, not the whole array). Each lane's count
    /// has bit `k` in plane `k`; a toggle is a ripple-carry increment
    /// in word ops rather than a per-lane read-modify-write over a
    /// `nets × lanes` array.
    toggle_planes: Vec<W>,
    /// Overflow spill: whole-plane wraps land here as `2^TOGGLE_PLANES`
    /// per-lane increments (touched once every `2^TOGGLE_PLANES`
    /// toggles of a net, so its cache traffic is negligible).
    toggle_wraps: Vec<u64>,
    reports: Vec<EnergyReport>,
    cycle: u64,
    gate_evals: u64,
    gate_eval_slots: u64,
}

/// The classic 64-stream lockstep simulator: [`MultiLaneSim`] over a
/// `u64` lane word.
pub type LaneSim = MultiLaneSim<u64>;

impl<W: LaneWord> MultiLaneSim<W> {
    /// Builds a lane simulator for `lanes` independent streams
    /// (`1..=W::BITS`), validating the netlist. All streams start from
    /// the same reset state a scalar [`crate::Simulator`] starts from.
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is
    /// malformed.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds the word's lane count.
    pub fn new(
        netlist: Arc<Netlist>,
        config: PowerConfig,
        lanes: usize,
    ) -> Result<Self, ValidateNetlistError> {
        assert!(
            (1..=W::BITS as usize).contains(&lanes),
            "1..={} lanes per word",
            W::BITS
        );
        let order = netlist.validate()?;
        let caps = CapacitanceMap::new(&netlist, &config);
        let compiled = compile(&netlist, &order);
        let n = netlist.gate_count();
        let switch_e: Vec<f64> = (0..n)
            .map(|i| config.switch_energy_j(caps.cap_ff(i as u32)))
            .collect();
        let mut input_ids = Vec::new();
        let mut input_mask = vec![0u64; n.div_ceil(64)];
        let mut dffs = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Input => {
                    input_ids.push(i as u32);
                    input_mask[i / 64] |= 1u64 << (i % 64);
                }
                GateKind::Dff(_) => dffs.push((i as u32, g.inputs[0].0)),
                _ => {}
            }
        }
        let mut sim = MultiLaneSim {
            netlist,
            caps,
            lanes,
            lane_mask: W::low_mask(lanes as u32),
            compiled,
            input_ids,
            input_mask,
            dffs,
            values: vec![W::ZERO; n],
            inputs: vec![W::ZERO; n],
            toggled_mask: vec![0; n.div_ceil(64)],
            toggle_scratch: vec![W::ZERO; n],
            edge_sample: Vec::new(),
            energy: vec![0.0; W::BITS as usize],
            switch_e,
            toggle_planes: if W::BITS == 64 {
                Vec::new() // narrow charge path counts directly in `toggle_wraps`
            } else {
                vec![W::ZERO; n * TOGGLE_PLANES]
            },
            toggle_wraps: vec![0; n * lanes],
            reports: vec![EnergyReport::default(); lanes],
            cycle: 0,
            gate_evals: 0,
            gate_eval_slots: 0,
        };
        // Reset settle, mirroring the scalar construction exactly: DFFs
        // at their init values, one combinational pass *before* the
        // constants are forced (the seed's constant-init quirk — gates
        // downstream of a `Const1` hold stale values until the first
        // cycle charges them as toggles).
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            if let GateKind::Dff(init) = g.kind {
                sim.values[i] = W::splat(init);
            }
        }
        for op in &sim.compiled.ops {
            sim.values[op.out as usize] = eval_op(op, &sim.compiled.args, &sim.values);
        }
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => sim.values[i] = W::ZERO,
                GateKind::Const1 => sim.values[i] = W::ONES,
                _ => {}
            }
        }
        Ok(sim)
    }

    /// The shared netlist this simulator evaluates.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// Number of independent streams in flight.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Forces a primary input for one stream from the next cycle on.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an `Input` gate or `lane` is out of range.
    pub fn set_input(&mut self, lane: usize, net: NetId, value: bool) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let i = net.0 as usize;
        assert!(
            self.input_mask[i / 64] >> (i % 64) & 1 == 1,
            "{net} is not a primary input"
        );
        let w = &mut self.inputs[i];
        *w = w.with_bit(lane as u32, value);
    }

    /// The settled value of a net in one stream.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn value(&self, net: NetId, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.values[net.0 as usize].bit(lane as u32)
    }

    /// The settled lane word of a net (lane `ℓ` is stream `ℓ`).
    pub fn value_word(&self, net: NetId) -> W {
        self.values[net.0 as usize].and(self.lane_mask)
    }

    /// Total toggle count of a net in one stream so far.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn toggle_count(&self, net: NetId, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let mut count = self.toggle_wraps[net.0 as usize * self.lanes + lane];
        if W::BITS != 64 {
            let n = self.netlist.gate_count();
            for k in 0..TOGGLE_PLANES {
                count +=
                    (self.toggle_planes[k * n + net.0 as usize].bit(lane as u32) as u64) << k;
            }
        }
        count
    }

    /// One stream's accumulated cycle-by-cycle energy report.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn report(&self, lane: usize) -> &EnergyReport {
        &self.reports[lane]
    }

    /// Cycles simulated so far (all streams advance together).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Combinational *word* evaluations so far — each covers every lane,
    /// so the per-stream-cycle equivalent is `gate_evals × lanes`
    /// (which is exactly [`Self::gate_eval_slots`]).
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Committed `(gate, stream, cycle)` evaluation slots:
    /// `gate_evals × lanes`, since every word evaluation settles one
    /// cycle of every stream. Comparable across kernels — a scalar run
    /// of the same streams would report this many `gate_eval_slots`
    /// under the oblivious kernel.
    pub fn gate_eval_slots(&self) -> u64 {
        self.gate_eval_slots
    }

    /// Net value changes observed so far, summed over all streams
    /// (directly comparable to the sum of scalar runs' `gate_events`).
    ///
    /// Derived from the toggle counters on demand — the same integer
    /// total an incremental tally would hold, without spending a
    /// (software, on baseline x86-64) popcount per charged net in the
    /// hot loop. Costs a pass over the counter arrays, so query it at
    /// batch granularity rather than per cycle.
    pub fn gate_events(&self) -> u64 {
        // Wrap spills are stored pre-scaled (`+= 1 << TOGGLE_PLANES`
        // per spill; `+= 1` per toggle at `u64` width), so the raw sum
        // is already in toggle units.
        let mut total: u64 = self.toggle_wraps.iter().sum();
        if W::BITS != 64 {
            let n = self.netlist.gate_count();
            for k in 0..TOGGLE_PLANES {
                let bits: u64 = self.toggle_planes[k * n..(k + 1) * n]
                    .iter()
                    .map(|p| p.count_ones() as u64)
                    .sum();
                total += bits << k;
            }
        }
        total
    }

    /// Simulates one clock cycle of every stream in lockstep.
    pub fn step(&mut self) {
        // 1. Apply inputs, diffing against the old settled values.
        for k in 0..self.input_ids.len() {
            let i = self.input_ids[k] as usize;
            let v = self.inputs[i];
            let t = v.xor(self.values[i]).and(self.lane_mask);
            self.values[i] = v;
            if !t.is_zero() {
                self.toggled_mask[i / 64] |= 1u64 << (i % 64);
                self.toggle_scratch[i] = t;
            }
        }
        // 2. One word pass settles all streams at once. Each net is
        //    written by exactly one op, so the value overwritten here
        //    *is* the previous settled state — toggles are recorded in
        //    the same pass, sparing a separate whole-array diff scan.
        //    The toggle recording is branchless: whether a net toggles
        //    is close to a coin flip at wide lane counts, so a
        //    conditional store would mispredict constantly; the
        //    unconditional scratch store is a cheap streaming write.
        //    Runs of one (kind, arity) shape get a tight sweep with the
        //    kind dispatch hoisted out of the per-op loop.
        for run in &self.compiled.runs {
            let ops = &self.compiled.ops[run.start as usize..run.end as usize];
            let args = &self.compiled.args;
            match (run.kind, run.args_len) {
                (GateKind::And, 2) => sweep_run(
                    ops,
                    &mut self.values,
                    self.lane_mask,
                    &mut self.toggled_mask,
                    &mut self.toggle_scratch,
                    |op, values| {
                        values[args[op.args_start as usize] as usize]
                            .and(values[args[op.args_start as usize + 1] as usize])
                    },
                ),
                (GateKind::Or, 2) => sweep_run(
                    ops,
                    &mut self.values,
                    self.lane_mask,
                    &mut self.toggled_mask,
                    &mut self.toggle_scratch,
                    |op, values| {
                        values[args[op.args_start as usize] as usize]
                            .or(values[args[op.args_start as usize + 1] as usize])
                    },
                ),
                (GateKind::Xor, 2) => sweep_run(
                    ops,
                    &mut self.values,
                    self.lane_mask,
                    &mut self.toggled_mask,
                    &mut self.toggle_scratch,
                    |op, values| {
                        values[args[op.args_start as usize] as usize]
                            .xor(values[args[op.args_start as usize + 1] as usize])
                    },
                ),
                (GateKind::Mux, _) => sweep_run(
                    ops,
                    &mut self.values,
                    self.lane_mask,
                    &mut self.toggled_mask,
                    &mut self.toggle_scratch,
                    |op, values| {
                        let s = values[args[op.args_start as usize] as usize];
                        let t1 = values[args[op.args_start as usize + 1] as usize];
                        let t0 = values[args[op.args_start as usize + 2] as usize];
                        // s ? t1 : t0 in three word ops instead of five.
                        t0.xor(s.and(t0.xor(t1)))
                    },
                ),
                _ => sweep_run(
                    ops,
                    &mut self.values,
                    self.lane_mask,
                    &mut self.toggled_mask,
                    &mut self.toggle_scratch,
                    |op, values| eval_op(op, args, values),
                ),
            }
        }
        self.gate_evals += self.compiled.ops.len() as u64;
        self.gate_eval_slots += self.compiled.ops.len() as u64 * self.lanes as u64;
        // 3. Per-lane energy for the recorded toggles, drained in
        //    ascending net id — the scalar kernels' float accumulation
        //    order, regardless of which pass recorded each toggle. The
        //    mask and scratch words are left in place: the counter pass
        //    below consumes them after the clock edge adds its own.
        let clock = self.caps.clock_energy_per_cycle_j();
        for e in &mut self.energy {
            *e = clock;
        }
        for wi in 0..self.toggled_mask.len() {
            let mut m = self.toggled_mask[wi];
            while m != 0 {
                let i = wi * 64 + m.trailing_zeros() as usize;
                m &= m.wrapping_sub(1);
                let se = self.switch_e[i];
                self.charge_energy(self.toggle_scratch[i], se);
            }
        }
        // 4. Clock edge: all D words sampled simultaneously, then
        //    committed in ascending gate order, charging each edge as
        //    it commits and recording the toggle for the counter pass.
        self.edge_sample.clear();
        for k in 0..self.dffs.len() {
            let d = self.dffs[k].1;
            self.edge_sample.push(self.values[d as usize]);
        }
        for k in 0..self.dffs.len() {
            let q = self.dffs[k].0 as usize;
            let v = self.edge_sample[k];
            let t = v.xor(self.values[q]).and(self.lane_mask);
            if !t.is_zero() {
                let se = self.switch_e[q];
                self.charge_energy(t, se);
                self.toggled_mask[q / 64] |= 1u64 << (q % 64);
                self.toggle_scratch[q] = t;
            }
            self.values[q] = v;
        }
        // 5. One unified toggle-counter pass over everything this step
        //    recorded (inputs, gates, DFF edges); clears the mask.
        self.bump_counters();
        for (l, r) in self.reports.iter_mut().enumerate() {
            r.per_cycle_j.push(self.energy[l]);
        }
        self.cycle += 1;
    }

    /// Runs `n` lockstep cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Adds switch energy `se` to every lane set in toggle word `t`.
    ///
    /// One 64-slot chunk per constituent word: the chunk bound is
    /// checked once per word and `tz & 63` keeps the per-lane indexing
    /// provably in range, so the inner loop is pure load/add/store.
    #[inline]
    fn charge_energy(&mut self, t: W, se: f64) {
        let energy = &mut self.energy;
        t.for_each_word(|k, mut w| {
            if w == 0 {
                return;
            }
            let chunk = &mut energy[k * 64..k * 64 + 64];
            while w != 0 {
                chunk[(w.trailing_zeros() & 63) as usize] += se;
                w &= w.wrapping_sub(1);
            }
        });
    }

    /// Drains `toggled_mask`/`toggle_scratch` into the per-lane toggle
    /// counters and clears the mask.
    ///
    /// Wide words propagate the increment one *plane at a time* across
    /// every recorded net: plane `k`'s dense row absorbs all of this
    /// step's carries at once, and the live set roughly halves each
    /// plane, so the sweep stays inside the bottom row or two instead
    /// of striding a `TOGGLE_PLANES`-word block per net across the
    /// whole array (which overflows L2 and eats a cache miss per
    /// toggled net). The scratch words are consumed as carry storage —
    /// legal because every masked net's scratch is rewritten before the
    /// next step reads it.
    fn bump_counters(&mut self) {
        let lanes = self.lanes;
        if W::BITS == 64 {
            // Narrow words see few set lanes per step, so a direct
            // per-lane bump (into the overflow array, which doubles as
            // the whole counter at this width) beats plane slicing.
            for wi in 0..self.toggled_mask.len() {
                let mut m = self.toggled_mask[wi];
                self.toggled_mask[wi] = 0;
                while m != 0 {
                    let i = wi * 64 + m.trailing_zeros() as usize;
                    m &= m.wrapping_sub(1);
                    let t = self.toggle_scratch[i];
                    let wraps = &mut self.toggle_wraps;
                    t.for_each_lane(|l| {
                        wraps[i * lanes + l as usize] += 1;
                    });
                }
            }
            return;
        }
        let n = self.netlist.gate_count();
        for k in 0..TOGGLE_PLANES {
            let row = &mut self.toggle_planes[k * n..(k + 1) * n];
            let mut live = 0u64;
            for wi in 0..self.toggled_mask.len() {
                let mut m = self.toggled_mask[wi];
                if m == 0 {
                    continue;
                }
                let mut still = 0u64;
                while m != 0 {
                    let b = m.trailing_zeros();
                    let i = wi * 64 + b as usize;
                    m &= m.wrapping_sub(1);
                    let c = self.toggle_scratch[i];
                    let p = row[i];
                    row[i] = p.xor(c);
                    let carry = p.and(c);
                    self.toggle_scratch[i] = carry;
                    still |= ((!carry.is_zero()) as u64) << b;
                }
                self.toggled_mask[wi] = still;
                live |= still;
            }
            if live == 0 {
                return; // every carry died; the mask is already clear
            }
        }
        // Whole-plane wrap: spill `2^TOGGLE_PLANES` per-lane increments
        // (reached once every 256 toggles of a net, so the scattered
        // traffic into the wide overflow array is negligible).
        for wi in 0..self.toggled_mask.len() {
            let mut m = self.toggled_mask[wi];
            self.toggled_mask[wi] = 0;
            while m != 0 {
                let i = wi * 64 + m.trailing_zeros() as usize;
                m &= m.wrapping_sub(1);
                let t = self.toggle_scratch[i];
                let wraps = &mut self.toggle_wraps;
                t.for_each_lane(|l| {
                    wraps[i * lanes + l as usize] += 1 << TOGGLE_PLANES;
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::W256;

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = [true, false, true, true, false];
        let w = pack_lanes(&bits);
        assert_eq!(w, 0b01101);
        assert_eq!(unpack_lanes(w, bits.len()), bits);
    }

    #[test]
    fn broadcast_is_all_or_nothing() {
        assert_eq!(broadcast(false), 0);
        assert_eq!(broadcast(true), u64::MAX);
    }

    #[test]
    fn toggle_word_counts_transitions() {
        // prev=0, lane cycles 0..5: 1,1,0,1,0 → toggles at 0, 2, 3, 4.
        let lane = pack_lanes(&[true, true, false, true, false]);
        let t = toggle_word(lane, false) & 0b11111;
        assert_eq!(t, 0b11101);
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn lane_streams_are_independent() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        n.mark_output("x", x);
        let mut sim =
            LaneSim::new(Arc::new(n), PowerConfig::date2000_defaults(), 3).expect("valid");
        sim.set_input(1, a, true);
        sim.step();
        assert!(sim.value(x, 0));
        assert!(!sim.value(x, 1));
        assert!(sim.value(x, 2));
        assert_eq!(sim.toggle_count(a, 1), 1);
        assert_eq!(sim.toggle_count(a, 0), 0);
        assert!(sim.report(1).total_j() > sim.report(0).total_j());
    }

    #[test]
    fn wide_lane_streams_match_the_u64_instance_bitwise() {
        // The same 3 streams through the u64 word and a W256 word must
        // produce identical values, toggles, and energy floats.
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.gate(GateKind::Xor, vec![a, b]);
        let d = n.dff(x, false);
        let y = n.gate(GateKind::And, vec![x, d]);
        n.mark_output("y", y);
        let shared = Arc::new(n);
        let cfg = PowerConfig::date2000_defaults();
        let mut narrow =
            LaneSim::new(Arc::clone(&shared), cfg.clone(), 3).expect("valid");
        let mut wide =
            MultiLaneSim::<W256>::new(Arc::clone(&shared), cfg, 200).expect("valid");
        for step in 0u64..20 {
            for (l, net) in [(0usize, a), (1, b), (2, a)] {
                let v = (step.wrapping_mul(l as u64 + 3) >> 1) & 1 == 1;
                narrow.set_input(l, net, v);
                wide.set_input(l, net, v);
            }
            narrow.step();
            wide.step();
        }
        for l in 0..3 {
            assert_eq!(narrow.report(l).per_cycle_j, wide.report(l).per_cycle_j);
            for i in [a, b, d, x, y] {
                assert_eq!(narrow.toggle_count(i, l), wide.toggle_count(i, l));
                assert_eq!(narrow.value(i, l), wide.value(i, l));
            }
        }
        assert_eq!(narrow.gate_evals(), wide.gate_evals());
        assert_eq!(narrow.gate_eval_slots(), narrow.gate_evals() * 3);
        assert_eq!(wide.gate_eval_slots(), wide.gate_evals() * 200);
    }
}
