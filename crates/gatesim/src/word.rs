//! Word-level (bit-parallel) simulation support: lane packing utilities
//! and a 64-stream lockstep simulator.
//!
//! The software analogue of hardware-accelerated power estimation
//! (Coburn/Ravi/Raghunathan): a net's value over 64 cycle slots — or
//! across 64 independent stimulus streams — is one `u64` *lane word*,
//! and every gate evaluation is a single word operation (`&`, `|`, `^`,
//! `!`, and `(s & a) | (!s & b)` for a mux). Toggle counting becomes a
//! popcount over a *toggle word* ([`toggle_word`]).
//!
//! Two consumers build on these primitives:
//!
//! * [`crate::SimKernel::WordParallel`] packs up to 64 *consecutive
//!   cycles of one stream* into each lane word, with a speculate /
//!   commit-prefix / replay seam at DFF boundaries (see
//!   `gatesim::sim`).
//! * [`LaneSim`] (here) packs *64 independent streams* into each lane
//!   word and steps them in lockstep — sequential feedback never limits
//!   the batch because the lanes share nothing, which is what makes
//!   word-level evaluation pay off on state-dense netlists. Each lane
//!   is bit-identical to a scalar [`crate::Simulator`] run of the same
//!   stream, including the per-cycle float accumulation order and the
//!   seed's constant-init quirk.

use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::{CapacitanceMap, EnergyReport, PowerConfig};
use std::sync::Arc;

/// Number of cycle (or stream) slots packed into one lane word.
pub const LANES: usize = 64;

/// A lane word with every slot holding `v`.
#[inline]
pub fn broadcast(v: bool) -> u64 {
    if v {
        u64::MAX
    } else {
        0
    }
}

/// Packs up to 64 slot values into a lane word (`bits[i]` → bit `i`).
///
/// # Panics
///
/// Panics if more than [`LANES`] values are given.
pub fn pack_lanes(bits: &[bool]) -> u64 {
    assert!(bits.len() <= LANES, "at most {LANES} lanes fit in a word");
    bits.iter()
        .enumerate()
        .fold(0u64, |w, (i, &b)| w | ((b as u64) << i))
}

/// Unpacks the low `n` slots of a lane word (inverse of [`pack_lanes`]).
///
/// # Panics
///
/// Panics if `n` exceeds [`LANES`].
pub fn unpack_lanes(word: u64, n: usize) -> Vec<bool> {
    assert!(n <= LANES, "a word holds at most {LANES} lanes");
    (0..n).map(|i| (word >> i) & 1 == 1).collect()
}

/// The toggle word of a *cycle-packed* lane: bit `j` is set iff the
/// net's value at cycle `j` differs from its value at cycle `j - 1`,
/// where cycle `-1` is the committed value `prev` from before the
/// window. `popcount(toggle_word(..) & prefix_mask)` is exactly the
/// scalar kernels' toggle count over that prefix.
#[inline]
pub fn toggle_word(lane: u64, prev: bool) -> u64 {
    lane ^ ((lane << 1) | prev as u64)
}

/// One compiled combinational word operation: evaluate `kind` over the
/// argument slice and store the result lane at `out`.
#[derive(Debug, Clone, Copy)]
struct CompiledOp {
    kind: GateKind,
    out: u32,
    args_start: u32,
    args_len: u32,
}

/// The netlist's combinational logic flattened to a branch-light op
/// stream in topological order — one pass is one full settle.
#[derive(Debug, Clone)]
struct CompiledOps {
    ops: Vec<CompiledOp>,
    args: Vec<u32>,
}

fn compile(netlist: &Netlist, order: &[NetId]) -> CompiledOps {
    let mut ops = Vec::with_capacity(order.len());
    let mut args = Vec::new();
    for &id in order {
        let g = &netlist.gates()[id.0 as usize];
        let start = args.len() as u32;
        args.extend(g.inputs.iter().map(|n| n.0));
        ops.push(CompiledOp {
            kind: g.kind,
            out: id.0,
            args_start: start,
            args_len: g.inputs.len() as u32,
        });
    }
    CompiledOps { ops, args }
}

/// Evaluates one compiled op over lane words.
#[inline]
fn eval_op(op: &CompiledOp, args: &[u32], values: &[u64]) -> u64 {
    let ins = &args[op.args_start as usize..(op.args_start + op.args_len) as usize];
    match op.kind {
        GateKind::Buf => values[ins[0] as usize],
        GateKind::Not => !values[ins[0] as usize],
        GateKind::And => ins.iter().fold(u64::MAX, |a, &i| a & values[i as usize]),
        GateKind::Or => ins.iter().fold(0u64, |a, &i| a | values[i as usize]),
        GateKind::Nand => !ins.iter().fold(u64::MAX, |a, &i| a & values[i as usize]),
        GateKind::Nor => !ins.iter().fold(0u64, |a, &i| a | values[i as usize]),
        GateKind::Xor => ins.iter().fold(0u64, |a, &i| a ^ values[i as usize]),
        GateKind::Xnor => !ins.iter().fold(0u64, |a, &i| a ^ values[i as usize]),
        GateKind::Mux => {
            let s = values[ins[0] as usize];
            (s & values[ins[1] as usize]) | (!s & values[ins[2] as usize])
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff(_) => {
            unreachable!("not a combinational gate")
        }
    }
}

/// A lockstep simulator of up to 64 *independent* stimulus streams over
/// one shared netlist: lane `ℓ` of every net word is stream `ℓ`'s value.
///
/// Every cycle runs one full compiled word pass (oblivious-style) and a
/// full before/after diff, so the per-lane energy accumulation order —
/// clock tree, then toggled nets ascending by net id, then DFF edges
/// ascending by gate order — is the scalar kernels' order exactly, and
/// each lane's [`EnergyReport`] is bit-identical to a scalar run.
///
/// # Examples
///
/// ```
/// use gatesim::{GateKind, LaneSim, Netlist, PowerConfig};
/// use std::sync::Arc;
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let x = n.gate(GateKind::Not, vec![a]);
/// n.mark_output("x", x);
/// let mut sim = LaneSim::new(Arc::new(n), PowerConfig::date2000_defaults(), 2)?;
/// sim.set_input(0, a, true); // stream 0 raises `a`, stream 1 holds low
/// sim.step();
/// assert!(!sim.value(x, 0) && sim.value(x, 1));
/// # Ok::<(), gatesim::ValidateNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneSim {
    netlist: Arc<Netlist>,
    caps: CapacitanceMap,
    config: PowerConfig,
    lanes: usize,
    lane_mask: u64,
    compiled: CompiledOps,
    input_ids: Vec<u32>,
    /// `(gate index, D-input net)` per DFF, ascending by gate index.
    dffs: Vec<(u32, u32)>,
    values: Vec<u64>,
    inputs: Vec<u64>,
    prev: Vec<u64>,
    edge_sample: Vec<u64>,
    energy: Vec<f64>,
    toggles: Vec<u64>,
    reports: Vec<EnergyReport>,
    cycle: u64,
    gate_evals: u64,
    gate_events: u64,
}

impl LaneSim {
    /// Builds a lane simulator for `lanes` independent streams
    /// (1..=64), validating the netlist. All streams start from the
    /// same reset state a scalar [`crate::Simulator`] starts from.
    ///
    /// # Errors
    ///
    /// Returns the netlist's [`ValidateNetlistError`] if it is
    /// malformed.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`LANES`].
    pub fn new(
        netlist: Arc<Netlist>,
        config: PowerConfig,
        lanes: usize,
    ) -> Result<Self, ValidateNetlistError> {
        assert!((1..=LANES).contains(&lanes), "1..=64 lanes per word");
        let order = netlist.validate()?;
        let caps = CapacitanceMap::new(&netlist, &config);
        let compiled = compile(&netlist, &order);
        let n = netlist.gate_count();
        let mut input_ids = Vec::new();
        let mut dffs = Vec::new();
        for (i, g) in netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Input => input_ids.push(i as u32),
                GateKind::Dff(_) => dffs.push((i as u32, g.inputs[0].0)),
                _ => {}
            }
        }
        let lane_mask = if lanes == LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let mut sim = LaneSim {
            netlist,
            caps,
            config,
            lanes,
            lane_mask,
            compiled,
            input_ids,
            dffs,
            values: vec![0; n],
            inputs: vec![0; n],
            prev: vec![0; n],
            edge_sample: Vec::new(),
            energy: vec![0.0; lanes],
            toggles: vec![0; n * lanes],
            reports: vec![EnergyReport::default(); lanes],
            cycle: 0,
            gate_evals: 0,
            gate_events: 0,
        };
        // Reset settle, mirroring the scalar construction exactly: DFFs
        // at their init values, one combinational pass *before* the
        // constants are forced (the seed's constant-init quirk — gates
        // downstream of a `Const1` hold stale values until the first
        // cycle charges them as toggles).
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            if let GateKind::Dff(init) = g.kind {
                sim.values[i] = broadcast(init);
            }
        }
        for op in &sim.compiled.ops {
            sim.values[op.out as usize] = eval_op(op, &sim.compiled.args, &sim.values);
        }
        for (i, g) in sim.netlist.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => sim.values[i] = 0,
                GateKind::Const1 => sim.values[i] = u64::MAX,
                _ => {}
            }
        }
        Ok(sim)
    }

    /// The shared netlist this simulator evaluates.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.netlist
    }

    /// Number of independent streams in flight.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Forces a primary input for one stream from the next cycle on.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an `Input` gate or `lane` is out of range.
    pub fn set_input(&mut self, lane: usize, net: NetId, value: bool) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert_eq!(
            self.netlist.gates()[net.0 as usize].kind,
            GateKind::Input,
            "{net} is not a primary input"
        );
        let bit = 1u64 << lane;
        if value {
            self.inputs[net.0 as usize] |= bit;
        } else {
            self.inputs[net.0 as usize] &= !bit;
        }
    }

    /// The settled value of a net in one stream.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn value(&self, net: NetId, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.values[net.0 as usize] >> lane) & 1 == 1
    }

    /// The settled lane word of a net (bit `ℓ` is stream `ℓ`).
    pub fn value_word(&self, net: NetId) -> u64 {
        self.values[net.0 as usize] & self.lane_mask
    }

    /// Total toggle count of a net in one stream so far.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn toggle_count(&self, net: NetId, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.toggles[net.0 as usize * self.lanes + lane]
    }

    /// One stream's accumulated cycle-by-cycle energy report.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn report(&self, lane: usize) -> &EnergyReport {
        &self.reports[lane]
    }

    /// Cycles simulated so far (all streams advance together).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Combinational *word* evaluations so far — each covers every lane,
    /// so the per-stream-cycle equivalent is `gate_evals × lanes`.
    pub fn gate_evals(&self) -> u64 {
        self.gate_evals
    }

    /// Net value changes observed so far, summed over all streams
    /// (directly comparable to the sum of scalar runs' `gate_events`).
    pub fn gate_events(&self) -> u64 {
        self.gate_events
    }

    /// Simulates one clock cycle of every stream in lockstep.
    pub fn step(&mut self) {
        self.prev.copy_from_slice(&self.values);
        // 1. Apply inputs.
        for &i in &self.input_ids {
            self.values[i as usize] = self.inputs[i as usize];
        }
        // 2. One word pass settles all streams at once.
        for op in &self.compiled.ops {
            self.values[op.out as usize] = eval_op(op, &self.compiled.args, &self.values);
        }
        self.gate_evals += self.compiled.ops.len() as u64;
        // 3. Per-lane energy from the before/after diff, ascending by
        //    net id — the scalar kernels' float accumulation order.
        let clock = self.caps.clock_energy_per_cycle_j();
        for e in &mut self.energy {
            *e = clock;
        }
        for i in 0..self.values.len() {
            let t = (self.values[i] ^ self.prev[i]) & self.lane_mask;
            if t != 0 {
                let se = self.config.switch_energy_j(self.caps.cap_ff(i as u32));
                self.charge(i, t, se);
            }
        }
        // 4. Clock edge: all D words sampled simultaneously, then
        //    committed in ascending gate order.
        self.edge_sample.clear();
        for k in 0..self.dffs.len() {
            let d = self.dffs[k].1;
            self.edge_sample.push(self.values[d as usize]);
        }
        for k in 0..self.dffs.len() {
            let q = self.dffs[k].0 as usize;
            let v = self.edge_sample[k];
            let t = (v ^ self.values[q]) & self.lane_mask;
            if t != 0 {
                let se = self.config.switch_energy_j(self.caps.cap_ff(q as u32));
                self.charge(q, t, se);
            }
            self.values[q] = v;
        }
        for (l, r) in self.reports.iter_mut().enumerate() {
            r.per_cycle_j.push(self.energy[l]);
        }
        self.cycle += 1;
    }

    /// Runs `n` lockstep cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Adds switch energy `se` to every lane set in toggle word `t` and
    /// bumps that net's per-lane toggle counters.
    #[inline]
    fn charge(&mut self, net: usize, t: u64, se: f64) {
        let mut m = t;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            self.energy[l] += se;
            self.toggles[net * self.lanes + l] += 1;
            m &= m - 1;
        }
        self.gate_events += t.count_ones() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = [true, false, true, true, false];
        let w = pack_lanes(&bits);
        assert_eq!(w, 0b01101);
        assert_eq!(unpack_lanes(w, bits.len()), bits);
    }

    #[test]
    fn broadcast_is_all_or_nothing() {
        assert_eq!(broadcast(false), 0);
        assert_eq!(broadcast(true), u64::MAX);
    }

    #[test]
    fn toggle_word_counts_transitions() {
        // prev=0, lane cycles 0..5: 1,1,0,1,0 → toggles at 0, 2, 3, 4.
        let lane = pack_lanes(&[true, true, false, true, false]);
        let t = toggle_word(lane, false) & 0b11111;
        assert_eq!(t, 0b11101);
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn lane_streams_are_independent() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        n.mark_output("x", x);
        let mut sim =
            LaneSim::new(Arc::new(n), PowerConfig::date2000_defaults(), 3).expect("valid");
        sim.set_input(1, a, true);
        sim.step();
        assert!(sim.value(x, 0));
        assert!(!sim.value(x, 1));
        assert!(sim.value(x, 2));
        assert_eq!(sim.toggle_count(a, 1), 1);
        assert_eq!(sim.toggle_count(a, 0), 0);
        assert!(sim.report(1).total_j() > sim.report(0).total_j());
    }
}
