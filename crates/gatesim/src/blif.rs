//! BLIF-style netlist interchange.
//!
//! The paper's hardware estimator is a modified SIS power simulator, and
//! SIS's native interchange format is BLIF (Berkeley Logic Interchange
//! Format). This module writes and reads a BLIF dialect covering this
//! crate's gate library, so synthesized netlists can be inspected with
//! standard tooling or round-tripped:
//!
//! ```text
//! .model adder
//! .inputs n0 n1
//! .outputs sum
//! .gate xor a=n0 b=n1 O=n2
//! .latch n3 n4 0
//! .end
//! ```
//!
//! Gates are written with the `.gate <kind> a=<in> b=<in> … O=<out>`
//! form; latches use `.latch <input> <output> <init>`.

use crate::netlist::{GateKind, NetId, Netlist};
use std::fmt;

/// Errors from [`from_blif`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBlifError {
    /// A line could not be parsed.
    BadLine(usize),
    /// An unknown gate kind was named.
    UnknownKind(usize, String),
    /// A signal was referenced but never defined.
    UndefinedSignal(String),
    /// A signal was driven twice.
    Redefined(usize, String),
    /// The file is missing `.model` / `.end` structure.
    MissingStructure,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::BadLine(n) => write!(f, "malformed line {n}"),
            ParseBlifError::UnknownKind(n, k) => write!(f, "unknown gate kind `{k}` on line {n}"),
            ParseBlifError::UndefinedSignal(s) => write!(f, "signal `{s}` is never driven"),
            ParseBlifError::Redefined(n, s) => write!(f, "signal `{s}` redefined on line {n}"),
            ParseBlifError::MissingStructure => write!(f, "missing .model/.end structure"),
        }
    }
}

impl std::error::Error for ParseBlifError {}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Input => "input",
        GateKind::Const0 => "const0",
        GateKind::Const1 => "const1",
        GateKind::Buf => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
        GateKind::Mux => "mux",
        GateKind::Dff(_) => "dff",
    }
}

fn kind_from_name(name: &str) -> Option<GateKind> {
    Some(match name {
        "const0" => GateKind::Const0,
        "const1" => GateKind::Const1,
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "mux" => GateKind::Mux,
        _ => return None,
    })
}

/// Renders a netlist as BLIF text under the given model name.
pub fn to_blif(netlist: &Netlist, model: &str) -> String {
    let sig = |n: NetId| format!("n{}", n.0);
    let mut s = format!(".model {model}\n");
    let inputs = netlist.primary_inputs();
    if !inputs.is_empty() {
        s.push_str(".inputs");
        for i in &inputs {
            s.push(' ');
            s.push_str(&sig(*i));
        }
        s.push('\n');
    }
    if !netlist.outputs().is_empty() {
        s.push_str(".outputs");
        for (name, _) in netlist.outputs() {
            s.push(' ');
            s.push_str(name);
        }
        s.push('\n');
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        let out = sig(NetId(i as u32));
        match g.kind {
            GateKind::Input => {}
            GateKind::Dff(init) => {
                s.push_str(&format!(
                    ".latch {} {} {}\n",
                    sig(g.inputs[0]),
                    out,
                    u8::from(init)
                ));
            }
            kind => {
                s.push_str(&format!(".gate {}", kind_name(kind)));
                for (k, inp) in g.inputs.iter().enumerate() {
                    s.push_str(&format!(" {}={}", (b'a' + k as u8) as char, sig(*inp)));
                }
                s.push_str(&format!(" O={out}\n"));
            }
        }
    }
    for (name, net) in netlist.outputs() {
        s.push_str(&format!(".names {} {}\n1 1\n", sig(*net), name));
    }
    s.push_str(".end\n");
    s
}

/// Parses BLIF text produced by [`to_blif`] back into a netlist.
///
/// Signal names are arbitrary identifiers; `.names <in> <out>` buffer
/// stanzas (as emitted for outputs) become output markers.
///
/// # Errors
///
/// Returns a [`ParseBlifError`] describing the first problem found.
pub fn from_blif(text: &str) -> Result<Netlist, ParseBlifError> {
    use std::collections::HashMap;
    struct ProtoGate {
        kind: GateKind,
        inputs: Vec<String>,
        out: String,
    }
    let mut protos: Vec<ProtoGate> = Vec::new();
    let mut input_names: Vec<String> = Vec::new();
    let mut output_markers: Vec<(String, String)> = Vec::new(); // (inner, name)
    let mut saw_model = false;
    let mut saw_end = false;
    let mut pending_names: Option<(String, String, usize)> = None;

    for (ln, raw) in text.lines().enumerate() {
        let n = ln + 1;
        let line = raw.trim();
        if let Some((inner, name, at)) = pending_names.take() {
            if line == "1 1" {
                output_markers.push((inner, name));
                continue;
            }
            return Err(ParseBlifError::BadLine(at));
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next().ok_or(ParseBlifError::BadLine(n))? {
            ".model" => saw_model = true,
            ".end" => saw_end = true,
            ".inputs" => input_names.extend(parts.map(str::to_string)),
            ".outputs" => { /* declared via .names stanzas */ }
            ".latch" => {
                let d = parts.next().ok_or(ParseBlifError::BadLine(n))?;
                let q = parts.next().ok_or(ParseBlifError::BadLine(n))?;
                let init = parts.next().ok_or(ParseBlifError::BadLine(n))?;
                let init = match init {
                    "0" => false,
                    "1" => true,
                    _ => return Err(ParseBlifError::BadLine(n)),
                };
                protos.push(ProtoGate {
                    kind: GateKind::Dff(init),
                    inputs: vec![d.to_string()],
                    out: q.to_string(),
                });
            }
            ".gate" => {
                let kind_s = parts.next().ok_or(ParseBlifError::BadLine(n))?;
                let kind = kind_from_name(kind_s)
                    .ok_or_else(|| ParseBlifError::UnknownKind(n, kind_s.to_string()))?;
                let mut inputs = Vec::new();
                let mut out = None;
                for assign in parts {
                    let (lhs, rhs) =
                        assign.split_once('=').ok_or(ParseBlifError::BadLine(n))?;
                    if lhs == "O" {
                        out = Some(rhs.to_string());
                    } else {
                        inputs.push(rhs.to_string());
                    }
                }
                protos.push(ProtoGate {
                    kind,
                    inputs,
                    out: out.ok_or(ParseBlifError::BadLine(n))?,
                });
            }
            ".names" => {
                let a = parts.next().ok_or(ParseBlifError::BadLine(n))?;
                let b = parts.next().ok_or(ParseBlifError::BadLine(n))?;
                if parts.next().is_some() {
                    return Err(ParseBlifError::BadLine(n));
                }
                pending_names = Some((a.to_string(), b.to_string(), n));
            }
            _ => return Err(ParseBlifError::BadLine(n)),
        }
    }
    if !saw_model || !saw_end {
        return Err(ParseBlifError::MissingStructure);
    }
    // Assign net ids: inputs first, then gates in file order.
    let mut nl = Netlist::new();
    let mut ids: HashMap<String, NetId> = HashMap::new();
    for name in &input_names {
        if ids.contains_key(name) {
            return Err(ParseBlifError::Redefined(0, name.clone()));
        }
        ids.insert(name.clone(), nl.input());
    }
    // Two passes: reserve ids for every gate output (so forward/backward
    // references both resolve), then connect.
    let base = nl.gate_count() as u32;
    for (k, p) in protos.iter().enumerate() {
        let id = NetId(base + k as u32);
        if ids.insert(p.out.clone(), id).is_some() {
            return Err(ParseBlifError::Redefined(0, p.out.clone()));
        }
    }
    for p in &protos {
        let inputs: Vec<NetId> = p
            .inputs
            .iter()
            .map(|s| {
                ids.get(s)
                    .copied()
                    .ok_or_else(|| ParseBlifError::UndefinedSignal(s.clone()))
            })
            .collect::<Result<_, _>>()?;
        nl.gate(p.kind, inputs);
    }
    for (inner, name) in output_markers {
        let id = ids
            .get(&inner)
            .copied()
            .ok_or(ParseBlifError::UndefinedSignal(inner))?;
        nl.mark_output(name, id);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerConfig;
    use crate::sim::Simulator;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let cin = nl.input();
        let (s, c) = crate::bus::full_adder(&mut nl, a, b, cin);
        nl.mark_output("sum", s);
        nl.mark_output("cout", c);
        nl
    }

    #[test]
    fn blif_text_has_expected_structure() {
        let text = to_blif(&full_adder(), "fa");
        assert!(text.starts_with(".model fa\n"));
        assert!(text.contains(".inputs n0 n1 n2"));
        assert!(text.contains(".outputs sum cout"));
        assert!(text.contains(".gate xor"));
        assert!(text.trim_end().ends_with(".end"));
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let orig = full_adder();
        let text = to_blif(&orig, "fa");
        let back = from_blif(&text).expect("parses");
        assert_eq!(back.gate_count(), orig.gate_count());
        // Exhaustive functional equivalence over the 3 inputs.
        let cfg = PowerConfig::date2000_defaults();
        let inputs_o = orig.primary_inputs();
        let inputs_b = back.primary_inputs();
        let so = orig.output("sum").expect("sum");
        let co = orig.output("cout").expect("cout");
        let sb = back.output("sum").expect("sum");
        let cb = back.output("cout").expect("cout");
        let mut sim_o = Simulator::new(&orig, cfg.clone()).expect("valid");
        let mut sim_b = Simulator::new(&back, cfg).expect("valid");
        for v in 0..8u64 {
            sim_o.set_input_bus(&inputs_o, v);
            sim_b.set_input_bus(&inputs_b, v);
            sim_o.step();
            sim_b.step();
            assert_eq!(sim_o.value(so), sim_b.value(sb), "sum at {v:03b}");
            assert_eq!(sim_o.value(co), sim_b.value(cb), "cout at {v:03b}");
        }
    }

    #[test]
    fn roundtrip_preserves_latches() {
        let mut nl = Netlist::new();
        let d = nl.input();
        let q = nl.dff(d, true);
        nl.mark_output("q", q);
        let back = from_blif(&to_blif(&nl, "reg")).expect("parses");
        assert_eq!(back.dff_count(), 1);
        assert!(matches!(
            back.gates().iter().find(|g| g.kind.is_sequential()).map(|g| g.kind),
            Some(GateKind::Dff(true))
        ));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            from_blif("hello"),
            Err(ParseBlifError::BadLine(1))
        ));
        assert!(matches!(
            from_blif(".model x\n.gate frob a=n0 O=n1\n.end"),
            Err(ParseBlifError::UnknownKind(2, _))
        ));
        assert!(matches!(
            from_blif(".gate and a=n0 b=n1 O=n2"),
            Err(ParseBlifError::MissingStructure)
        ));
        assert!(matches!(
            from_blif(".model x\n.gate and a=nope b=nope O=o\n.end"),
            Err(ParseBlifError::UndefinedSignal(_))
        ));
    }

    #[test]
    fn parse_rejects_double_drivers() {
        let text = ".model x\n.inputs a\n.gate not a=a O=y\n.gate buf a=a O=y\n.end";
        assert!(matches!(
            from_blif(text),
            Err(ParseBlifError::Redefined(_, _))
        ));
    }

    #[test]
    fn feedback_through_latch_roundtrips() {
        // Toggle flop: q = dff(not q).
        let mut nl = Netlist::new();
        let inv = nl.gate(GateKind::Not, vec![NetId(1)]);
        let q = nl.dff(inv, false);
        nl.mark_output("q", q);
        let back = from_blif(&to_blif(&nl, "tff")).expect("parses feedback");
        let mut sim = Simulator::new(&back, PowerConfig::date2000_defaults()).expect("valid");
        let qb = back.output("q").expect("q");
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.step();
            seen.push(sim.value(qb));
        }
        assert_eq!(seen, vec![true, false, true, false]);
    }
}
