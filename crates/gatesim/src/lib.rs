//! `gatesim` — gate-level netlists, logic simulation, and
//! switched-capacitance power estimation.
//!
//! This crate is the SIS-power-estimator analogue of the DATE 2000 power
//! co-estimation paper: the hardware-mapped parts of a system-on-chip are
//! synthesized to gates ([`HwCfsm::synthesize`]) and simulated cycle by
//! cycle ([`Simulator`]) with per-net toggle-count energy accounting
//! ([`PowerConfig`], [`EnergyReport`]) — "a gate-level simulator that
//! reports power consumed on demand at cycle-level accuracy" (§3).
//!
//! Layers:
//!
//! * [`Netlist`] / [`GateKind`] — the structural IR;
//! * [`bus`] — word-level datapath blocks (adders, multipliers,
//!   comparators, registers);
//! * [`Simulator`] — deterministic cycle-based logic simulation with
//!   energy capture (four bit-identical kernels: event-driven,
//!   oblivious, word-parallel, and simd — see [`SimKernel`]);
//! * [`word`] — bit-parallel lane primitives and the lockstep
//!   multi-stream [`MultiLaneSim`] (64-lane [`LaneSim`] instance);
//! * [`simd`] — wide lane words ([`LaneWord`], [`Wide`]) that widen the
//!   word kernels to 128/256/512 lanes per op, and the width-erased
//!   [`SimdLaneSim`] multi-stream simulator;
//! * [`HwCfsm`] — CFSM transitions synthesized to FSMDs plus the
//!   run protocol the co-simulation master uses.
//!
//! # Examples
//!
//! ```
//! use gatesim::{Netlist, GateKind, Simulator, PowerConfig};
//!
//! let mut n = Netlist::new();
//! let a = n.input();
//! let b = n.input();
//! let sum = n.gate(GateKind::Xor, vec![a, b]);
//! n.mark_output("sum", sum);
//!
//! let mut sim = Simulator::new(&n, PowerConfig::date2000_defaults())?;
//! sim.set_input(a, true);
//! let energy = sim.step();
//! assert!(sim.value(sum) && energy > 0.0);
//! # Ok::<(), gatesim::ValidateNetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod analysis;
pub mod blif;
pub mod bus;
mod netlist;
mod power;
mod sim;
pub mod simd;
mod synth;
pub mod word;

pub use netlist::{Gate, GateKind, NetId, Netlist, ValidateNetlistError};
pub use power::{CapacitanceMap, EnergyReport, PowerConfig};
pub use sim::{ParseKernelError, SimKernel, Simulator, WindowRun};
pub use simd::{LaneWord, SimdLaneSim, Wide, W128, W256, W512};
pub use word::{LaneSim, MultiLaneSim};
pub use synth::{
    clear_synth_cache, synth_cache_stats, HwCfsm, HwRun, HwTransition, SynthConfig, SynthError,
};
