//! Word-level datapath building blocks.
//!
//! A [`Bus`] is an ordered set of nets (LSB first) representing a binary
//! word. The functions here instantiate structural gate-level
//! implementations of the arithmetic/relational operators that the CFSM →
//! netlist synthesizer needs: ripple-carry adders and subtractors,
//! shift-add multipliers, comparators, bitwise logic, constant shifters
//! and register banks. All arithmetic is two's-complement modulo
//! 2^width.

use crate::netlist::{GateKind, NetId, Netlist};

/// A word of nets, least-significant bit first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus(pub Vec<NetId>);

impl Bus {
    /// Bit width of the bus.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The underlying nets, LSB first.
    pub fn nets(&self) -> &[NetId] {
        &self.0
    }

    /// The most significant (sign) bit.
    ///
    /// # Panics
    ///
    /// Panics on an empty bus.
    pub fn msb(&self) -> NetId {
        match self.0.last() {
            Some(&n) => n,
            None => panic!("bus must be nonempty"),
        }
    }
}

/// Masks `v` to `width` bits (helper for comparing word-level simulation
/// against 64-bit behavioral values).
pub fn mask_to_width(v: i64, width: usize) -> u64 {
    if width >= 64 {
        v as u64
    } else {
        (v as u64) & ((1u64 << width) - 1)
    }
}

/// Sign-extends a `width`-bit value back to i64.
pub fn sign_extend(v: u64, width: usize) -> i64 {
    if width >= 64 {
        return v as i64;
    }
    let m = 1u64 << (width - 1);
    ((v & ((1u64 << width) - 1)) ^ m) as i64 - m as i64
}

/// Instantiates a bus of primary inputs.
pub fn input_bus(nl: &mut Netlist, width: usize) -> Bus {
    Bus((0..width).map(|_| nl.input()).collect())
}

/// Instantiates a constant bus holding `value` (low bits).
pub fn const_bus(nl: &mut Netlist, width: usize, value: u64) -> Bus {
    Bus((0..width)
        .map(|i| nl.constant((value >> i) & 1 == 1))
        .collect())
}

/// A register bank: `width` DFFs loading `d` when `enable` is high,
/// holding otherwise. Returns the Q bus.
pub fn register(nl: &mut Netlist, d: &Bus, enable: NetId, init: u64) -> Bus {
    // q = dff(mux(enable, d, q)) — forward-reference each dff's own net.
    let width = d.width();
    let mut q_nets = Vec::with_capacity(width);
    for i in 0..width {
        // Each iteration creates: mux at id K, dff at id K+1 reading the mux.
        let mux_id = NetId(nl.gate_count() as u32);
        let dff_id = NetId(mux_id.0 + 1);
        let mux = nl.gate(GateKind::Mux, vec![enable, d.0[i], dff_id]);
        debug_assert_eq!(mux, mux_id);
        let q = nl.dff(mux, (init >> i) & 1 == 1);
        debug_assert_eq!(q, dff_id);
        q_nets.push(q);
    }
    Bus(q_nets)
}

/// A one-bit full adder; returns `(sum, carry_out)`.
pub fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let axb = nl.gate(GateKind::Xor, vec![a, b]);
    let sum = nl.gate(GateKind::Xor, vec![axb, cin]);
    let ab = nl.gate(GateKind::And, vec![a, b]);
    let axb_cin = nl.gate(GateKind::And, vec![axb, cin]);
    let cout = nl.gate(GateKind::Or, vec![ab, axb_cin]);
    (sum, cout)
}

/// Ripple-carry adder; returns `(sum_bus, carry_out)`.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn adder(nl: &mut Netlist, a: &Bus, b: &Bus, cin: NetId) -> (Bus, NetId) {
    assert_eq!(a.width(), b.width(), "adder operands must match in width");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.width());
    for i in 0..a.width() {
        let (s, c) = full_adder(nl, a.0[i], b.0[i], carry);
        sum.push(s);
        carry = c;
    }
    (Bus(sum), carry)
}

/// Two's-complement subtractor `a - b`; returns `(difference, borrow_free)`
/// where the second component is the final carry (1 = no borrow, i.e.
/// `a >= b` unsigned).
pub fn subtractor(nl: &mut Netlist, a: &Bus, b: &Bus) -> (Bus, NetId) {
    let nb = bitwise_not(nl, b);
    let one = nl.constant(true);
    adder(nl, a, &nb, one)
}

/// Arithmetic negation `-a`.
pub fn negate(nl: &mut Netlist, a: &Bus) -> Bus {
    let w = a.width();
    let zero = const_bus(nl, w, 0);
    subtractor(nl, &zero, a).0
}

/// Bitwise NOT.
pub fn bitwise_not(nl: &mut Netlist, a: &Bus) -> Bus {
    Bus(a.0.iter().map(|&n| nl.gate(GateKind::Not, vec![n])).collect())
}

/// Bitwise binary op over two buses.
///
/// # Panics
///
/// Panics if the widths differ or `kind` is not a 2-input logic kind.
pub fn bitwise(nl: &mut Netlist, kind: GateKind, a: &Bus, b: &Bus) -> Bus {
    assert_eq!(a.width(), b.width(), "bitwise operands must match in width");
    assert!(
        matches!(
            kind,
            GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Nand | GateKind::Nor
        ),
        "not a bitwise kind"
    );
    Bus(a.0
        .iter()
        .zip(&b.0)
        .map(|(&x, &y)| nl.gate(kind, vec![x, y]))
        .collect())
}

/// Equality comparator (single net, 1 = equal).
pub fn equal(nl: &mut Netlist, a: &Bus, b: &Bus) -> NetId {
    assert_eq!(a.width(), b.width(), "eq operands must match in width");
    let bits: Vec<NetId> = a
        .0
        .iter()
        .zip(&b.0)
        .map(|(&x, &y)| nl.gate(GateKind::Xnor, vec![x, y]))
        .collect();
    nl.gate(GateKind::And, bits)
}

/// Signed less-than `a < b` (single net).
///
/// Computed as the sign of `a - b` corrected for overflow:
/// `lt = sign(diff) ^ overflow`, `overflow = (sa ^ sb) & (sa ^ sdiff)`.
pub fn less_than_signed(nl: &mut Netlist, a: &Bus, b: &Bus) -> NetId {
    let (diff, _) = subtractor(nl, a, b);
    let sa = a.msb();
    let sb = b.msb();
    let sd = diff.msb();
    let sa_x_sb = nl.gate(GateKind::Xor, vec![sa, sb]);
    let sa_x_sd = nl.gate(GateKind::Xor, vec![sa, sd]);
    let ovf = nl.gate(GateKind::And, vec![sa_x_sb, sa_x_sd]);
    nl.gate(GateKind::Xor, vec![sd, ovf])
}

/// Nonzero detector (single net, 1 = any bit set).
pub fn nonzero(nl: &mut Netlist, a: &Bus) -> NetId {
    nl.gate(GateKind::Or, a.0.clone())
}

/// Word multiplexer: `sel ? a : b`.
pub fn mux_bus(nl: &mut Netlist, sel: NetId, a: &Bus, b: &Bus) -> Bus {
    assert_eq!(a.width(), b.width(), "mux operands must match in width");
    Bus(a.0
        .iter()
        .zip(&b.0)
        .map(|(&x, &y)| nl.gate(GateKind::Mux, vec![sel, x, y]))
        .collect())
}

/// Logical shift left by a constant amount (zero fill, bits drop off the
/// top).
pub fn shift_left_const(nl: &mut Netlist, a: &Bus, amount: usize) -> Bus {
    let w = a.width();
    let zero = nl.constant(false);
    Bus((0..w)
        .map(|i| {
            if i >= amount {
                a.0[i - amount]
            } else {
                zero
            }
        })
        .collect())
}

/// Arithmetic shift right by a constant amount (sign fill).
pub fn shift_right_const(_nl: &mut Netlist, a: &Bus, amount: usize) -> Bus {
    let w = a.width();
    let sign = a.msb();
    Bus((0..w)
        .map(|i| {
            if i + amount < w {
                a.0[i + amount]
            } else {
                sign
            }
        })
        .collect())
}

/// Shift-add multiplier (low `width` bits of the product).
pub fn multiplier(nl: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    assert_eq!(a.width(), b.width(), "mul operands must match in width");
    let w = a.width();
    let mut acc = const_bus(nl, w, 0);
    for i in 0..w {
        // partial = (b[i] ? a : 0) << i, accumulated.
        let shifted = shift_left_const(nl, a, i);
        let zero = const_bus(nl, w, 0);
        let partial = mux_bus(nl, b.0[i], &shifted, &zero);
        let cin = nl.constant(false);
        acc = adder(nl, &acc, &partial, cin).0;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerConfig;
    use crate::sim::Simulator;

    const W: usize = 8;

    /// Drives two input buses through a datapath and reads the result.
    fn eval2(build: impl Fn(&mut Netlist, &Bus, &Bus) -> Bus, a: u64, b: u64) -> u64 {
        let mut nl = Netlist::new();
        let ba = input_bus(&mut nl, W);
        let bb = input_bus(&mut nl, W);
        let out = build(&mut nl, &ba, &bb);
        let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
        sim.set_input_bus(ba.nets(), a);
        sim.set_input_bus(bb.nets(), b);
        sim.step();
        sim.value_bus(out.nets())
    }

    fn eval2_bit(build: impl Fn(&mut Netlist, &Bus, &Bus) -> NetId, a: u64, b: u64) -> bool {
        let mut nl = Netlist::new();
        let ba = input_bus(&mut nl, W);
        let bb = input_bus(&mut nl, W);
        let out = build(&mut nl, &ba, &bb);
        let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
        sim.set_input_bus(ba.nets(), a);
        sim.set_input_bus(bb.nets(), b);
        sim.step();
        sim.value(out)
    }

    #[test]
    fn adder_matches_wrapping_add() {
        for (a, b) in [(0u64, 0u64), (1, 1), (100, 55), (200, 200), (255, 1)] {
            let got = eval2(
                |nl, x, y| {
                    let c0 = nl.constant(false);
                    adder(nl, x, y, c0).0
                },
                a,
                b,
            );
            assert_eq!(got, (a + b) & 0xFF, "{a}+{b}");
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        for (a, b) in [(0u64, 0u64), (5, 3), (3, 5), (255, 255), (0, 1)] {
            let got = eval2(|nl, x, y| subtractor(nl, x, y).0, a, b);
            assert_eq!(got, a.wrapping_sub(b) & 0xFF, "{a}-{b}");
        }
    }

    #[test]
    fn multiplier_matches_wrapping_mul() {
        for (a, b) in [(0u64, 7u64), (3, 5), (15, 17), (100, 100), (255, 2)] {
            let got = eval2(multiplier, a, b);
            assert_eq!(got, (a * b) & 0xFF, "{a}*{b}");
        }
    }

    #[test]
    fn comparators() {
        for (a, b) in [(0i64, 0i64), (1, 2), (2, 1), (-3, 4), (4, -3), (-5, -2)] {
            let ua = mask_to_width(a, W);
            let ub = mask_to_width(b, W);
            assert_eq!(eval2_bit(equal, ua, ub), a == b, "{a}=={b}");
            assert_eq!(eval2_bit(less_than_signed, ua, ub), a < b, "{a}<{b}");
        }
    }

    #[test]
    fn bitwise_ops() {
        let a = 0b1100_1010u64;
        let b = 0b1010_0110u64;
        assert_eq!(
            eval2(|nl, x, y| bitwise(nl, GateKind::And, x, y), a, b),
            a & b
        );
        assert_eq!(
            eval2(|nl, x, y| bitwise(nl, GateKind::Or, x, y), a, b),
            a | b
        );
        assert_eq!(
            eval2(|nl, x, y| bitwise(nl, GateKind::Xor, x, y), a, b),
            a ^ b
        );
    }

    #[test]
    fn negate_and_not() {
        let got = eval2(|nl, x, _| negate(nl, x), 5, 0);
        assert_eq!(got, (-5i64 as u64) & 0xFF);
        let got = eval2(|nl, x, _| bitwise_not(nl, x), 0b1111_0000, 0);
        assert_eq!(got, 0b0000_1111);
    }

    #[test]
    fn shifts_by_constant() {
        let got = eval2(|nl, x, _| shift_left_const(nl, x, 3), 0b0001_0110, 0);
        assert_eq!(got, 0b1011_0000);
        // Arithmetic right shift keeps the sign bit.
        let got = eval2(|nl, x, _| shift_right_const(nl, x, 2), 0b1000_0000, 0);
        assert_eq!(got, 0b1110_0000);
    }

    #[test]
    fn nonzero_detector() {
        assert!(!eval2_bit(|nl, x, _| nonzero(nl, x), 0, 0));
        assert!(eval2_bit(|nl, x, _| nonzero(nl, x), 0b0100_0000, 0));
    }

    #[test]
    fn mux_bus_selects_words() {
        let mut nl = Netlist::new();
        let sel = nl.input();
        let a = input_bus(&mut nl, W);
        let b = input_bus(&mut nl, W);
        let out = mux_bus(&mut nl, sel, &a, &b);
        let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
        sim.set_input_bus(a.nets(), 0x12);
        sim.set_input_bus(b.nets(), 0x34);
        sim.set_input(sel, true);
        sim.step();
        assert_eq!(sim.value_bus(out.nets()), 0x12);
        sim.set_input(sel, false);
        sim.step();
        assert_eq!(sim.value_bus(out.nets()), 0x34);
    }

    #[test]
    fn register_loads_and_holds() {
        let mut nl = Netlist::new();
        let en = nl.input();
        let d = input_bus(&mut nl, W);
        let q = register(&mut nl, &d, en, 0x0F);
        let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
        // Initial value visible before any load.
        assert_eq!(sim.value_bus(q.nets()), 0x0F);
        sim.set_input_bus(d.nets(), 0xAA);
        sim.set_input(en, false);
        sim.step();
        assert_eq!(sim.value_bus(q.nets()), 0x0F, "hold when disabled");
        sim.set_input(en, true);
        sim.step();
        assert_eq!(sim.value_bus(q.nets()), 0xAA, "load when enabled");
        sim.set_input(en, false);
        sim.set_input_bus(d.nets(), 0x55);
        sim.step();
        assert_eq!(sim.value_bus(q.nets()), 0xAA, "hold again");
    }

    #[test]
    fn mask_and_sign_extend_roundtrip() {
        for v in [-128i64, -1, 0, 1, 127] {
            assert_eq!(sign_extend(mask_to_width(v, 8), 8), v);
        }
        assert_eq!(mask_to_width(-1, 64), u64::MAX);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }
}
