//! Structural synthesis of CFSM transitions into gate-level FSMDs.
//!
//! The POLIS flow synthesizes each hardware-mapped CFSM into a netlist
//! that the (modified SIS) gate-level power estimator simulates. This
//! module reproduces that step: every transition body becomes a one-hot
//! controller over *segments* (cycle-sized slices of CFG basic blocks)
//! plus a word-level datapath over the process variables, built from the
//! [`bus`](crate::bus) library.
//!
//! ## Run protocol
//!
//! The co-simulation master drives a synthesized transition the way the
//! paper's master drives the HW power simulator ("state, input values,
//! commands" in; "cycles, power" out — Fig. 2b):
//!
//! 1. **load cycle** — variable values are forced through the load port;
//! 2. **start cycle** — the controller leaves idle;
//! 3. **execution cycles** — one segment per cycle until `done`;
//!    shared-memory reads are a two-cycle issue/capture handshake, with
//!    the master supplying the read data between cycles.
//!
//! The reported cycle count therefore includes the two synchronization
//! overhead cycles per firing.
//!
//! ## Limitations
//!
//! Division, remainder, and shifts by a non-constant amount have no
//! structural implementation ([`SynthError::UnsupportedOp`]); processes
//! using them belong in software. Transition guards are evaluated by the
//! behavioral master (their energy is folded into the controller).

use crate::bus::{
    adder, bitwise, bitwise_not, const_bus, equal, input_bus, less_than_signed, mask_to_width,
    multiplier, negate, nonzero, shift_left_const, shift_right_const, sign_extend, Bus,
};
use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::PowerConfig;
use crate::sim::Simulator;
use cfsm::{BinOp, Cfsm, EventId, Expr, Stmt, Terminator, TransitionId, UnOp, VarId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Synthesis parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Datapath word width in bits (values wrap modulo 2^width).
    pub width: usize,
}

impl SynthConfig {
    /// 16-bit datapath — wide enough for the paper's example systems
    /// (byte streams, timestamps, 16-bit checksums).
    pub fn new() -> Self {
        SynthConfig { width: 16 }
    }

    /// Sets the datapath width.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 63`.
    pub fn with_width(width: usize) -> Self {
        assert!((1..=63).contains(&width), "width must be in 1..=63");
        SynthConfig { width }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::new()
    }
}

/// Errors from synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The operator has no structural implementation.
    UnsupportedOp(&'static str),
    /// The generated netlist failed validation (internal error).
    Netlist(ValidateNetlistError),
    /// An internal synthesis invariant was violated (a bug, reported as
    /// an error instead of a panic).
    Internal(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnsupportedOp(op) => {
                write!(f, "operator {op} has no hardware implementation")
            }
            SynthError::Netlist(e) => write!(f, "generated netlist invalid: {e}"),
            SynthError::Internal(what) => {
                write!(f, "internal synthesis invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SynthError {}

impl From<ValidateNetlistError> for SynthError {
    fn from(e: ValidateNetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

/// A cycle-sized slice of a basic block.
#[derive(Debug, Clone)]
struct Segment {
    /// Capture the memory read data into this variable at segment entry.
    capture: Option<VarId>,
    assigns: Vec<(VarId, Expr)>,
    emits: Vec<(EventId, Option<Expr>)>,
    mem_issue: Option<MemIssue>,
    next: SegNext,
}

#[derive(Debug, Clone)]
enum MemIssue {
    Read(Expr),
    Write(Expr, Expr),
}

#[derive(Debug, Clone)]
enum SegNext {
    Goto(usize),
    Branch {
        cond: Expr,
        then_seg: usize,
        else_seg: usize,
    },
    Done,
}

/// Splits a CFG into segments: each memory operation ends a segment (one
/// bus transaction per cycle; reads capture in the following segment).
fn segment_cfg(body: &cfsm::Cfg) -> Vec<Segment> {
    let fresh = |capture: Option<VarId>| Segment {
        capture,
        assigns: Vec::new(),
        emits: Vec::new(),
        mem_issue: None,
        next: SegNext::Done, // patched below
    };
    // First pass: per-block segment lists.
    let mut per_block: Vec<Vec<Segment>> = Vec::with_capacity(body.len());
    for block in body.blocks() {
        let mut segs = vec![fresh(None)];
        for stmt in &block.stmts {
            let cur = segs.len() - 1;
            match stmt {
                Stmt::Assign { var, expr } => segs[cur].assigns.push((*var, expr.clone())),
                Stmt::Emit { event, value } => segs[cur].emits.push((*event, value.clone())),
                Stmt::MemRead { var, addr } => {
                    segs[cur].mem_issue = Some(MemIssue::Read(addr.clone()));
                    segs.push(fresh(Some(*var)));
                }
                Stmt::MemWrite { addr, value } => {
                    segs[cur].mem_issue = Some(MemIssue::Write(addr.clone(), value.clone()));
                    segs.push(fresh(None));
                }
            }
        }
        per_block.push(segs);
    }
    // Block -> first segment index.
    let mut first = Vec::with_capacity(per_block.len());
    let mut total = 0usize;
    for segs in &per_block {
        first.push(total);
        total += segs.len();
    }
    // Second pass: link.
    let mut out = Vec::with_capacity(total);
    for (bi, segs) in per_block.into_iter().enumerate() {
        let base = first[bi];
        let n = segs.len();
        for (si, mut seg) in segs.into_iter().enumerate() {
            seg.next = if si + 1 < n {
                SegNext::Goto(base + si + 1)
            } else {
                match &body.blocks()[bi].term {
                    Terminator::Goto(t) => SegNext::Goto(first[t.0 as usize]),
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                    } => SegNext::Branch {
                        cond: cond.clone(),
                        then_seg: first[then_block.0 as usize],
                        else_seg: first[else_block.0 as usize],
                    },
                    Terminator::Return => SegNext::Done,
                }
            };
            out.push(seg);
        }
    }
    out
}

/// I/O ports of one synthesized transition.
#[derive(Debug, Clone)]
struct Ports {
    start: NetId,
    load: NetId,
    var_in: Vec<Bus>,
    var_q: Vec<Bus>,
    ev_in: BTreeMap<EventId, Bus>,
    mem_data_in: Bus,
    done: NetId,
    emit_pulse: BTreeMap<EventId, NetId>,
    emit_value: BTreeMap<EventId, Bus>,
    mem_re: NetId,
    mem_we: NetId,
    mem_addr: Bus,
    mem_wdata: Bus,
}

/// The immutable product of synthesizing one transition: the netlist and
/// its port map. Shared via the global synthesis memo, so every
/// exploration point (and every simulator instance) evaluating the same
/// behavioral spec at the same synthesis parameters holds one copy.
#[derive(Debug)]
struct SynthesizedTransition {
    netlist: Arc<Netlist>,
    ports: Ports,
    gate_count: usize,
    segment_count: usize,
}

/// The global synthesis memo plus its hit/miss counters.
struct SynthCache {
    map: HashMap<String, Arc<SynthesizedTransition>>,
    hits: u64,
    misses: u64,
}

static SYNTH_CACHE: OnceLock<Mutex<SynthCache>> = OnceLock::new();

fn lock_synth_cache() -> std::sync::MutexGuard<'static, SynthCache> {
    let cache = SYNTH_CACHE.get_or_init(|| {
        Mutex::new(SynthCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    });
    match cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The memo key: a structural serialization of everything netlist
/// construction depends on — the transition body, the variable count,
/// and the datapath width. Power parameters are deliberately absent:
/// they shape the per-instance capacitance map, never the netlist.
fn synth_memo_key(t: &cfsm::Transition, n_vars: usize, config: &SynthConfig) -> String {
    format!("{:?}|v{}|w{}", t.body, n_vars, config.width)
}

/// `(hits, misses)` of the global synthesis memo since process start (or
/// the last [`clear_synth_cache`]).
pub fn synth_cache_stats() -> (u64, u64) {
    let cache = lock_synth_cache();
    (cache.hits, cache.misses)
}

/// Empties the global synthesis memo and zeroes its counters. Only
/// benchmarks isolating cold-vs-warm synthesis need this; correctness
/// never depends on the cache's contents.
pub fn clear_synth_cache() {
    let mut cache = lock_synth_cache();
    cache.map.clear();
    cache.hits = 0;
    cache.misses = 0;
}

/// One synthesized, simulatable transition.
///
/// The gate-level simulator state persists across runs (hardware is not
/// reset between firings), so the energy of a firing depends on the
/// previous datapath contents — the source of the per-path energy
/// variance that motivates the paper's caching thresholds (Fig. 4).
/// The netlist itself lives behind an [`Arc`] in the synthesis memo;
/// only the simulator state (values, toggles, energy) is per-instance.
#[derive(Debug)]
pub struct HwTransition {
    shared: Arc<SynthesizedTransition>,
    sim: Simulator,
    width: usize,
}

/// The result of running one transition on the gate-level simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct HwRun {
    /// Total cycles, including the load and start synchronization cycles.
    pub cycles: u64,
    /// Energy dissipated over those cycles, in joules.
    pub energy_j: f64,
    /// Final variable values (sign-extended back to i64).
    pub vars_out: Vec<i64>,
    /// Events emitted, in cycle order.
    pub emitted: Vec<(EventId, Option<i64>)>,
    /// Memory transactions issued: `(addr, write?, write_data)`.
    pub mem_ops: Vec<(u64, bool, i64)>,
}

/// Guards against malformed controllers spinning forever.
const MAX_RUN_CYCLES: u64 = 50_000_000;

impl HwTransition {
    /// Runs the transition: `vars_in` are the live variable values,
    /// `event_value` supplies triggering event values, `mem_reads` the
    /// ordered functional read data (from the behavioral execution).
    ///
    /// # Panics
    ///
    /// Panics if more reads are issued than `mem_reads` supplies, or if
    /// the controller exceeds an internal cycle budget.
    pub fn run(
        &mut self,
        vars_in: &[i64],
        event_value: &dyn Fn(EventId) -> i64,
        mem_reads: &[i64],
    ) -> HwRun {
        if self.sim.kernel().is_windowed() {
            return self.run_word(vars_in, event_value, mem_reads);
        }
        let w = self.width;
        let sim = &mut self.sim;
        // Load cycle.
        sim.set_input(self.shared.ports.start, false);
        sim.set_input(self.shared.ports.load, true);
        for (v, bus) in self.shared.ports.var_in.iter().enumerate() {
            sim.set_input_bus(bus.nets(), mask_to_width(vars_in[v], w));
        }
        for (&e, bus) in &self.shared.ports.ev_in {
            sim.set_input_bus(bus.nets(), mask_to_width(event_value(e), w));
        }
        let mut energy = sim.step();
        let mut cycles = 1u64;
        // Start handshake cycle.
        sim.set_input(self.shared.ports.load, false);
        sim.set_input(self.shared.ports.start, true);
        energy += sim.step();
        cycles += 1;
        sim.set_input(self.shared.ports.start, false);
        // Execution cycles.
        let mut emitted = Vec::new();
        let mut mem_ops = Vec::new();
        let mut next_read = 0usize;
        loop {
            energy += sim.step();
            cycles += 1;
            assert!(
                cycles < MAX_RUN_CYCLES,
                "hardware transition exceeded cycle budget; runaway controller?"
            );
            for (&e, &pulse) in &self.shared.ports.emit_pulse {
                if sim.value(pulse) {
                    let val = self
                        .shared
                        .ports
                        .emit_value
                        .get(&e)
                        .map(|bus| sign_extend(sim.value_bus(bus.nets()), w));
                    emitted.push((e, val));
                }
            }
            if sim.value(self.shared.ports.mem_re) {
                let addr = sim.value_bus(self.shared.ports.mem_addr.nets());
                mem_ops.push((addr, false, 0));
                assert!(
                    next_read < mem_reads.len(),
                    "hardware issued more reads than the behavioral execution supplied"
                );
                sim.set_input_bus(
                    self.shared.ports.mem_data_in.nets(),
                    mask_to_width(mem_reads[next_read], w),
                );
                next_read += 1;
            }
            if sim.value(self.shared.ports.mem_we) {
                let addr = sim.value_bus(self.shared.ports.mem_addr.nets());
                let data = sign_extend(sim.value_bus(self.shared.ports.mem_wdata.nets()), w);
                mem_ops.push((addr, true, data));
            }
            if sim.value(self.shared.ports.done) {
                break;
            }
        }
        let vars_out = self
            .shared
            .ports
            .var_q
            .iter()
            .map(|bus| sign_extend(sim.value_bus(bus.nets()), w))
            .collect();
        HwRun {
            cycles,
            energy_j: energy,
            vars_out,
            emitted,
            mem_ops,
        }
    }

    /// The windowed (word-parallel / simd) run protocol: identical
    /// observable behavior to the scalar [`HwTransition::run`] loop, bit
    /// for bit, but the execution cycles advance through speculative
    /// windows of up to the kernel's lane count
    /// ([`Simulator::run_window`]) instead of scalar steps.
    ///
    /// Data-dependent input sequencing is the interesting seam: the
    /// master supplies memory read data *in response to* `mem_re`, so a
    /// window must not run past a read issue — `mem_re` and `done` are
    /// the window's stop nets, which flushes the batch at exactly the
    /// cycles where the scalar loop would react, and the replay resumes
    /// from the committed register state with the new `mem_data_in`.
    /// Emit pulses and memory operands are observed per committed cycle
    /// through the window lanes (all of them are combinational nets).
    /// Per-cycle energies are re-folded from the report so the float
    /// accumulation order matches the scalar `energy += step()` chain.
    fn run_word(
        &mut self,
        vars_in: &[i64],
        event_value: &dyn Fn(EventId) -> i64,
        mem_reads: &[i64],
    ) -> HwRun {
        let w = self.width;
        let sim = &mut self.sim;
        // Load cycle, then the start handshake cycle: single scalar
        // steps (one-cycle windows are bit-identical to scalar steps).
        sim.set_input(self.shared.ports.start, false);
        sim.set_input(self.shared.ports.load, true);
        for (v, bus) in self.shared.ports.var_in.iter().enumerate() {
            sim.set_input_bus(bus.nets(), mask_to_width(vars_in[v], w));
        }
        for (&e, bus) in &self.shared.ports.ev_in {
            sim.set_input_bus(bus.nets(), mask_to_width(event_value(e), w));
        }
        let mut energy = sim.step();
        let mut cycles = 1u64;
        sim.set_input(self.shared.ports.load, false);
        sim.set_input(self.shared.ports.start, true);
        energy += sim.step();
        cycles += 1;
        sim.set_input(self.shared.ports.start, false);
        // Execution cycles, windowed.
        let stop = [self.shared.ports.mem_re, self.shared.ports.done];
        let mut emitted = Vec::new();
        let mut mem_ops = Vec::new();
        let mut next_read = 0usize;
        'execute: loop {
            let base = sim.report().per_cycle_j.len();
            let win = sim.run_window(sim.kernel().window_bits() as u64, &stop);
            for j in 0..win.committed {
                energy += sim.report().per_cycle_j[base + j as usize];
                cycles += 1;
                assert!(
                    cycles < MAX_RUN_CYCLES,
                    "hardware transition exceeded cycle budget; runaway controller?"
                );
                for (&e, &pulse) in &self.shared.ports.emit_pulse {
                    if sim.window_value(pulse, j) {
                        let val = self.shared.ports.emit_value.get(&e).map(|bus| {
                            sign_extend(sim.window_value_bus(bus.nets(), j), w)
                        });
                        emitted.push((e, val));
                    }
                }
                if sim.window_value(self.shared.ports.mem_re, j) {
                    let addr = sim.window_value_bus(self.shared.ports.mem_addr.nets(), j);
                    mem_ops.push((addr, false, 0));
                    assert!(
                        next_read < mem_reads.len(),
                        "hardware issued more reads than the behavioral execution supplied"
                    );
                    sim.set_input_bus(
                        self.shared.ports.mem_data_in.nets(),
                        mask_to_width(mem_reads[next_read], w),
                    );
                    next_read += 1;
                }
                if sim.window_value(self.shared.ports.mem_we, j) {
                    let addr = sim.window_value_bus(self.shared.ports.mem_addr.nets(), j);
                    let data = sign_extend(
                        sim.window_value_bus(self.shared.ports.mem_wdata.nets(), j),
                        w,
                    );
                    mem_ops.push((addr, true, data));
                }
                if sim.window_value(self.shared.ports.done, j) {
                    break 'execute;
                }
            }
        }
        let vars_out = self
            .shared
            .ports
            .var_q
            .iter()
            .map(|bus| sign_extend(sim.value_bus(bus.nets()), w))
            .collect();
        HwRun {
            cycles,
            energy_j: energy,
            vars_out,
            emitted,
            mem_ops,
        }
    }

    /// Steps the netlist `cycles` times with held inputs — the component
    /// idling while it waits for the bus — and returns the energy (clock
    /// tree only, since nothing toggles). The paper observes that the
    /// integration architecture changes component power "even though the
    /// HW and SW parts are unchanged" (§5.3); this is that mechanism.
    pub fn idle_step(&mut self, cycles: u64) -> f64 {
        self.sim.run(cycles)
    }

    /// Clock-tree energy per idle cycle, joules (the analytic equivalent
    /// of [`idle_step`](HwTransition::idle_step), used when an
    /// acceleration technique skips the gate-level simulation).
    pub fn idle_energy_per_cycle_j(&self) -> f64 {
        self.sim.clock_energy_per_cycle_j()
    }

    /// Gates in this transition's netlist.
    pub fn gate_count(&self) -> usize {
        self.shared.gate_count
    }

    /// Number of controller segments.
    pub fn segment_count(&self) -> usize {
        self.shared.segment_count
    }

    /// The shared synthesized netlist this instance simulates.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.shared.netlist
    }

    /// `(gate_evals, gate_events)` of this instance's simulator so far.
    pub fn gate_stats(&self) -> (u64, u64) {
        (self.sim.gate_evals(), self.sim.gate_events())
    }
}

/// A hardware-mapped CFSM: one synthesized netlist per transition.
///
/// # Examples
///
/// ```
/// use cfsm::{Cfsm, Cfg, Stmt, Expr, EventId};
/// use gatesim::{HwCfsm, SynthConfig, PowerConfig};
///
/// let mut b = Cfsm::builder("inc");
/// let s = b.state("s");
/// let v = b.var("v", 0);
/// let t = b.transition(
///     s,
///     vec![EventId(0)],
///     None,
///     Cfg::straight_line(vec![Stmt::Assign {
///         var: v,
///         expr: Expr::add(Expr::Var(v), Expr::Const(1)),
///     }]),
///     s,
/// );
/// let machine = b.finish()?;
/// let mut hw = HwCfsm::synthesize(&machine, &SynthConfig::new(), &PowerConfig::date2000_defaults())?;
/// let run = hw.transition_mut(t).run(&[41], &|_| 0, &[]);
/// assert_eq!(run.vars_out, vec![42]);
/// assert!(run.energy_j > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HwCfsm {
    name: String,
    width: usize,
    transitions: Vec<HwTransition>,
}

impl HwCfsm {
    /// Synthesizes every transition of `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::UnsupportedOp`] for operators with no
    /// structural implementation.
    pub fn synthesize(
        machine: &Cfsm,
        config: &SynthConfig,
        power: &PowerConfig,
    ) -> Result<Self, SynthError> {
        let n_vars = machine.vars().len();
        let mut transitions = Vec::with_capacity(machine.transitions().len());
        for t in machine.transitions() {
            transitions.push(synthesize_transition(t, n_vars, config, power)?);
        }
        Ok(HwCfsm {
            name: machine.name().to_string(),
            width: config.width,
            transitions,
        })
    }

    /// The machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The datapath width the machine was synthesized at, bits.
    pub fn datapath_width(&self) -> usize {
        self.width
    }

    /// Truncates a behavioral value to this machine's datapath width —
    /// the functional equivalence relation between behavioral (i64)
    /// results and the synthesized datapath's registers.
    pub fn mask_value(&self, v: i64) -> u64 {
        mask_to_width(v, self.width)
    }

    /// Mutable access to one synthesized transition.
    pub fn transition_mut(&mut self, id: TransitionId) -> &mut HwTransition {
        &mut self.transitions[id.0 as usize]
    }

    /// Immutable access to one synthesized transition.
    pub fn transition(&self, id: TransitionId) -> &HwTransition {
        &self.transitions[id.0 as usize]
    }

    /// Total `(gate_evals, gate_events)` across all transitions'
    /// simulators.
    pub fn gate_stats(&self) -> (u64, u64) {
        self.transitions.iter().fold((0, 0), |(evals, events), t| {
            let (e, v) = t.gate_stats();
            (evals + e, events + v)
        })
    }

    /// Total gates across all transitions.
    pub fn gate_count(&self) -> usize {
        self.transitions.iter().map(|t| t.gate_count()).sum()
    }

    /// Number of synthesized transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }
}

fn collect_event_reads_expr(e: &Expr, out: &mut BTreeSet<EventId>) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::EventValue(ev) => {
            out.insert(*ev);
        }
        Expr::Unary(_, a) => collect_event_reads_expr(a, out),
        Expr::Binary(_, a, b) => {
            collect_event_reads_expr(a, out);
            collect_event_reads_expr(b, out);
        }
    }
}

/// Synthesizes one expression into the datapath. `current` maps variables
/// to their value buses within the active segment.
fn synth_expr(
    nl: &mut Netlist,
    expr: &Expr,
    current: &HashMap<VarId, Bus>,
    ev_in: &BTreeMap<EventId, Bus>,
    width: usize,
) -> Result<Bus, SynthError> {
    Ok(match expr {
        Expr::Const(c) => const_bus(nl, width, mask_to_width(*c, width)),
        Expr::Var(v) => current
            .get(v)
            .ok_or_else(|| SynthError::Internal(format!("variable {v} not in datapath")))?
            .clone(),
        Expr::EventValue(e) => ev_in
            .get(e)
            .ok_or_else(|| {
                SynthError::Internal(format!("no input bus for read event {}", e.0))
            })?
            .clone(),
        Expr::Unary(op, a) => {
            let ba = synth_expr(nl, a, current, ev_in, width)?;
            match op {
                UnOp::Neg => negate(nl, &ba),
                UnOp::Not => bitwise_not(nl, &ba),
                UnOp::LNot => {
                    let nz = nonzero(nl, &ba);
                    let b = nl.gate(GateKind::Not, vec![nz]);
                    extend_bit(nl, b, width)
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let ba = synth_expr(nl, a, current, ev_in, width)?;
            // Constant shift amounts short-circuit before synthesizing b.
            match op {
                BinOp::Shl | BinOp::Shr => {
                    let amount = match **b {
                        Expr::Const(c) if c >= 0 => c as usize % width.max(1),
                        _ => {
                            return Err(SynthError::UnsupportedOp(
                                "shift by non-constant amount",
                            ))
                        }
                    };
                    return Ok(if matches!(op, BinOp::Shl) {
                        shift_left_const(nl, &ba, amount)
                    } else {
                        shift_right_const(nl, &ba, amount)
                    });
                }
                _ => {}
            }
            let bb = synth_expr(nl, b, current, ev_in, width)?;
            match op {
                BinOp::Add => {
                    let c0 = nl.constant(false);
                    adder(nl, &ba, &bb, c0).0
                }
                BinOp::Sub => {
                    let nb = bitwise_not(nl, &bb);
                    let c1 = nl.constant(true);
                    adder(nl, &ba, &nb, c1).0
                }
                BinOp::Mul => multiplier(nl, &ba, &bb),
                BinOp::Div => return Err(SynthError::UnsupportedOp("division")),
                BinOp::Rem => return Err(SynthError::UnsupportedOp("remainder")),
                BinOp::And => bitwise(nl, GateKind::And, &ba, &bb),
                BinOp::Or => bitwise(nl, GateKind::Or, &ba, &bb),
                BinOp::Xor => bitwise(nl, GateKind::Xor, &ba, &bb),
                BinOp::Shl | BinOp::Shr => unreachable!("handled above"),
                BinOp::Eq => {
                    let b = equal(nl, &ba, &bb);
                    extend_bit(nl, b, width)
                }
                BinOp::Ne => {
                    let e = equal(nl, &ba, &bb);
                    let b = nl.gate(GateKind::Not, vec![e]);
                    extend_bit(nl, b, width)
                }
                BinOp::Lt => {
                    let b = less_than_signed(nl, &ba, &bb);
                    extend_bit(nl, b, width)
                }
                BinOp::Le => {
                    // a <= b  ==  !(b < a)
                    let gt = less_than_signed(nl, &bb, &ba);
                    let b = nl.gate(GateKind::Not, vec![gt]);
                    extend_bit(nl, b, width)
                }
                BinOp::Gt => {
                    let b = less_than_signed(nl, &bb, &ba);
                    extend_bit(nl, b, width)
                }
                BinOp::Ge => {
                    let lt = less_than_signed(nl, &ba, &bb);
                    let b = nl.gate(GateKind::Not, vec![lt]);
                    extend_bit(nl, b, width)
                }
            }
        }
    })
}

/// Zero-extends a single bit to a bus.
fn extend_bit(nl: &mut Netlist, bit: NetId, width: usize) -> Bus {
    let zero = nl.constant(false);
    let mut nets = vec![bit];
    nets.resize(width, zero);
    Bus(nets)
}

/// OR-combines `(select, bus)` pairs into one bus; selects are assumed
/// one-hot. Returns a zero bus if the list is empty.
fn onehot_merge(nl: &mut Netlist, width: usize, arms: &[(NetId, Bus)]) -> Bus {
    if arms.is_empty() {
        return const_bus(nl, width, 0);
    }
    let mut bits = Vec::with_capacity(width);
    for i in 0..width {
        let masked: Vec<NetId> = arms
            .iter()
            .map(|(sel, bus)| nl.gate(GateKind::And, vec![*sel, bus.0[i]]))
            .collect();
        bits.push(nl.gate(GateKind::Or, masked));
    }
    Bus(bits)
}

/// ORs a list of nets (0 if empty).
fn or_all(nl: &mut Netlist, nets: Vec<NetId>) -> NetId {
    if nets.is_empty() {
        nl.constant(false)
    } else {
        nl.gate(GateKind::Or, nets)
    }
}

/// Memoizing front end: looks the transition up in the global synthesis
/// cache and only runs structural synthesis on a miss. Every instance —
/// across repeated `synthesize` calls and across parallel exploration
/// workers — shares one `Arc<Netlist>`; the simulator (and with it all
/// mutable state) is built fresh per instance.
fn synthesize_transition(
    t: &cfsm::Transition,
    n_vars: usize,
    config: &SynthConfig,
    power: &PowerConfig,
) -> Result<HwTransition, SynthError> {
    let key = synth_memo_key(t, n_vars, config);
    let cached = {
        let mut cache = lock_synth_cache();
        let found = cache.map.get(&key).map(Arc::clone);
        match found {
            Some(shared) => {
                cache.hits += 1;
                Some(shared)
            }
            None => {
                cache.misses += 1;
                None
            }
        }
    };
    let shared = match cached {
        Some(shared) => shared,
        None => {
            let built = Arc::new(build_transition(t, n_vars, config)?);
            let mut cache = lock_synth_cache();
            // A parallel worker may have raced us to the build; the first
            // insert wins so all instances share a single netlist.
            Arc::clone(cache.map.entry(key).or_insert(built))
        }
    };
    let sim = Simulator::with_shared(Arc::clone(&shared.netlist), power.clone())?;
    Ok(HwTransition {
        shared,
        sim,
        width: config.width,
    })
}

/// Structural synthesis proper: builds the netlist and port map for one
/// transition (no simulator state; the result is immutable and shared).
fn build_transition(
    t: &cfsm::Transition,
    n_vars: usize,
    config: &SynthConfig,
) -> Result<SynthesizedTransition, SynthError> {
    let w = config.width;
    let segments = segment_cfg(&t.body);
    let n_segs = segments.len();
    let mut nl = Netlist::new();

    // Ports.
    let start = nl.input();
    let load = nl.input();
    let var_in: Vec<Bus> = (0..n_vars).map(|_| input_bus(&mut nl, w)).collect();
    let mem_data_in = input_bus(&mut nl, w);
    let mut ev_reads = BTreeSet::new();
    for seg in &segments {
        for (_, e) in &seg.assigns {
            collect_event_reads_expr(e, &mut ev_reads);
        }
        for (_, v) in &seg.emits {
            if let Some(v) = v {
                collect_event_reads_expr(v, &mut ev_reads);
            }
        }
        match &seg.mem_issue {
            Some(MemIssue::Read(a)) => collect_event_reads_expr(a, &mut ev_reads),
            Some(MemIssue::Write(a, v)) => {
                collect_event_reads_expr(a, &mut ev_reads);
                collect_event_reads_expr(v, &mut ev_reads);
            }
            None => {}
        }
        if let SegNext::Branch { cond, .. } = &seg.next {
            collect_event_reads_expr(cond, &mut ev_reads);
        }
    }
    let ev_in: BTreeMap<EventId, Bus> = ev_reads
        .into_iter()
        .map(|e| (e, input_bus(&mut nl, w)))
        .collect();

    // Controller flops via late-bound wires.
    let idle_d = nl.wire();
    let idle_q = nl.dff(idle_d, true);
    let seg_d: Vec<NetId> = (0..n_segs).map(|_| nl.wire()).collect();
    let seg_q: Vec<NetId> = seg_d.iter().map(|&d| nl.dff(d, false)).collect();

    // Variable registers: q = dff(mux(load, var_in, mux(wen, wdata, q))).
    let var_wen: Vec<NetId> = (0..n_vars).map(|_| nl.wire()).collect();
    let var_wdata: Vec<Bus> = (0..n_vars)
        .map(|_| Bus((0..w).map(|_| nl.wire()).collect()))
        .collect();
    let mut var_q: Vec<Bus> = Vec::with_capacity(n_vars);
    for v in 0..n_vars {
        let mut q_bits = Vec::with_capacity(w);
        for i in 0..w {
            let q_fb = nl.wire();
            let inner = nl.gate(GateKind::Mux, vec![var_wen[v], var_wdata[v].0[i], q_fb]);
            let d = nl.gate(GateKind::Mux, vec![load, var_in[v].0[i], inner]);
            let q = nl.dff(d, false);
            nl.drive(q_fb, q);
            q_bits.push(q);
        }
        var_q.push(Bus(q_bits));
    }

    // Per-segment datapath.
    struct SegOut {
        writes: Vec<(VarId, Bus)>,
        emits: Vec<(EventId, Option<Bus>)>,
        mem: Option<(bool, Bus, Option<Bus>)>, // (is_write, addr, wdata)
        cond: Option<NetId>,
    }
    let mut seg_outs: Vec<SegOut> = Vec::with_capacity(n_segs);
    for seg in &segments {
        let mut current: HashMap<VarId, Bus> = (0..n_vars)
            .map(|v| (VarId(v as u32), var_q[v].clone()))
            .collect();
        let mut writes: Vec<(VarId, Bus)> = Vec::new();
        if let Some(v) = seg.capture {
            current.insert(v, mem_data_in.clone());
            writes.push((v, mem_data_in.clone()));
        }
        for (v, expr) in &seg.assigns {
            let bus = synth_expr(&mut nl, expr, &current, &ev_in, w)?;
            current.insert(*v, bus.clone());
            writes.retain(|(wv, _)| wv != v);
            writes.push((*v, bus));
        }
        let mut emits = Vec::new();
        for (e, val) in &seg.emits {
            let vb = match val {
                Some(expr) => Some(synth_expr(&mut nl, expr, &current, &ev_in, w)?),
                None => None,
            };
            emits.push((*e, vb));
        }
        let mem = match &seg.mem_issue {
            Some(MemIssue::Read(a)) => {
                let ab = synth_expr(&mut nl, a, &current, &ev_in, w)?;
                Some((false, ab, None))
            }
            Some(MemIssue::Write(a, v)) => {
                let ab = synth_expr(&mut nl, a, &current, &ev_in, w)?;
                let vb = synth_expr(&mut nl, v, &current, &ev_in, w)?;
                Some((true, ab, Some(vb)))
            }
            None => None,
        };
        let cond = match &seg.next {
            SegNext::Branch { cond, .. } => {
                let cb = synth_expr(&mut nl, cond, &current, &ev_in, w)?;
                Some(nonzero(&mut nl, &cb))
            }
            _ => None,
        };
        seg_outs.push(SegOut {
            writes,
            emits,
            mem,
            cond,
        });
    }

    // Next-state logic.
    let not_start = nl.gate(GateKind::Not, vec![start]);
    let idle_hold = nl.gate(GateKind::And, vec![idle_q, not_start]);
    let entry_edge = nl.gate(GateKind::And, vec![idle_q, start]);
    let mut incoming: Vec<Vec<NetId>> = vec![Vec::new(); n_segs];
    incoming[0].push(entry_edge);
    let mut done_edges = Vec::new();
    for (k, (seg, out)) in segments.iter().zip(&seg_outs).enumerate() {
        let active = seg_q[k];
        match &seg.next {
            SegNext::Goto(tgt) => incoming[*tgt].push(active),
            SegNext::Done => done_edges.push(active),
            SegNext::Branch {
                then_seg, else_seg, ..
            } => {
                let c = out.cond.ok_or_else(|| {
                    SynthError::Internal("branch segment has no condition net".into())
                })?;
                let nc = nl.gate(GateKind::Not, vec![c]);
                let et = nl.gate(GateKind::And, vec![active, c]);
                let ee = nl.gate(GateKind::And, vec![active, nc]);
                incoming[*then_seg].push(et);
                incoming[*else_seg].push(ee);
            }
        }
    }
    let done = or_all(&mut nl, done_edges.clone());
    let mut idle_in = vec![idle_hold];
    idle_in.extend(done_edges);
    let idle_next = nl.gate(GateKind::Or, idle_in);
    nl.drive(idle_d, idle_next);
    for (k, ins) in incoming.into_iter().enumerate() {
        let nxt = or_all(&mut nl, ins);
        nl.drive(seg_d[k], nxt);
    }

    // Variable write ports.
    for v in 0..n_vars {
        let arms: Vec<(NetId, Bus)> = seg_outs
            .iter()
            .enumerate()
            .flat_map(|(k, out)| {
                let sq = seg_q[k];
                out.writes
                    .iter()
                    .filter(|(wv, _)| wv.0 as usize == v)
                    .map(move |(_, bus)| (sq, bus.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let wen = or_all(&mut nl, arms.iter().map(|&(s, _)| s).collect());
        nl.drive(var_wen[v], wen);
        let data = onehot_merge(&mut nl, w, &arms);
        for i in 0..w {
            nl.drive(var_wdata[v].0[i], data.0[i]);
        }
    }

    // Emit ports.
    let mut emit_events = BTreeSet::new();
    for out in &seg_outs {
        for (e, _) in &out.emits {
            emit_events.insert(*e);
        }
    }
    let mut emit_pulse = BTreeMap::new();
    let mut emit_value = BTreeMap::new();
    for &e in &emit_events {
        let pulses: Vec<NetId> = seg_outs
            .iter()
            .enumerate()
            .filter(|(_, out)| out.emits.iter().any(|(oe, _)| *oe == e))
            .map(|(k, _)| seg_q[k])
            .collect();
        let pulse = or_all(&mut nl, pulses);
        nl.mark_output(format!("emit_{}", e.0), pulse);
        emit_pulse.insert(e, pulse);
        let arms: Vec<(NetId, Bus)> = seg_outs
            .iter()
            .enumerate()
            .flat_map(|(k, out)| {
                let sq = seg_q[k];
                out.emits
                    .iter()
                    .filter(|(oe, _)| *oe == e)
                    .filter_map(move |(_, v)| v.clone().map(|bus| (sq, bus)))
                    .collect::<Vec<_>>()
            })
            .collect();
        if !arms.is_empty() {
            let bus = onehot_merge(&mut nl, w, &arms);
            emit_value.insert(e, bus);
        }
    }

    // Memory port.
    let read_arms: Vec<(NetId, Bus)> = seg_outs
        .iter()
        .enumerate()
        .filter_map(|(k, out)| match &out.mem {
            Some((false, addr, _)) => Some((seg_q[k], addr.clone())),
            _ => None,
        })
        .collect();
    let write_arms: Vec<(NetId, Bus, Bus)> = seg_outs
        .iter()
        .enumerate()
        .filter_map(|(k, out)| match &out.mem {
            Some((true, addr, Some(data))) => Some((seg_q[k], addr.clone(), data.clone())),
            _ => None,
        })
        .collect();
    let mem_re = or_all(&mut nl, read_arms.iter().map(|&(s, _)| s).collect());
    let mem_we = or_all(&mut nl, write_arms.iter().map(|&(s, _, _)| s).collect());
    let mut addr_arms: Vec<(NetId, Bus)> = read_arms;
    addr_arms.extend(write_arms.iter().map(|(s, a, _)| (*s, a.clone())));
    let mem_addr = onehot_merge(&mut nl, w, &addr_arms);
    let wdata_arms: Vec<(NetId, Bus)> = write_arms
        .iter()
        .map(|(s, _, d)| (*s, d.clone()))
        .collect();
    let mem_wdata = onehot_merge(&mut nl, w, &wdata_arms);
    nl.mark_output("done", done);
    nl.mark_output("mem_re", mem_re);
    nl.mark_output("mem_we", mem_we);

    let gate_count = nl.gate_count();
    Ok(SynthesizedTransition {
        netlist: Arc::new(nl),
        ports: Ports {
            start,
            load,
            var_in,
            var_q,
            ev_in,
            mem_data_in,
            done,
            emit_pulse,
            emit_value,
            mem_re,
            mem_we,
            mem_addr,
            mem_wdata,
        },
        gate_count,
        segment_count: n_segs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfsm::{BlockId, Cfg, CfgBuilder, NullEnv};

    fn power() -> PowerConfig {
        PowerConfig::date2000_defaults()
    }

    fn synth_single(body: Cfg, n_vars: usize) -> HwCfsm {
        let mut b = Cfsm::builder("t");
        let s = b.state("s");
        for v in 0..n_vars {
            b.var(format!("v{v}"), 0);
        }
        b.transition(s, vec![EventId(0)], None, body, s);
        let m = b.finish().expect("valid machine");
        HwCfsm::synthesize(&m, &SynthConfig::with_width(16), &power()).expect("synthesizable")
    }

    #[test]
    fn straight_line_assign_matches_interpreter() {
        let body = Cfg::straight_line(vec![
            Stmt::Assign {
                var: VarId(0),
                expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(5)),
            },
            Stmt::Assign {
                var: VarId(1),
                expr: Expr::bin(BinOp::Mul, Expr::Var(VarId(0)), Expr::Const(3)),
            },
        ]);
        let mut vars = [10i64, 0];
        body.execute(&mut vars, &mut NullEnv);
        let mut hw = synth_single(body, 2);
        let run = hw.transition_mut(TransitionId(0)).run(&[10, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out, vars.to_vec());
        assert!(run.energy_j > 0.0);
        assert_eq!(run.cycles, 3); // load + start + 1 segment
    }

    #[test]
    fn chained_assigns_within_one_block() {
        // v1 = v0 + 1; v2 = v1 * 2 — same cycle, chained combinationally.
        let body = Cfg::straight_line(vec![
            Stmt::Assign {
                var: VarId(1),
                expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
            },
            Stmt::Assign {
                var: VarId(2),
                expr: Expr::bin(BinOp::Mul, Expr::Var(VarId(1)), Expr::Const(2)),
            },
        ]);
        let mut hw = synth_single(body, 3);
        let run = hw.transition_mut(TransitionId(0)).run(&[7, 0, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out, vec![7, 8, 16]);
    }

    #[test]
    fn branch_follows_condition() {
        let mut b = CfgBuilder::new();
        b.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(VarId(0)), Expr::Const(10)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        b.block(
            vec![Stmt::Assign {
                var: VarId(1),
                expr: Expr::Const(111),
            }],
            Terminator::Return,
        );
        b.block(
            vec![Stmt::Assign {
                var: VarId(1),
                expr: Expr::Const(222),
            }],
            Terminator::Return,
        );
        let body = b.finish().expect("valid");
        let mut hw = synth_single(body, 2);
        let run = hw.transition_mut(TransitionId(0)).run(&[20, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out[1], 111);
        let run = hw.transition_mut(TransitionId(0)).run(&[3, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out[1], 222);
    }

    #[test]
    fn loop_cycles_scale_with_iterations() {
        // while v0 > 0 { v1 += v0; v0 -= 1 }
        let mut b = CfgBuilder::new();
        b.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(VarId(0)), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        b.block(
            vec![
                Stmt::Assign {
                    var: VarId(1),
                    expr: Expr::add(Expr::Var(VarId(1)), Expr::Var(VarId(0))),
                },
                Stmt::Assign {
                    var: VarId(0),
                    expr: Expr::sub(Expr::Var(VarId(0)), Expr::Const(1)),
                },
            ],
            Terminator::Goto(BlockId(0)),
        );
        b.block(vec![], Terminator::Return);
        let body = b.finish().expect("valid");
        let mut hw = synth_single(body.clone(), 2);
        let r3 = hw.transition_mut(TransitionId(0)).run(&[3, 0], &|_| 0, &[]);
        assert_eq!(r3.vars_out, vec![0, 6]);
        let r6 = hw.transition_mut(TransitionId(0)).run(&[6, 0], &|_| 0, &[]);
        assert_eq!(r6.vars_out, vec![0, 21]);
        // 2 overhead + (1 head + 1 body) per iteration + final head + exit.
        assert_eq!(r3.cycles, 2 + 2 * 3 + 2);
        assert_eq!(r6.cycles, 2 + 2 * 6 + 2);
        assert!(r6.energy_j > r3.energy_j);
    }

    #[test]
    fn emit_pulses_and_values() {
        let body = Cfg::straight_line(vec![
            Stmt::Emit {
                event: EventId(1),
                value: Some(Expr::add(Expr::Var(VarId(0)), Expr::Const(2))),
            },
            Stmt::Emit {
                event: EventId(2),
                value: None,
            },
        ]);
        let mut hw = synth_single(body, 1);
        let run = hw.transition_mut(TransitionId(0)).run(&[40], &|_| 0, &[]);
        assert_eq!(
            run.emitted,
            vec![(EventId(1), Some(42)), (EventId(2), None)]
        );
    }

    #[test]
    fn event_value_inputs_reach_datapath() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::sub(Expr::EventValue(EventId(3)), Expr::Const(1)),
        }]);
        let mut hw = synth_single(body, 1);
        let run = hw
            .transition_mut(TransitionId(0))
            .run(&[0], &|e| if e == EventId(3) { 100 } else { 0 }, &[]);
        assert_eq!(run.vars_out, vec![99]);
    }

    #[test]
    fn memory_read_write_handshake() {
        // v0 = mem[8]; mem[12] = v0 + 1
        let body = Cfg::straight_line(vec![
            Stmt::MemRead {
                var: VarId(0),
                addr: Expr::Const(8),
            },
            Stmt::MemWrite {
                addr: Expr::Const(12),
                value: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
            },
        ]);
        let mut hw = synth_single(body, 1);
        let run = hw.transition_mut(TransitionId(0)).run(&[0], &|_| 0, &[55]);
        assert_eq!(run.vars_out, vec![55]);
        assert_eq!(run.mem_ops, vec![(8, false, 0), (12, true, 56)]);
    }

    #[test]
    fn division_is_unsupported() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::bin(BinOp::Div, Expr::Var(VarId(0)), Expr::Const(2)),
        }]);
        let mut b = Cfsm::builder("t");
        let s = b.state("s");
        b.var("v0", 0);
        b.transition(s, vec![EventId(0)], None, body, s);
        let m = b.finish().expect("valid machine");
        let err = HwCfsm::synthesize(&m, &SynthConfig::new(), &power());
        assert!(matches!(err, Err(SynthError::UnsupportedOp(_))));
    }

    #[test]
    fn constant_shifts_supported() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::bin(BinOp::Shl, Expr::Var(VarId(0)), Expr::Const(3)),
        }]);
        let mut hw = synth_single(body, 1);
        let run = hw.transition_mut(TransitionId(0)).run(&[5], &|_| 0, &[]);
        assert_eq!(run.vars_out, vec![40]);
    }

    #[test]
    fn energy_is_data_dependent() {
        // Same path, different data → different switched capacitance.
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(1),
            expr: Expr::bin(BinOp::Xor, Expr::Var(VarId(0)), Expr::Var(VarId(1))),
        }]);
        let mut hw = synth_single(body, 2);
        let t = hw.transition_mut(TransitionId(0));
        let quiet = t.run(&[0, 0], &|_| 0, &[]);
        let quiet2 = t.run(&[0, 0], &|_| 0, &[]);
        let busy = t.run(&[0xFFFF_i64 & 0x7FFF, 0x2AAA], &|_| 0, &[]);
        assert!(busy.energy_j > quiet2.energy_j);
        // Identical consecutive runs settle to identical energies.
        assert!((quiet2.energy_j - quiet.energy_j).abs() <= quiet.energy_j);
    }

    #[test]
    fn unreachable_segments_are_tolerated() {
        // A block that is never jumped to still synthesizes (tie low).
        let mut b = CfgBuilder::new();
        b.block(vec![], Terminator::Return);
        b.block(
            vec![Stmt::Assign {
                var: VarId(0),
                expr: Expr::Const(9),
            }],
            Terminator::Return,
        );
        let body = b.finish().expect("valid");
        let mut hw = synth_single(body, 1);
        let run = hw.transition_mut(TransitionId(0)).run(&[1], &|_| 0, &[]);
        assert_eq!(run.vars_out, vec![1]); // dead block never executed
    }

    #[test]
    fn resynthesis_shares_one_netlist() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(7)),
        }]);
        let a = synth_single(body.clone(), 1);
        let b = synth_single(body, 1);
        let ta = a.transition(TransitionId(0));
        let tb = b.transition(TransitionId(0));
        assert!(Arc::ptr_eq(ta.netlist(), tb.netlist()));
        // And the shared netlist also backs each instance's simulator.
        assert_eq!(ta.gate_count(), tb.gate_count());
    }

    #[test]
    fn memoized_instances_have_independent_state() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::bin(BinOp::Xor, Expr::Var(VarId(0)), Expr::Const(0x55)),
        }]);
        let mut a = synth_single(body.clone(), 1);
        let mut b = synth_single(body, 1);
        // Drive only `a`; `b`'s simulator state must be untouched.
        let ra = a.transition_mut(TransitionId(0)).run(&[0x7FFF], &|_| 0, &[]);
        let rb = b.transition_mut(TransitionId(0)).run(&[0x7FFF], &|_| 0, &[]);
        assert_eq!(ra.vars_out, rb.vars_out);
        // The driven instance has accumulated gate activity; both report
        // it independently.
        assert!(a.gate_stats().1 > 0);
        assert!(b.gate_stats().1 > 0);
    }

    #[test]
    fn different_specs_get_different_netlists() {
        let body_a = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
        }]);
        let body_b = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(2)),
        }]);
        let a = synth_single(body_a, 1);
        let b = synth_single(body_b, 1);
        assert!(!Arc::ptr_eq(
            a.transition(TransitionId(0)).netlist(),
            b.transition(TransitionId(0)).netlist()
        ));
    }

    #[test]
    fn cache_stats_observe_hits() {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(12345)),
        }]);
        let _first = synth_single(body.clone(), 1);
        let (hits_before, _) = synth_cache_stats();
        let _second = synth_single(body, 1);
        let (hits_after, _) = synth_cache_stats();
        assert!(hits_after > hits_before);
    }
}
