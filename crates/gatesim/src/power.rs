//! Switched-capacitance power model.
//!
//! Dynamic energy per net toggle is `½·Vdd²·C_net`, where `C_net` is the
//! driving gate's intrinsic output capacitance plus a per-fanout input
//! load. A small per-DFF clock-tree charge is added every cycle (clock
//! power does not depend on data activity). This is the same first-order
//! model the SIS power estimator used, which the paper's hardware numbers
//! are based on.

use crate::netlist::Netlist;

/// Technology / electrical parameters of the hardware power model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Input load added to a net per fanout, in femtofarads.
    pub cap_per_fanout_ff: f64,
    /// Clock-tree capacitance charged per DFF per cycle, in femtofarads.
    pub clock_cap_per_dff_ff: f64,
}

impl PowerConfig {
    /// Paper-era defaults: Vdd = 3.3 V (§5.3), 1.5 fF/fanout, 4 fF of
    /// clock load per flop.
    pub fn date2000_defaults() -> Self {
        PowerConfig {
            vdd: 3.3,
            cap_per_fanout_ff: 1.5,
            clock_cap_per_dff_ff: 4.0,
        }
    }

    /// Energy in joules to charge `cap_ff` femtofarads once.
    pub fn switch_energy_j(&self, cap_ff: f64) -> f64 {
        0.5 * self.vdd * self.vdd * cap_ff * 1e-15
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig::date2000_defaults()
    }
}

/// Per-net effective capacitances for a netlist under a [`PowerConfig`].
#[derive(Debug, Clone)]
pub struct CapacitanceMap {
    caps_ff: Vec<f64>,
    clock_energy_per_cycle_j: f64,
}

impl CapacitanceMap {
    /// Computes effective capacitances for `netlist`.
    pub fn new(netlist: &Netlist, config: &PowerConfig) -> Self {
        let fanouts = netlist.fanouts();
        let caps_ff = netlist
            .gates()
            .iter()
            .zip(&fanouts)
            .map(|(g, &f)| g.kind.intrinsic_cap_ff() + f as f64 * config.cap_per_fanout_ff)
            .collect();
        let clock_energy_per_cycle_j = config
            .switch_energy_j(netlist.dff_count() as f64 * config.clock_cap_per_dff_ff);
        CapacitanceMap {
            caps_ff,
            clock_energy_per_cycle_j,
        }
    }

    /// Effective capacitance of a net in femtofarads.
    pub fn cap_ff(&self, net: u32) -> f64 {
        self.caps_ff[net as usize]
    }

    /// Clock-tree energy charged every cycle, in joules.
    pub fn clock_energy_per_cycle_j(&self) -> f64 {
        self.clock_energy_per_cycle_j
    }

    /// Number of nets covered.
    pub fn len(&self) -> usize {
        self.caps_ff.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.caps_ff.is_empty()
    }
}

/// A cycle-by-cycle energy report, as produced by the hardware simulator
/// ("report power consumed on demand at cycle-level accuracy", §3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyReport {
    /// Energy per simulated cycle, in joules.
    pub per_cycle_j: Vec<f64>,
}

impl EnergyReport {
    /// Total energy over all cycles, in joules.
    pub fn total_j(&self) -> f64 {
        self.per_cycle_j.iter().sum()
    }

    /// Number of cycles covered.
    pub fn cycles(&self) -> usize {
        self.per_cycle_j.len()
    }

    /// Average power in watts at the given clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if no cycles were recorded or `freq_hz` is not positive.
    pub fn average_power_w(&self, freq_hz: f64) -> f64 {
        assert!(!self.per_cycle_j.is_empty(), "no cycles recorded");
        assert!(freq_hz > 0.0, "clock frequency must be positive");
        self.total_j() / (self.per_cycle_j.len() as f64 / freq_hz)
    }

    /// Appends another report.
    pub fn extend(&mut self, other: &EnergyReport) {
        self.per_cycle_j.extend_from_slice(&other.per_cycle_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{GateKind, Netlist};

    #[test]
    fn switch_energy_scales_with_cap_and_vdd() {
        let c = PowerConfig {
            vdd: 2.0,
            cap_per_fanout_ff: 0.0,
            clock_cap_per_dff_ff: 0.0,
        };
        // ½·4·1fF = 2e-15 J
        assert!((c.switch_energy_j(1.0) - 2e-15).abs() < 1e-25);
        let c33 = PowerConfig::date2000_defaults();
        assert!(c33.switch_energy_j(10.0) > c33.switch_energy_j(1.0));
    }

    #[test]
    fn capacitance_includes_fanout_load() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.gate(GateKind::Not, vec![a]);
        let _y = n.gate(GateKind::And, vec![a, x]);
        let cfg = PowerConfig {
            vdd: 3.3,
            cap_per_fanout_ff: 2.0,
            clock_cap_per_dff_ff: 0.0,
        };
        let caps = CapacitanceMap::new(&n, &cfg);
        // a drives 2 loads, x drives 1.
        assert!((caps.cap_ff(a.0) - (GateKind::Input.intrinsic_cap_ff() + 4.0)).abs() < 1e-12);
        assert!((caps.cap_ff(x.0) - (GateKind::Not.intrinsic_cap_ff() + 2.0)).abs() < 1e-12);
        assert_eq!(caps.clock_energy_per_cycle_j(), 0.0);
        assert_eq!(caps.len(), 3);
    }

    #[test]
    fn clock_energy_scales_with_dffs() {
        let mut n = Netlist::new();
        let a = n.input();
        let q1 = n.dff(a, false);
        let _q2 = n.dff(q1, false);
        let cfg = PowerConfig::date2000_defaults();
        let caps = CapacitanceMap::new(&n, &cfg);
        let expect = cfg.switch_energy_j(2.0 * cfg.clock_cap_per_dff_ff);
        assert!((caps.clock_energy_per_cycle_j() - expect).abs() < 1e-25);
    }

    #[test]
    fn report_totals_and_power() {
        let r = EnergyReport {
            per_cycle_j: vec![1e-12, 2e-12, 3e-12],
        };
        assert!((r.total_j() - 6e-12).abs() < 1e-20);
        assert_eq!(r.cycles(), 3);
        // 6 pJ over 3 cycles at 1 MHz = 3 µs → 2 µW.
        assert!((r.average_power_w(1e6) - 2e-6).abs() < 1e-12);
        let mut r2 = EnergyReport::default();
        r2.extend(&r);
        r2.extend(&r);
        assert_eq!(r2.cycles(), 6);
    }

    #[test]
    #[should_panic(expected = "no cycles")]
    fn empty_report_power_panics() {
        EnergyReport::default().average_power_w(1e6);
    }
}
