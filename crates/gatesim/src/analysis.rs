//! Netlist analysis and cleanup passes.
//!
//! Small structural analyses a hardware power flow needs around the
//! simulator: per-kind inventories, logic depth (the levelization SIS
//! performs before simulation), static capacitance totals, and a
//! dead-logic sweep that removes gates which can never influence an
//! output or a state element.

use crate::netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use crate::power::PowerConfig;
use std::collections::BTreeMap;
use std::fmt;

/// Structural statistics of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Gate count per kind name.
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Total gates.
    pub gates: usize,
    /// Sequential elements.
    pub dffs: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Named outputs.
    pub outputs: usize,
    /// Maximum combinational depth (levels from a source/DFF output to
    /// the deepest gate).
    pub depth: usize,
    /// Sum of all effective net capacitances, femtofarads.
    pub total_cap_ff: f64,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} gates ({} DFFs), {} inputs, {} outputs, depth {}, {:.1} fF total",
            self.gates, self.dffs, self.inputs, self.outputs, self.depth, self.total_cap_ff
        )?;
        for (k, n) in &self.by_kind {
            writeln!(f, "  {k:>7}: {n}")?;
        }
        Ok(())
    }
}

/// Computes structural statistics.
///
/// # Errors
///
/// Returns the netlist's [`ValidateNetlistError`] if it is malformed
/// (depth requires a valid levelization).
pub fn stats(netlist: &Netlist, power: &PowerConfig) -> Result<NetlistStats, ValidateNetlistError> {
    let order = netlist.validate()?;
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for g in netlist.gates() {
        let name = match g.kind {
            GateKind::Input => "input",
            GateKind::Const0 | GateKind::Const1 => "const",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
            GateKind::Dff(_) => "dff",
        };
        *by_kind.entry(name).or_insert(0) += 1;
    }
    // Depth: levels along the topological order.
    let mut level = vec![0usize; netlist.gate_count()];
    let mut depth = 0usize;
    for id in &order {
        let g = &netlist.gates()[id.0 as usize];
        let l = g
            .inputs
            .iter()
            .map(|i| level[i.0 as usize] + 1)
            .max()
            .unwrap_or(1);
        level[id.0 as usize] = l;
        depth = depth.max(l);
    }
    let caps = crate::power::CapacitanceMap::new(netlist, power);
    let total_cap_ff = (0..netlist.gate_count() as u32).map(|i| caps.cap_ff(i)).sum();
    Ok(NetlistStats {
        by_kind,
        gates: netlist.gate_count(),
        dffs: netlist.dff_count(),
        inputs: netlist.primary_inputs().len(),
        outputs: netlist.outputs().len(),
        depth,
        total_cap_ff,
    })
}

/// Removes gates that cannot reach any named output or state element,
/// returning the swept netlist and the number of gates removed.
///
/// Primary inputs are always kept (they are the module's interface).
/// Net ids are re-assigned; named outputs are preserved.
pub fn sweep_dead_logic(netlist: &Netlist) -> (Netlist, usize) {
    let n = netlist.gate_count();
    // Mark: outputs, DFFs and inputs are roots; walk fanin.
    let mut live = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for (_, net) in netlist.outputs() {
        stack.push(net.0);
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        if g.kind.is_sequential() || g.kind == GateKind::Input {
            stack.push(i as u32);
        }
    }
    while let Some(i) = stack.pop() {
        if live[i as usize] {
            continue;
        }
        live[i as usize] = true;
        for inp in &netlist.gates()[i as usize].inputs {
            stack.push(inp.0);
        }
    }
    let removed = live.iter().filter(|&&l| !l).count();
    // Rebuild with compacted ids.
    let mut remap = vec![NetId(0); n];
    let mut out = Netlist::new();
    for (i, g) in netlist.gates().iter().enumerate() {
        if !live[i] {
            continue;
        }
        // Inputs of live gates are live by construction.
        let id = out.gate(
            g.kind,
            g.inputs.iter().map(|inp| remap[inp.0 as usize]).collect(),
        );
        remap[i] = id;
    }
    for (name, net) in netlist.outputs() {
        out.mark_output(name.clone(), remap[net.0 as usize]);
    }
    (out, removed)
}

/// Propagates constants through combinational logic: gates whose output
/// is fixed regardless of the primary inputs are replaced by constants
/// (e.g. `AND(x, 0) → 0`, `XOR(c0, c1) → c0^c1`, a `MUX` with a constant
/// select collapses to the chosen input). Returns the optimized netlist
/// and the number of gates simplified.
///
/// Sequential elements and primary inputs are never touched; run
/// [`sweep_dead_logic`] afterwards to reclaim the disconnected logic.
pub fn propagate_constants(netlist: &Netlist) -> (Netlist, usize) {
    let order = match netlist.validate() {
        Ok(o) => o,
        Err(_) => return (netlist.clone(), 0),
    };
    let n = netlist.gate_count();
    // Known constant value per net (None = unknown / input / state).
    let mut konst: Vec<Option<bool>> = vec![None; n];
    for (i, g) in netlist.gates().iter().enumerate() {
        match g.kind {
            GateKind::Const0 => konst[i] = Some(false),
            GateKind::Const1 => konst[i] = Some(true),
            _ => {}
        }
    }
    let mut simplified = 0usize;
    // Replacement plan: either a constant or a passthrough to another net.
    #[derive(Clone, Copy)]
    enum Repl {
        Keep,
        Const(bool),
        Forward(NetId),
    }
    let mut plan: Vec<Repl> = vec![Repl::Keep; n];
    for id in &order {
        let g = &netlist.gates()[id.0 as usize];
        let ins: Vec<Option<bool>> = g.inputs.iter().map(|i| konst[i.0 as usize]).collect();
        let _all = |v: bool| ins.iter().all(|x| *x == Some(v));
        let any = |v: bool| ins.contains(&Some(v));
        let every_known = ins.iter().all(Option::is_some);
        let value: Option<Repl> = match g.kind {
            GateKind::Buf => ins[0].map(Repl::Const).or(Some(Repl::Forward(g.inputs[0]))),
            GateKind::Not => ins[0].map(|v| Repl::Const(!v)),
            GateKind::And => {
                if any(false) {
                    Some(Repl::Const(false))
                } else if every_known {
                    Some(Repl::Const(true))
                } else {
                    None
                }
            }
            GateKind::Or => {
                if any(true) {
                    Some(Repl::Const(true))
                } else if every_known {
                    Some(Repl::Const(false))
                } else {
                    None
                }
            }
            GateKind::Nand => {
                if any(false) {
                    Some(Repl::Const(true))
                } else if every_known {
                    Some(Repl::Const(false))
                } else {
                    None
                }
            }
            GateKind::Nor => {
                if any(true) {
                    Some(Repl::Const(false))
                } else if every_known {
                    Some(Repl::Const(true))
                } else {
                    None
                }
            }
            GateKind::Xor if every_known => Some(Repl::Const(
                ins.iter().fold(false, |a, x| a ^ x.unwrap_or(false)),
            )),
            GateKind::Xnor if every_known => Some(Repl::Const(
                !ins.iter().fold(false, |a, x| a ^ x.unwrap_or(false)),
            )),
            GateKind::Mux => match ins[0] {
                Some(sel) => {
                    let chosen = if sel { g.inputs[1] } else { g.inputs[2] };
                    match konst[chosen.0 as usize] {
                        Some(v) => Some(Repl::Const(v)),
                        None => Some(Repl::Forward(chosen)),
                    }
                }
                None => None,
            },
            _ => None,
        };
        if let Some(r) = value {
            // A pure passthrough of a Buf that was already a buffer is
            // not a simplification worth counting.
            let counts = !(matches!(r, Repl::Forward(_)) && g.kind == GateKind::Buf);
            if counts {
                simplified += 1;
            }
            if let Repl::Const(v) = r {
                konst[id.0 as usize] = Some(v);
            }
            plan[id.0 as usize] = r;
        }
        if let Repl::Forward(src) = plan[id.0 as usize] {
            konst[id.0 as usize] = konst[src.0 as usize];
        }
    }
    // Rebuild: constants become Const gates; forwards become buffers
    // (cleaned by a later sweep); everything else is kept with inputs
    // redirected through resolved forwards.
    let resolve = |mut id: NetId| -> NetId {
        // Follow forward chains.
        let mut hops = 0;
        while let Repl::Forward(next) = plan[id.0 as usize] {
            id = next;
            hops += 1;
            assert!(hops <= n, "forward cycle");
        }
        id
    };
    let mut out = Netlist::new();
    for (i, g) in netlist.gates().iter().enumerate() {
        match plan[i] {
            Repl::Const(v) => {
                out.constant(v);
            }
            Repl::Forward(_) => {
                let src = resolve(NetId(i as u32));
                out.gate(GateKind::Buf, vec![src]);
            }
            Repl::Keep => {
                let inputs = g.inputs.iter().map(|&x| resolve(x)).collect();
                out.gate(g.kind, inputs);
            }
        }
    }
    for (name, net) in netlist.outputs() {
        out.mark_output(name.clone(), *net);
    }
    (out, simplified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus;
    use crate::sim::Simulator;

    fn power() -> PowerConfig {
        PowerConfig::date2000_defaults()
    }

    #[test]
    fn stats_of_an_adder() {
        let mut nl = Netlist::new();
        let a = bus::input_bus(&mut nl, 8);
        let b = bus::input_bus(&mut nl, 8);
        let c0 = nl.constant(false);
        let (s, _) = bus::adder(&mut nl, &a, &b, c0);
        for (i, bit) in s.nets().iter().enumerate() {
            nl.mark_output(format!("s{i}"), *bit);
        }
        let st = stats(&nl, &power()).expect("valid");
        assert_eq!(st.inputs, 16);
        assert_eq!(st.outputs, 8);
        assert_eq!(st.dffs, 0);
        assert!(st.depth >= 8, "ripple carry is at least 8 deep, got {}", st.depth);
        assert!(st.total_cap_ff > 0.0);
        assert!(st.by_kind["xor"] >= 16);
        let text = st.to_string();
        assert!(text.contains("depth"));
    }

    #[test]
    fn depth_of_a_chain() {
        let mut nl = Netlist::new();
        let mut x = nl.input();
        for _ in 0..5 {
            x = nl.gate(GateKind::Not, vec![x]);
        }
        nl.mark_output("y", x);
        let st = stats(&nl, &power()).expect("valid");
        assert_eq!(st.depth, 5); // five inverter levels past the input
    }

    #[test]
    fn sweep_removes_unreachable_logic() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let used = nl.gate(GateKind::Not, vec![a]);
        let dead1 = nl.gate(GateKind::Not, vec![a]);
        let _dead2 = nl.gate(GateKind::And, vec![dead1, a]);
        nl.mark_output("y", used);
        let (swept, removed) = sweep_dead_logic(&nl);
        assert_eq!(removed, 2);
        assert_eq!(swept.gate_count(), 2);
        assert!(swept.validate().is_ok());
        // Behavior preserved.
        let y = swept.output("y").expect("kept");
        let a2 = swept.primary_inputs()[0];
        let mut sim = Simulator::new(&swept, power()).expect("valid");
        sim.set_input(a2, true);
        sim.step();
        assert!(!sim.value(y));
    }

    #[test]
    fn sweep_keeps_state_elements_and_their_cones() {
        let mut nl = Netlist::new();
        let d = nl.input();
        let inv = nl.gate(GateKind::Not, vec![d]);
        let _q = nl.dff(inv, false); // no output marked, but state is a root
        let (swept, removed) = sweep_dead_logic(&nl);
        assert_eq!(removed, 0);
        assert_eq!(swept.dff_count(), 1);
    }

    #[test]
    fn sweep_is_idempotent() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let x = nl.gate(GateKind::Buf, vec![a]);
        let _dead = nl.gate(GateKind::Not, vec![a]);
        nl.mark_output("x", x);
        let (once, r1) = sweep_dead_logic(&nl);
        let (twice, r2) = sweep_dead_logic(&once);
        assert_eq!(r1, 1);
        assert_eq!(r2, 0);
        assert_eq!(once.gate_count(), twice.gate_count());
    }

    #[test]
    fn constants_fold_through_logic() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let zero = nl.constant(false);
        let one = nl.constant(true);
        let and0 = nl.gate(GateKind::And, vec![a, zero]); // -> 0
        let or1 = nl.gate(GateKind::Or, vec![a, one]); // -> 1
        let x = nl.gate(GateKind::Xor, vec![zero, one]); // -> 1
        let live = nl.gate(GateKind::Xor, vec![a, and0]); // -> xor(a, 0): kept
        nl.mark_output("and0", and0);
        nl.mark_output("or1", or1);
        nl.mark_output("x", x);
        nl.mark_output("live", live);
        let (opt, n) = propagate_constants(&nl);
        assert!(n >= 3, "three gates fold, got {n}");
        assert!(opt.validate().is_ok());
        // Behavior preserved for both input values.
        let cfg = power();
        let mut s0 = Simulator::new(&nl, cfg.clone()).expect("valid");
        let mut s1 = Simulator::new(&opt, cfg).expect("valid");
        for v in [false, true] {
            s0.set_input(nl.primary_inputs()[0], v);
            s1.set_input(opt.primary_inputs()[0], v);
            s0.step();
            s1.step();
            for (name, net) in nl.outputs() {
                assert_eq!(
                    s0.value(*net),
                    s1.value(opt.output(name).expect("kept")),
                    "{name} at a={v}"
                );
            }
        }
    }

    #[test]
    fn mux_with_constant_select_collapses() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let sel = nl.constant(true);
        let m = nl.gate(GateKind::Mux, vec![sel, a, b]);
        nl.mark_output("m", m);
        let (opt, n) = propagate_constants(&nl);
        assert_eq!(n, 1);
        // The mux became a buffer of `a`.
        let mut sim = Simulator::new(&opt, power()).expect("valid");
        let inputs = opt.primary_inputs();
        sim.set_input(inputs[0], true);
        sim.set_input(inputs[1], false);
        sim.step();
        assert!(sim.value(opt.output("m").expect("kept")));
    }

    #[test]
    fn propagation_then_sweep_shrinks_constant_cones() {
        // A 4-bit adder with one constant operand: after folding and
        // sweeping, the carry chain partially evaporates.
        let mut nl = Netlist::new();
        let a = bus::input_bus(&mut nl, 4);
        let zero = bus::const_bus(&mut nl, 4, 0);
        let c0 = nl.constant(false);
        let (s, _) = bus::adder(&mut nl, &a, &zero, c0);
        for (i, bit) in s.nets().iter().enumerate() {
            nl.mark_output(format!("s{i}"), *bit);
        }
        let (folded, nf) = propagate_constants(&nl);
        let (swept, _) = sweep_dead_logic(&folded);
        assert!(nf > 0);
        assert!(swept.gate_count() < nl.gate_count());
        // x + 0 == x for all 16 inputs.
        let mut sim = Simulator::new(&swept, power()).expect("valid");
        let ins = swept.primary_inputs();
        for v in 0..16u64 {
            sim.set_input_bus(&ins, v);
            sim.step();
            let got = (0..4).fold(0u64, |acc, i| {
                acc | ((sim.value(swept.output(&format!("s{i}")).expect("kept")) as u64) << i)
            });
            assert_eq!(got, v, "identity add for {v}");
        }
    }

    #[test]
    fn propagation_never_touches_state() {
        let mut nl = Netlist::new();
        let zero = nl.constant(false);
        let q = nl.dff(zero, true); // constant D, but state stays a DFF
        nl.mark_output("q", q);
        let (opt, _) = propagate_constants(&nl);
        assert_eq!(opt.dff_count(), 1);
    }

    #[test]
    fn sweep_reduces_capacitance_and_energy() {
        // Dead toggling logic costs simulation energy; sweeping it must not
        // change outputs but removes the cost.
        let mut nl = Netlist::new();
        let a = nl.input();
        let keep = nl.gate(GateKind::Buf, vec![a]);
        // A dead 8-gate chain toggling with `a`.
        let mut x = a;
        for _ in 0..8 {
            x = nl.gate(GateKind::Not, vec![x]);
        }
        nl.mark_output("y", keep);
        let (swept, removed) = sweep_dead_logic(&nl);
        assert_eq!(removed, 8);
        let run = |n: &Netlist| {
            let mut sim = Simulator::new(n, power()).expect("valid");
            let input = n.primary_inputs()[0];
            let mut e = 0.0;
            for i in 0..10u64 {
                sim.set_input(input, i % 2 == 0);
                e += sim.step();
            }
            (e, sim.value(n.output("y").expect("y")))
        };
        let (e_full, y_full) = run(&nl);
        let (e_swept, y_swept) = run(&swept);
        assert_eq!(y_full, y_swept);
        assert!(e_swept < e_full);
    }
}
