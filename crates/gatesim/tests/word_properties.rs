//! Property tests for the word-level lane primitives and the 64-stream
//! lockstep simulator.
//!
//! Three families:
//!
//! * algebraic identities of the lane packer/unpacker and toggle words
//!   (round-trip identity; popcount of a toggle word equals the scalar
//!   transition count of the unpacked sequence);
//! * popcount energy accumulation: summing switch energy lane-by-lane
//!   over random toggle masks lands on the same floats as the scalar
//!   per-cycle accumulation, because both add the identical term list
//!   in the identical order;
//! * [`LaneSim`] equivalence: every lane of a lockstep run is
//!   bit-identical (per-cycle energy, values, toggles) to a scalar
//!   [`Simulator`] run of that lane's stream.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use detrand::Rng;
use gatesim::word::{broadcast, pack_lanes, toggle_word, unpack_lanes, LANES};
use gatesim::{
    GateKind, LaneSim, NetId, Netlist, PowerConfig, SimKernel, SimdLaneSim, Simulator,
};
use std::sync::Arc;

#[test]
fn pack_unpack_roundtrip_at_every_width() {
    let mut rng = Rng::new(0x9ACC_0001);
    for width in 1..=LANES {
        for _ in 0..20 {
            let bits: Vec<bool> = (0..width).map(|_| rng.bool_with(0.5)).collect();
            let word = pack_lanes(&bits);
            assert_eq!(unpack_lanes(word, width), bits, "width {width}");
            if width < LANES {
                assert_eq!(word >> width, 0, "no stray high bits at width {width}");
            }
        }
    }
}

#[test]
fn broadcast_packs_uniform_lanes() {
    for v in [false, true] {
        assert_eq!(broadcast(v), pack_lanes(&[v; LANES]));
    }
}

#[test]
fn toggle_word_popcount_equals_scalar_toggle_count() {
    let mut rng = Rng::new(0x9ACC_0002);
    for _ in 0..500 {
        let width = rng.usize_in(1, LANES + 1);
        let prev = rng.bool_with(0.5);
        let seq: Vec<bool> = (0..width).map(|_| rng.bool_with(0.5)).collect();
        // Scalar truth: count transitions against the running value.
        let mut scalar = 0u32;
        let mut cur = prev;
        for &b in &seq {
            if b != cur {
                scalar += 1;
                cur = b;
            }
        }
        let mask = if width == LANES {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let t = toggle_word(pack_lanes(&seq), prev) & mask;
        assert_eq!(t.count_ones(), scalar, "prev={prev} seq={seq:?}");
    }
}

#[test]
fn popcount_energy_accumulation_is_bit_exact() {
    // Per-lane energy folded from random toggle masks must equal the
    // scalar fold over the same per-cycle term lists, bitwise: both
    // sides add `clock + Σ (toggled net ascending) switch_energy` in
    // the same order, so this pins the accumulation-order contract the
    // kernels rely on.
    let config = PowerConfig::date2000_defaults();
    let mut rng = Rng::new(0x9ACC_0003);
    for _ in 0..50 {
        let n_nets = rng.usize_in(3, 12);
        let cycles = rng.usize_in(1, LANES + 1);
        let clock = 7.5e-15 * config.vdd * config.vdd; // arbitrary fixed clock term
        let caps: Vec<f64> = (0..n_nets).map(|_| rng.usize_in(1, 40) as f64 * 1.5).collect();
        // One toggle word per net (cycle-packed lanes).
        let masks: Vec<u64> = (0..n_nets)
            .map(|_| rng.u64_in(0, u64::MAX))
            .map(|w| {
                if cycles == LANES {
                    w
                } else {
                    w & ((1u64 << cycles) - 1)
                }
            })
            .collect();
        // Scalar: per cycle, walk nets ascending.
        let scalar: Vec<f64> = (0..cycles)
            .map(|j| {
                let mut e = clock;
                for (i, &m) in masks.iter().enumerate() {
                    if (m >> j) & 1 == 1 {
                        e += config.switch_energy_j(caps[i]);
                    }
                }
                e
            })
            .collect();
        // Word: identical double loop driven by the packed masks —
        // the shape `word_window`'s commit loop uses.
        let word: Vec<f64> = (0..cycles)
            .map(|j| {
                masks
                    .iter()
                    .enumerate()
                    .fold(clock, |e, (i, &m)| {
                        if (m >> j) & 1 == 1 {
                            e + config.switch_energy_j(caps[i])
                        } else {
                            e
                        }
                    })
            })
            .collect();
        let scalar_bits: Vec<u64> = scalar.iter().map(|e| e.to_bits()).collect();
        let word_bits: Vec<u64> = word.iter().map(|e| e.to_bits()).collect();
        assert_eq!(scalar_bits, word_bits);
        // And the popcount totals reconcile with per-cycle counting.
        let total: u32 = masks.iter().map(|m| m.count_ones()).sum();
        let per_cycle: u32 = (0..cycles)
            .map(|j| masks.iter().filter(|&&m| (m >> j) & 1 == 1).count() as u32)
            .sum();
        assert_eq!(total, per_cycle);
    }
}

/// A small random netlist generator (compact sibling of the
/// differential-fuzz generator; integration tests link separately).
fn random_netlist(rng: &mut Rng) -> Netlist {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = Vec::new();
    for _ in 0..rng.usize_in(2, 4) {
        nets.push(n.input());
    }
    if rng.bool_with(0.5) {
        nets.push(n.constant(true));
    }
    for _ in 0..rng.usize_in(8, 30) {
        let id = match rng.usize_in(0, 8) {
            0 => n.dff(*rng.choose(&nets), rng.bool_with(0.5)),
            1 => n.gate(GateKind::Not, vec![*rng.choose(&nets)]),
            2 => {
                let (s, a, b) = (*rng.choose(&nets), *rng.choose(&nets), *rng.choose(&nets));
                n.gate(GateKind::Mux, vec![s, a, b])
            }
            _ => {
                let kind = *rng.choose(&[GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand]);
                let ins = (0..rng.usize_in(1, 3)).map(|_| *rng.choose(&nets)).collect();
                n.gate(kind, ins)
            }
        };
        nets.push(id);
    }
    n.mark_output("last", *nets.last().expect("nonempty"));
    n
}

#[test]
fn every_lane_matches_a_scalar_run() {
    for case in 0..25u64 {
        let mut rng = Rng::new(0x1A9E_0000_0000_0000 | case);
        let netlist = Arc::new(random_netlist(&mut rng));
        let primary = netlist.primary_inputs();
        let lanes = rng.usize_in(1, 8);
        let cycles = rng.usize_in(5, 30);
        // Independent per-lane stimulus streams.
        let streams: Vec<Vec<Vec<(NetId, bool)>>> = (0..lanes)
            .map(|_| {
                (0..cycles)
                    .map(|_| {
                        primary
                            .iter()
                            .filter_map(|&p| {
                                rng.bool_with(0.4).then(|| (p, rng.bool_with(0.5)))
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut lane_sim = LaneSim::new(
            Arc::clone(&netlist),
            PowerConfig::date2000_defaults(),
            lanes,
        )
        .expect("valid");
        for j in 0..cycles {
            for (l, stream) in streams.iter().enumerate() {
                for &(net, v) in &stream[j] {
                    lane_sim.set_input(l, net, v);
                }
            }
            lane_sim.step();
        }
        let mut scalar_events = 0u64;
        for (l, stream) in streams.iter().enumerate() {
            let mut scalar = Simulator::with_kernel(
                Arc::clone(&netlist),
                PowerConfig::date2000_defaults(),
                SimKernel::EventDriven,
            )
            .expect("valid");
            for cyc in stream {
                for &(net, v) in cyc {
                    scalar.set_input(net, v);
                }
                scalar.step();
            }
            scalar_events += scalar.gate_events();
            let scalar_bits: Vec<u64> =
                scalar.report().per_cycle_j.iter().map(|e| e.to_bits()).collect();
            let lane_bits: Vec<u64> =
                lane_sim.report(l).per_cycle_j.iter().map(|e| e.to_bits()).collect();
            assert_eq!(scalar_bits, lane_bits, "case {case} lane {l} energy");
            for i in 0..netlist.gate_count() {
                let net = NetId(i as u32);
                assert_eq!(
                    lane_sim.value(net, l),
                    scalar.value(net),
                    "case {case} lane {l} net {i}"
                );
                assert_eq!(
                    lane_sim.toggle_count(net, l),
                    scalar.toggle_count(net),
                    "case {case} lane {l} net {i} toggles"
                );
            }
        }
        // Lockstep activity is the sum of the scalar runs' activity.
        assert_eq!(lane_sim.gate_events(), scalar_events, "case {case}");
    }
}

#[test]
fn simd_lane_counts_match_scalar_runs_at_width_boundaries() {
    // Lane counts straddling every lane-word width — a single lane, one
    // short of / exactly / one past the u64 word, and the wider 128-
    // and 256-lane words. Every lane of the width-erased [`SimdLaneSim`]
    // must be bit-identical (per-cycle energy, values, toggles) to its
    // own scalar event-driven run; the random netlists include DFF
    // chains, so flop edges land inside and across word boundaries.
    for &lanes in &[1usize, 63, 64, 65, 128, 256] {
        let mut rng = Rng::new(0x51D0_0000_0000_0000 | lanes as u64);
        let netlist = Arc::new(random_netlist(&mut rng));
        let primary = netlist.primary_inputs();
        let cycles = 20usize;
        let streams: Vec<Vec<Vec<(NetId, bool)>>> = (0..lanes)
            .map(|_| {
                (0..cycles)
                    .map(|_| {
                        primary
                            .iter()
                            .filter_map(|&p| {
                                rng.bool_with(0.4).then(|| (p, rng.bool_with(0.5)))
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut sim = SimdLaneSim::new(
            Arc::clone(&netlist),
            PowerConfig::date2000_defaults(),
            lanes,
        )
        .expect("valid");
        assert_eq!(sim.lanes(), lanes);
        for j in 0..cycles {
            for (l, stream) in streams.iter().enumerate() {
                for &(net, v) in &stream[j] {
                    sim.set_input(l, net, v);
                }
            }
            sim.step();
        }
        let mut scalar_events = 0u64;
        for (l, stream) in streams.iter().enumerate() {
            let mut scalar = Simulator::with_kernel(
                Arc::clone(&netlist),
                PowerConfig::date2000_defaults(),
                SimKernel::EventDriven,
            )
            .expect("valid");
            for cyc in stream {
                for &(net, v) in cyc {
                    scalar.set_input(net, v);
                }
                scalar.step();
            }
            scalar_events += scalar.gate_events();
            let scalar_bits: Vec<u64> =
                scalar.report().per_cycle_j.iter().map(|e| e.to_bits()).collect();
            let lane_bits: Vec<u64> =
                sim.report(l).per_cycle_j.iter().map(|e| e.to_bits()).collect();
            assert_eq!(scalar_bits, lane_bits, "lanes {lanes} lane {l} energy");
            for i in 0..netlist.gate_count() {
                let net = NetId(i as u32);
                assert_eq!(
                    sim.value(net, l),
                    scalar.value(net),
                    "lanes {lanes} lane {l} net {i}"
                );
                assert_eq!(
                    sim.toggle_count(net, l),
                    scalar.toggle_count(net),
                    "lanes {lanes} lane {l} net {i} toggles"
                );
            }
        }
        assert_eq!(sim.gate_events(), scalar_events, "lanes {lanes}");
    }
}
