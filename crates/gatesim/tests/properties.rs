//! Randomized (seeded, deterministic) tests: the synthesized hardware
//! must agree with the behavioral interpreter (gate-level vs.
//! discrete-event cross-validation), and the datapath library must match
//! two's-complement arithmetic. Formerly property-based; now driven by
//! the in-repo deterministic PRNG so the suite builds offline.

use cfsm::{
    BinOp, BlockId, Cfg, CfgBuilder, Cfsm, EventId, Expr, NullEnv, Stmt, Terminator, TransitionId,
    VarId,
};
use detrand::Rng;
use gatesim::bus::{self, Bus};
use gatesim::{HwCfsm, Netlist, PowerConfig, Simulator, SynthConfig};

const W: usize = 16;

fn eval_datapath(f: impl Fn(&mut Netlist, &Bus, &Bus) -> Bus, a: i64, b: i64) -> i64 {
    let mut nl = Netlist::new();
    let ba = bus::input_bus(&mut nl, W);
    let bb = bus::input_bus(&mut nl, W);
    let out = f(&mut nl, &ba, &bb);
    let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
    sim.set_input_bus(ba.nets(), bus::mask_to_width(a, W));
    sim.set_input_bus(bb.nets(), bus::mask_to_width(b, W));
    sim.step();
    bus::sign_extend(sim.value_bus(out.nets()), W)
}

/// Ripple-carry adder == wrapping add (mod 2^16, sign-extended).
#[test]
fn adder_is_wrapping_add() {
    let mut rng = Rng::new(0x6A7E_0001);
    for _ in 0..64 {
        let a = rng.i64_in(-32768, 32768);
        let b = rng.i64_in(-32768, 32768);
        let got = eval_datapath(
            |nl, x, y| {
                let c0 = nl.constant(false);
                bus::adder(nl, x, y, c0).0
            },
            a,
            b,
        );
        let want = bus::sign_extend(bus::mask_to_width(a.wrapping_add(b), W), W);
        assert_eq!(got, want, "a={a} b={b}");
    }
}

/// Subtractor == wrapping sub.
#[test]
fn subtractor_is_wrapping_sub() {
    let mut rng = Rng::new(0x6A7E_0002);
    for _ in 0..64 {
        let a = rng.i64_in(-32768, 32768);
        let b = rng.i64_in(-32768, 32768);
        let got = eval_datapath(|nl, x, y| bus::subtractor(nl, x, y).0, a, b);
        let want = bus::sign_extend(bus::mask_to_width(a.wrapping_sub(b), W), W);
        assert_eq!(got, want, "a={a} b={b}");
    }
}

/// Multiplier == low 16 bits of the product.
#[test]
fn multiplier_is_wrapping_mul() {
    let mut rng = Rng::new(0x6A7E_0003);
    for _ in 0..64 {
        let a = rng.i64_in(-256, 256);
        let b = rng.i64_in(-256, 256);
        let got = eval_datapath(bus::multiplier, a, b);
        let want = bus::sign_extend(bus::mask_to_width(a.wrapping_mul(b), W), W);
        assert_eq!(got, want, "a={a} b={b}");
    }
}

/// Signed comparator agrees with i64 comparison for in-range values.
#[test]
fn comparator_is_signed_lt() {
    let mut rng = Rng::new(0x6A7E_0004);
    for _ in 0..64 {
        let a = rng.i64_in(-32768, 32768);
        let b = rng.i64_in(-32768, 32768);
        let mut nl = Netlist::new();
        let ba = bus::input_bus(&mut nl, W);
        let bb = bus::input_bus(&mut nl, W);
        let lt = bus::less_than_signed(&mut nl, &ba, &bb);
        let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
        sim.set_input_bus(ba.nets(), bus::mask_to_width(a, W));
        sim.set_input_bus(bb.nets(), bus::mask_to_width(b, W));
        sim.step();
        assert_eq!(sim.value(lt), a < b, "a={a} b={b}");
    }
}

/// Synthesized hardware agrees with the behavioral interpreter on a
/// data-dependent loop: same final variables, and the HW cycle count
/// equals overhead + path length.
#[test]
fn hw_matches_interpreter_on_loops() {
    let mut rng = Rng::new(0x6A7E_0005);
    for _ in 0..32 {
        let n = rng.i64_in(0, 40);
        let step = rng.i64_in(1, 5);
        // while v0 > 0 { v1 = v1 + v0; v0 = v0 - step }
        let v0 = VarId(0);
        let v1 = VarId(1);
        let mut cb = CfgBuilder::new();
        cb.block(
            vec![],
            Terminator::Branch {
                cond: Expr::gt(Expr::Var(v0), Expr::Const(0)),
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        );
        cb.block(
            vec![
                Stmt::Assign { var: v1, expr: Expr::add(Expr::Var(v1), Expr::Var(v0)) },
                Stmt::Assign { var: v0, expr: Expr::sub(Expr::Var(v0), Expr::Const(step)) },
            ],
            Terminator::Goto(BlockId(0)),
        );
        cb.block(
            vec![Stmt::Emit { event: EventId(1), value: Some(Expr::Var(v1)) }],
            Terminator::Return,
        );
        let body = cb.finish().expect("valid cfg");

        // Behavioral execution.
        let mut vars = [n, 0i64];
        let exec = body.execute(&mut vars, &mut NullEnv);

        // Hardware execution.
        let mut mb = Cfsm::builder("m");
        let s = mb.state("s");
        mb.var("v0", 0);
        mb.var("v1", 0);
        mb.transition(s, vec![EventId(0)], None, body, s);
        let machine = mb.finish().expect("valid machine");
        let mut hw = HwCfsm::synthesize(
            &machine,
            &SynthConfig::with_width(16),
            &PowerConfig::date2000_defaults(),
        )
        .expect("synthesizable");
        let run = hw.transition_mut(TransitionId(0)).run(&[n, 0], &|_| 0, &[]);

        assert_eq!(&run.vars_out, &vars.to_vec(), "n={n} step={step}");
        assert_eq!(&run.emitted, &exec.emitted, "n={n} step={step}");
        // 2 overhead cycles + one cycle per block visited (no mem ops).
        assert_eq!(run.cycles, 2 + exec.trace.len() as u64, "n={n} step={step}");
        assert!(run.energy_j > 0.0, "n={n} step={step}");
    }
}

/// Straight-line arithmetic agrees between HW and interpreter for
/// arbitrary in-range inputs.
#[test]
fn hw_matches_interpreter_on_arith() {
    let mut rng = Rng::new(0x6A7E_0006);
    for _ in 0..64 {
        let a = rng.i64_in(-1000, 1000);
        let b = rng.i64_in(-1000, 1000);
        let v0 = VarId(0);
        let v1 = VarId(1);
        let v2 = VarId(2);
        let body = Cfg::straight_line(vec![
            Stmt::Assign { var: v2, expr: Expr::bin(BinOp::Xor, Expr::Var(v0), Expr::Var(v1)) },
            Stmt::Assign {
                var: v2,
                expr: Expr::add(
                    Expr::Var(v2),
                    Expr::bin(BinOp::And, Expr::Var(v0), Expr::Var(v1)),
                ),
            },
            Stmt::Assign { var: v0, expr: Expr::eq(Expr::Var(v2), Expr::Var(v1)) },
        ]);
        let mut vars = [a, b, 0i64];
        body.execute(&mut vars, &mut NullEnv);

        let mut mb = Cfsm::builder("m");
        let s = mb.state("s");
        for name in ["a", "b", "c"] {
            mb.var(name, 0);
        }
        mb.transition(s, vec![EventId(0)], None, body, s);
        let machine = mb.finish().expect("valid machine");
        let mut hw = HwCfsm::synthesize(
            &machine,
            &SynthConfig::with_width(16),
            &PowerConfig::date2000_defaults(),
        )
        .expect("synthesizable");
        let run = hw.transition_mut(TransitionId(0)).run(&[a, b, 0], &|_| 0, &[]);
        assert_eq!(run.vars_out, vars.to_vec(), "a={a} b={b}");
    }
}
