//! Randomized (seeded, deterministic) tests over generated netlists:
//! BLIF round-trips and the dead-logic sweep must preserve observable
//! behavior for *any* structurally valid design, not just the
//! handcrafted ones. Formerly property-based; now driven by the in-repo
//! deterministic PRNG so the suite builds offline.

use detrand::Rng;
use gatesim::{analysis, blif, GateKind, NetId, Netlist, PowerConfig, Simulator};

/// Builds a random structurally valid netlist (gates only reference
/// earlier nets, so the result is always a DAG).
fn gen_netlist(rng: &mut Rng) -> (Netlist, u32) {
    let n_inputs = rng.u64_in(2, 6) as u32;
    let n_gates = rng.usize_in(1, 40);
    let n_outputs = rng.u64_in(1, 4) as u8;
    let mut nl = Netlist::new();
    let inputs: Vec<NetId> = (0..n_inputs).map(|_| nl.input()).collect();
    let _ = &inputs;
    for _ in 0..n_gates {
        let avail = nl.gate_count() as u64;
        let kind_sel = rng.u64_in(0, 10);
        let a = rng.u64_in(0, avail);
        let b = rng.u64_in(0, avail);
        let c = rng.u64_in(0, avail);
        let pick = |x: u64| NetId(x as u32);
        match kind_sel {
            0 => {
                nl.gate(GateKind::Not, vec![pick(a)]);
            }
            1 => {
                nl.gate(GateKind::Buf, vec![pick(a)]);
            }
            2 => {
                nl.gate(GateKind::And, vec![pick(a), pick(b)]);
            }
            3 => {
                nl.gate(GateKind::Or, vec![pick(a), pick(b)]);
            }
            4 => {
                nl.gate(GateKind::Xor, vec![pick(a), pick(b)]);
            }
            5 => {
                nl.gate(GateKind::Nand, vec![pick(a), pick(b)]);
            }
            6 => {
                nl.gate(GateKind::Nor, vec![pick(a), pick(b)]);
            }
            7 => {
                nl.gate(GateKind::Xnor, vec![pick(a), pick(b)]);
            }
            8 => {
                nl.gate(GateKind::Mux, vec![pick(a), pick(b), pick(c)]);
            }
            _ => {
                nl.dff(pick(a), a % 2 == 0);
            }
        }
    }
    let total = nl.gate_count() as u32;
    for k in 0..n_outputs {
        let net = NetId((total - 1).saturating_sub(k as u32));
        nl.mark_output(format!("o{k}"), net);
    }
    assert!(nl.validate().is_ok(), "generated netlist must validate");
    (nl, n_inputs)
}

/// Drives both netlists with the same stimulus and compares the named
/// outputs cycle by cycle.
fn equivalent(a: &Netlist, b: &Netlist, n_inputs: u32, seed: u64) -> bool {
    let cfg = PowerConfig::date2000_defaults();
    let mut sa = Simulator::new(a, cfg.clone()).expect("a valid");
    let mut sb = Simulator::new(b, cfg).expect("b valid");
    let ia = a.primary_inputs();
    let ib = b.primary_inputs();
    let mut x = seed | 1;
    for _ in 0..24 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (x >> 32) & ((1u64 << n_inputs) - 1);
        sa.set_input_bus(&ia, v);
        sb.set_input_bus(&ib, v);
        sa.step();
        sb.step();
        for (name, net) in a.outputs() {
            let other = b.output(name).expect("output preserved");
            if sa.value(*net) != sb.value(other) {
                return false;
            }
        }
    }
    true
}

/// BLIF round-trips preserve gate counts and observable behavior.
#[test]
fn blif_roundtrip_preserves_behavior() {
    let mut rng = Rng::new(0x0E71_0001);
    for case in 0..40 {
        let (nl, n_inputs) = gen_netlist(&mut rng);
        let seed = rng.next_u64();
        let text = blif::to_blif(&nl, "rand");
        let back = blif::from_blif(&text).expect("round-trip parses");
        assert_eq!(back.gate_count(), nl.gate_count(), "case {case}");
        assert_eq!(back.dff_count(), nl.dff_count(), "case {case}");
        assert!(equivalent(&nl, &back, n_inputs, seed), "case {case}");
    }
}

/// Sweeping dead logic preserves the behavior of every named output
/// and never grows the netlist.
#[test]
fn sweep_preserves_observable_behavior() {
    let mut rng = Rng::new(0x0E71_0002);
    for case in 0..40 {
        let (nl, n_inputs) = gen_netlist(&mut rng);
        let seed = rng.next_u64();
        let (swept, removed) = analysis::sweep_dead_logic(&nl);
        assert!(swept.gate_count() + removed == nl.gate_count(), "case {case}");
        assert!(swept.validate().is_ok(), "case {case}");
        assert!(equivalent(&nl, &swept, n_inputs, seed), "case {case}");
    }
}

/// Constant propagation preserves observable behavior and never
/// increases the gate count after a sweep.
#[test]
fn constant_propagation_preserves_behavior() {
    let mut rng = Rng::new(0x0E71_0003);
    for case in 0..40 {
        let (nl, n_inputs) = gen_netlist(&mut rng);
        let seed = rng.next_u64();
        let (folded, _) = analysis::propagate_constants(&nl);
        assert!(folded.validate().is_ok(), "case {case}");
        assert!(equivalent(&nl, &folded, n_inputs, seed), "case {case}");
        let (cleaned, _) = analysis::sweep_dead_logic(&folded);
        assert!(cleaned.gate_count() <= nl.gate_count(), "case {case}");
        assert!(equivalent(&nl, &cleaned, n_inputs, seed), "case {case}");
    }
}

/// Statistics never fail on valid netlists, and depth is bounded by
/// the combinational gate count.
#[test]
fn stats_are_sane() {
    let mut rng = Rng::new(0x0E71_0004);
    for case in 0..40 {
        let (nl, _) = gen_netlist(&mut rng);
        let st = analysis::stats(&nl, &PowerConfig::date2000_defaults()).expect("valid");
        assert_eq!(st.gates, nl.gate_count(), "case {case}");
        assert!(st.depth <= st.gates, "case {case}");
        assert!(st.total_cap_ff >= 0.0, "case {case}");
        assert_eq!(st.dffs, nl.dff_count(), "case {case}");
    }
}

/// Simulation energy is non-negative and deterministic for any
/// netlist and stimulus.
#[test]
fn simulation_energy_nonnegative_and_deterministic() {
    let mut rng = Rng::new(0x0E71_0005);
    for case in 0..40 {
        let (nl, n_inputs) = gen_netlist(&mut rng);
        let seed = rng.next_u64();
        let run = || {
            let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
            let inputs = nl.primary_inputs();
            let mut x = seed | 1;
            let mut total = 0.0;
            for _ in 0..16 {
                x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
                sim.set_input_bus(&inputs, x & ((1u64 << n_inputs) - 1));
                let e = sim.step();
                assert!(e >= 0.0, "case {case}");
                total += e;
            }
            total
        };
        assert_eq!(run().to_bits(), run().to_bits(), "case {case}");
    }
}
