//! Property tests over randomly generated netlists: BLIF round-trips
//! and the dead-logic sweep must preserve observable behavior for *any*
//! structurally valid design, not just the handcrafted ones.

use gatesim::{analysis, blif, GateKind, NetId, Netlist, PowerConfig, Simulator};
use proptest::prelude::*;

/// A recipe for one random gate: kind selector and input selectors
/// (resolved modulo the nets available at creation time).
type GateRecipe = (u8, u16, u16, u16);

fn arb_netlist() -> impl Strategy<Value = (Netlist, u32)> {
    (
        2u32..6,                                        // primary inputs
        prop::collection::vec(any::<GateRecipe>(), 1..40), // gates
        1u8..4,                                         // outputs to mark
    )
        .prop_map(|(n_inputs, recipes, n_outputs)| {
            let mut nl = Netlist::new();
            let inputs: Vec<NetId> = (0..n_inputs).map(|_| nl.input()).collect();
            let _ = &inputs;
            for (kind_sel, a, b, c) in recipes {
                let avail = nl.gate_count() as u16;
                let pick = |x: u16| NetId((x % avail) as u32);
                match kind_sel % 10 {
                    0 => {
                        nl.gate(GateKind::Not, vec![pick(a)]);
                    }
                    1 => {
                        nl.gate(GateKind::Buf, vec![pick(a)]);
                    }
                    2 => {
                        nl.gate(GateKind::And, vec![pick(a), pick(b)]);
                    }
                    3 => {
                        nl.gate(GateKind::Or, vec![pick(a), pick(b)]);
                    }
                    4 => {
                        nl.gate(GateKind::Xor, vec![pick(a), pick(b)]);
                    }
                    5 => {
                        nl.gate(GateKind::Nand, vec![pick(a), pick(b)]);
                    }
                    6 => {
                        nl.gate(GateKind::Nor, vec![pick(a), pick(b)]);
                    }
                    7 => {
                        nl.gate(GateKind::Xnor, vec![pick(a), pick(b)]);
                    }
                    8 => {
                        nl.gate(GateKind::Mux, vec![pick(a), pick(b), pick(c)]);
                    }
                    _ => {
                        nl.dff(pick(a), a % 2 == 0);
                    }
                }
            }
            let total = nl.gate_count() as u32;
            for k in 0..n_outputs {
                let net = NetId((total - 1).saturating_sub(k as u32));
                nl.mark_output(format!("o{k}"), net);
            }
            (nl, n_inputs)
        })
        // Gates only reference earlier nets, so the result is always a DAG.
        .prop_filter("netlist validates", |(nl, _)| nl.validate().is_ok())
}

/// Drives both netlists with the same stimulus and compares the named
/// outputs cycle by cycle.
fn equivalent(a: &Netlist, b: &Netlist, n_inputs: u32, seed: u64) -> bool {
    let cfg = PowerConfig::date2000_defaults();
    let mut sa = Simulator::new(a, cfg.clone()).expect("a valid");
    let mut sb = Simulator::new(b, cfg).expect("b valid");
    let ia = a.primary_inputs();
    let ib = b.primary_inputs();
    let mut x = seed | 1;
    for _ in 0..24 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (x >> 32) & ((1u64 << n_inputs) - 1);
        sa.set_input_bus(&ia, v);
        sb.set_input_bus(&ib, v);
        sa.step();
        sb.step();
        for (name, net) in a.outputs() {
            let other = b.output(name).expect("output preserved");
            if sa.value(*net) != sb.value(other) {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// BLIF round-trips preserve gate counts and observable behavior.
    #[test]
    fn blif_roundtrip_preserves_behavior((nl, n_inputs) in arb_netlist(), seed in any::<u64>()) {
        let text = blif::to_blif(&nl, "rand");
        let back = blif::from_blif(&text).expect("round-trip parses");
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(back.dff_count(), nl.dff_count());
        prop_assert!(equivalent(&nl, &back, n_inputs, seed));
    }

    /// Sweeping dead logic preserves the behavior of every named output
    /// and never grows the netlist.
    #[test]
    fn sweep_preserves_observable_behavior((nl, n_inputs) in arb_netlist(), seed in any::<u64>()) {
        let (swept, removed) = analysis::sweep_dead_logic(&nl);
        prop_assert!(swept.gate_count() + removed == nl.gate_count());
        prop_assert!(swept.validate().is_ok());
        prop_assert!(equivalent(&nl, &swept, n_inputs, seed));
    }

    /// Constant propagation preserves observable behavior and never
    /// increases the gate count after a sweep.
    #[test]
    fn constant_propagation_preserves_behavior((nl, n_inputs) in arb_netlist(), seed in any::<u64>()) {
        let (folded, _) = analysis::propagate_constants(&nl);
        prop_assert!(folded.validate().is_ok());
        prop_assert!(equivalent(&nl, &folded, n_inputs, seed));
        let (cleaned, _) = analysis::sweep_dead_logic(&folded);
        prop_assert!(cleaned.gate_count() <= nl.gate_count());
        prop_assert!(equivalent(&nl, &cleaned, n_inputs, seed));
    }

    /// Statistics never fail on valid netlists, and depth is bounded by
    /// the combinational gate count.
    #[test]
    fn stats_are_sane((nl, _) in arb_netlist()) {
        let st = analysis::stats(&nl, &PowerConfig::date2000_defaults()).expect("valid");
        prop_assert_eq!(st.gates, nl.gate_count());
        prop_assert!(st.depth <= st.gates);
        prop_assert!(st.total_cap_ff >= 0.0);
        prop_assert_eq!(st.dffs, nl.dff_count());
    }

    /// Simulation energy is non-negative and deterministic for any
    /// netlist and stimulus.
    #[test]
    fn simulation_energy_nonnegative_and_deterministic((nl, n_inputs) in arb_netlist(), seed in any::<u64>()) {
        let run = || {
            let mut sim = Simulator::new(&nl, PowerConfig::date2000_defaults()).expect("valid");
            let inputs = nl.primary_inputs();
            let mut x = seed | 1;
            let mut total = 0.0;
            for _ in 0..16 {
                x = x.wrapping_mul(48271) % 0x7FFF_FFFF;
                sim.set_input_bus(&inputs, x & ((1u64 << n_inputs) - 1));
                let e = sim.step();
                prop_assert!(e >= 0.0);
                total += e;
            }
            Ok(total)
        };
        let a: Result<f64, TestCaseError> = run();
        let b: Result<f64, TestCaseError> = run();
        prop_assert_eq!(a?.to_bits(), b?.to_bits());
    }
}
