//! Differential fuzzing of the two simulation kernels.
//!
//! The event-driven kernel's contract with the oblivious reference path
//! is *bitwise* identity — same settled values every cycle, same toggle
//! counters, same per-cycle energy down to the last mantissa bit (the
//! float accumulation order is part of the contract). This suite builds
//! random netlists (including DFF-to-DFF chains, constants, forward
//! references into flop outputs, and reconvergent logic) and drives both
//! kernels with identical random input sequences.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use detrand::Rng;
use gatesim::{GateKind, NetId, Netlist, PowerConfig, SimKernel, Simulator};
use std::sync::Arc;

/// Builds a random valid netlist: inputs and constants first, then a
/// mix of combinational gates (fan-ins drawn from already-built nets,
/// keeping the combinational part acyclic) and DFFs whose D input may
/// reference any earlier net — including other flop outputs directly,
/// the shift-register case that exercises simultaneous edge sampling.
fn random_netlist(rng: &mut Rng) -> Netlist {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = Vec::new();
    for _ in 0..rng.usize_in(1, 5) {
        nets.push(n.input());
    }
    if rng.bool_with(0.7) {
        nets.push(n.constant(true));
    }
    if rng.bool_with(0.5) {
        nets.push(n.constant(false));
    }
    let n_gates = rng.usize_in(10, 60);
    for _ in 0..n_gates {
        let pick = rng.usize_in(0, 10);
        let id = match pick {
            0 => {
                let d = *rng.choose(&nets);
                n.dff(d, rng.bool_with(0.5))
            }
            1 => n.gate(GateKind::Buf, vec![*rng.choose(&nets)]),
            2 => n.gate(GateKind::Not, vec![*rng.choose(&nets)]),
            3 => {
                let sel = *rng.choose(&nets);
                let a = *rng.choose(&nets);
                let b = *rng.choose(&nets);
                n.gate(GateKind::Mux, vec![sel, a, b])
            }
            _ => {
                let kind = *rng.choose(&[
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xor,
                    GateKind::Xnor,
                ]);
                let arity = rng.usize_in(1, 4);
                let ins = (0..arity).map(|_| *rng.choose(&nets)).collect();
                n.gate(kind, ins)
            }
        };
        nets.push(id);
    }
    n.mark_output("last", *nets.last().expect("nonempty"));
    n
}

/// One cycle-by-cycle observation: every net's value plus the energy bit
/// pattern, so any divergence pins the exact cycle and net.
type CycleObs = (u64, Vec<bool>);

fn drive(
    netlist: &Arc<Netlist>,
    kernel: SimKernel,
    stimulus: &[Vec<(NetId, bool)>],
) -> (Vec<CycleObs>, Vec<u64>, Vec<u64>) {
    let mut sim = Simulator::with_kernel(Arc::clone(netlist), PowerConfig::date2000_defaults(), kernel)
        .expect("random netlists are valid by construction");
    let mut per_cycle = Vec::new();
    for inputs in stimulus {
        for &(net, v) in inputs {
            sim.set_input(net, v);
        }
        let e = sim.step();
        let values = (0..netlist.gate_count())
            .map(|i| sim.value(NetId(i as u32)))
            .collect();
        per_cycle.push((e.to_bits(), values));
    }
    let toggles = (0..netlist.gate_count())
        .map(|i| sim.toggle_count(NetId(i as u32)))
        .collect();
    let report_bits = sim.report().per_cycle_j.iter().map(|e| e.to_bits()).collect();
    (per_cycle, toggles, report_bits)
}

#[test]
fn event_driven_matches_oblivious_over_120_random_cases() {
    for case in 0..120u64 {
        let mut rng = Rng::new(0x9E37_79B9_7F4A_7C15 ^ case);
        let netlist = Arc::new(random_netlist(&mut rng));
        let primary = netlist.primary_inputs();
        let cycles = rng.usize_in(10, 40);
        let stimulus: Vec<Vec<(NetId, bool)>> = (0..cycles)
            .map(|_| {
                primary
                    .iter()
                    .filter_map(|&p| rng.bool_with(0.6).then(|| (p, rng.bool_with(0.5))))
                    .collect()
            })
            .collect();
        let event = drive(&netlist, SimKernel::EventDriven, &stimulus);
        let oblivious = drive(&netlist, SimKernel::Oblivious, &stimulus);
        assert_eq!(
            event, oblivious,
            "kernel divergence in case {case} ({} gates, {} cycles)",
            netlist.gate_count(),
            cycles
        );
    }
}

#[test]
fn event_driven_never_evaluates_more_gates_than_oblivious() {
    for case in 0..20u64 {
        let mut rng = Rng::new(0xC0FF_EE00_0000_0000 | case);
        let netlist = Arc::new(random_netlist(&mut rng));
        let primary = netlist.primary_inputs();
        let power = PowerConfig::date2000_defaults();
        let mut ev = Simulator::with_kernel(Arc::clone(&netlist), power.clone(), SimKernel::EventDriven)
            .expect("valid");
        let mut ob =
            Simulator::with_kernel(Arc::clone(&netlist), power, SimKernel::Oblivious).expect("valid");
        for _ in 0..30 {
            for &p in &primary {
                let v = rng.bool_with(0.5);
                ev.set_input(p, v);
                ob.set_input(p, v);
            }
            assert_eq!(ev.step().to_bits(), ob.step().to_bits());
        }
        assert!(
            ev.gate_evals() <= ob.gate_evals(),
            "case {case}: event-driven did more work ({} vs {})",
            ev.gate_evals(),
            ob.gate_evals()
        );
        assert_eq!(ev.gate_events(), ob.gate_events());
    }
}

#[test]
fn env_escape_hatch_selects_the_oblivious_kernel() {
    // Own-process integration test: safe to touch the environment.
    std::env::set_var("GATESIM_OBLIVIOUS", "1");
    assert_eq!(SimKernel::from_env(), SimKernel::Oblivious);
    std::env::set_var("GATESIM_OBLIVIOUS", "0");
    assert_eq!(SimKernel::from_env(), SimKernel::EventDriven);
    std::env::remove_var("GATESIM_OBLIVIOUS");
    assert_eq!(SimKernel::from_env(), SimKernel::EventDriven);
}
