//! Differential fuzzing of the four simulation kernels.
//!
//! The event-driven, word-parallel, and simd kernels' contract with the
//! oblivious reference path is *bitwise* identity — same settled values
//! every cycle, same toggle counters, same per-cycle energy down to the
//! last mantissa bit (the float accumulation order is part of the
//! contract). This suite builds random netlists (including DFF-to-DFF
//! chains, constants, forward references into flop outputs, and
//! reconvergent logic) and drives all kernels with identical random
//! input sequences, both cycle by cycle and through the batched
//! [`Simulator::run_block`] surface at block-boundary cycle counts
//! (1, 63, 64, 65, 127, 128, 255, 256, 257 — the word kernel's 64-cycle
//! and the simd kernel's 256-cycle windows must be exact at and across
//! every boundary).

#![allow(clippy::expect_used, clippy::unwrap_used)]

use detrand::Rng;
use gatesim::{GateKind, NetId, Netlist, PowerConfig, SimKernel, Simulator};
use std::sync::Arc;

const KERNELS: [SimKernel; 4] = [
    SimKernel::Oblivious,
    SimKernel::EventDriven,
    SimKernel::WordParallel,
    SimKernel::Simd,
];

/// Builds a random valid netlist: inputs and constants first, then a
/// mix of combinational gates (fan-ins drawn from already-built nets,
/// keeping the combinational part acyclic) and DFFs whose D input may
/// reference any earlier net — including other flop outputs directly,
/// the shift-register case that exercises simultaneous edge sampling.
fn random_netlist(rng: &mut Rng) -> Netlist {
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = Vec::new();
    for _ in 0..rng.usize_in(1, 5) {
        nets.push(n.input());
    }
    if rng.bool_with(0.7) {
        nets.push(n.constant(true));
    }
    if rng.bool_with(0.5) {
        nets.push(n.constant(false));
    }
    let n_gates = rng.usize_in(10, 60);
    for _ in 0..n_gates {
        let pick = rng.usize_in(0, 10);
        let id = match pick {
            0 => {
                let d = *rng.choose(&nets);
                n.dff(d, rng.bool_with(0.5))
            }
            1 => n.gate(GateKind::Buf, vec![*rng.choose(&nets)]),
            2 => n.gate(GateKind::Not, vec![*rng.choose(&nets)]),
            3 => {
                let sel = *rng.choose(&nets);
                let a = *rng.choose(&nets);
                let b = *rng.choose(&nets);
                n.gate(GateKind::Mux, vec![sel, a, b])
            }
            _ => {
                let kind = *rng.choose(&[
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xor,
                    GateKind::Xnor,
                ]);
                let arity = rng.usize_in(1, 4);
                let ins = (0..arity).map(|_| *rng.choose(&nets)).collect();
                n.gate(kind, ins)
            }
        };
        nets.push(id);
    }
    n.mark_output("last", *nets.last().expect("nonempty"));
    n
}

/// Random per-cycle input forcings over the primary inputs.
fn random_stimulus(
    netlist: &Netlist,
    cycles: usize,
    change_p: f64,
    rng: &mut Rng,
) -> Vec<Vec<(NetId, bool)>> {
    let primary = netlist.primary_inputs();
    (0..cycles)
        .map(|_| {
            primary
                .iter()
                .filter_map(|&p| rng.bool_with(change_p).then(|| (p, rng.bool_with(0.5))))
                .collect()
        })
        .collect()
}

/// One cycle-by-cycle observation: every net's value plus the energy bit
/// pattern, so any divergence pins the exact cycle and net.
type CycleObs = (u64, Vec<bool>);

fn drive(
    netlist: &Arc<Netlist>,
    kernel: SimKernel,
    stimulus: &[Vec<(NetId, bool)>],
) -> (Vec<CycleObs>, Vec<u64>, Vec<u64>) {
    let mut sim = Simulator::with_kernel(Arc::clone(netlist), PowerConfig::date2000_defaults(), kernel)
        .expect("random netlists are valid by construction");
    let mut per_cycle = Vec::new();
    for inputs in stimulus {
        for &(net, v) in inputs {
            sim.set_input(net, v);
        }
        let e = sim.step();
        let values = (0..netlist.gate_count())
            .map(|i| sim.value(NetId(i as u32)))
            .collect();
        per_cycle.push((e.to_bits(), values));
    }
    let toggles = (0..netlist.gate_count())
        .map(|i| sim.toggle_count(NetId(i as u32)))
        .collect();
    let report_bits = sim.report().per_cycle_j.iter().map(|e| e.to_bits()).collect();
    (per_cycle, toggles, report_bits)
}

/// Drives the stimulus through `run_block` in segments (the word kernel
/// gets genuine multi-cycle windows), observing block energies, the
/// full report, final values, toggles, and activity counters.
fn drive_blocks(
    netlist: &Arc<Netlist>,
    kernel: SimKernel,
    stimulus: &[Vec<(NetId, bool)>],
    segments: &[usize],
) -> (Vec<u64>, Vec<u64>, Vec<bool>, Vec<u64>, u64) {
    let mut sim = Simulator::with_kernel(Arc::clone(netlist), PowerConfig::date2000_defaults(), kernel)
        .expect("valid");
    let mut block_energy = Vec::new();
    let mut pos = 0usize;
    for &seg in segments {
        let end = (pos + seg).min(stimulus.len());
        block_energy.push(sim.run_block(&stimulus[pos..end]).to_bits());
        pos = end;
        if pos == stimulus.len() {
            break;
        }
    }
    if pos < stimulus.len() {
        block_energy.push(sim.run_block(&stimulus[pos..]).to_bits());
    }
    let report = sim.report().per_cycle_j.iter().map(|e| e.to_bits()).collect();
    let values = (0..netlist.gate_count())
        .map(|i| sim.value(NetId(i as u32)))
        .collect();
    let toggles = (0..netlist.gate_count())
        .map(|i| sim.toggle_count(NetId(i as u32)))
        .collect();
    (block_energy, report, values, toggles, sim.gate_events())
}

#[test]
fn all_kernels_match_oblivious_over_120_random_cases() {
    for case in 0..120u64 {
        let mut rng = Rng::new(0x9E37_79B9_7F4A_7C15 ^ case);
        let netlist = Arc::new(random_netlist(&mut rng));
        let cycles = rng.usize_in(10, 40);
        let stimulus = random_stimulus(&netlist, cycles, 0.6, &mut rng);
        let reference = drive(&netlist, SimKernel::Oblivious, &stimulus);
        for kernel in [SimKernel::EventDriven, SimKernel::WordParallel, SimKernel::Simd] {
            let got = drive(&netlist, kernel, &stimulus);
            assert_eq!(
                got, reference,
                "{kernel:?} diverged in case {case} ({} gates, {} cycles)",
                netlist.gate_count(),
                cycles
            );
        }
    }
}

#[test]
fn batched_blocks_match_at_word_boundaries() {
    // Cycle counts straddling both windowed lane widths: a single
    // cycle, one short of / exactly / one past the word kernel's
    // 64-cycle window, and the same lattice around the simd kernel's
    // 256-cycle window. Segment sizes are randomized so chunk seams
    // land everywhere, and the input change probability is low enough
    // that windows actually span many cycles.
    for &cycles in &[1usize, 63, 64, 65, 127, 128, 255, 256, 257] {
        for case in 0..30u64 {
            let mut rng = Rng::new(0xB10C_0000_0000_0000 ^ (cycles as u64) << 32 ^ case);
            let netlist = Arc::new(random_netlist(&mut rng));
            let stimulus = random_stimulus(&netlist, cycles, 0.1, &mut rng);
            let segments: Vec<usize> = {
                let mut segs = Vec::new();
                let mut left = cycles;
                while left > 0 {
                    let s = rng.usize_in(1, left.min(300) + 1);
                    segs.push(s);
                    left -= s;
                }
                segs
            };
            let reference = drive_blocks(&netlist, SimKernel::Oblivious, &stimulus, &segments);
            for kernel in [SimKernel::EventDriven, SimKernel::WordParallel, SimKernel::Simd] {
                let got = drive_blocks(&netlist, kernel, &stimulus, &segments);
                assert_eq!(
                    got, reference,
                    "{kernel:?} diverged at {cycles} cycles, case {case}, segments {segments:?}"
                );
            }
        }
    }
}

#[test]
fn block_boundary_dff_edges_shift_exactly() {
    // A deterministic long shift register crossing several window
    // boundaries: after `len + k` cycles the head pulse sits `k` flops
    // deep regardless of how the cycles were batched.
    let mut n = Netlist::new();
    let head = n.input();
    let mut q = n.dff(head, false);
    let mut taps = vec![q];
    for _ in 0..69 {
        q = n.dff(q, false);
        taps.push(q);
    }
    n.mark_output("tail", q);
    let netlist = Arc::new(n);
    // Pulse the head for exactly one cycle, then hold low for 127 more.
    let mut stimulus: Vec<Vec<(NetId, bool)>> = vec![vec![(head, true)]];
    stimulus.push(vec![(head, false)]);
    stimulus.extend(std::iter::repeat_with(Vec::new).take(126));
    let whole = drive_blocks(&netlist, SimKernel::Oblivious, &stimulus, &[128]);
    for segments in [vec![128usize], vec![1, 63, 64], vec![65, 63], vec![64, 64]] {
        // Kernels agree on everything including per-block energy totals
        // when driven through the same segmentation...
        let reference = drive_blocks(&netlist, SimKernel::Oblivious, &stimulus, &segments);
        for kernel in [SimKernel::EventDriven, SimKernel::WordParallel, SimKernel::Simd] {
            let got = drive_blocks(&netlist, kernel, &stimulus, &segments);
            assert_eq!(got, reference, "{kernel:?} diverged with segments {segments:?}");
        }
        // ...and the per-cycle history (energy, values, toggles, events)
        // is invariant under the batching itself: only the per-block
        // energy grouping may differ from the single-block run.
        assert_eq!(
            (&reference.1, &reference.2, &reference.3, reference.4),
            (&whole.1, &whole.2, &whole.3, whole.4),
            "segmentation {segments:?} changed per-cycle behaviour"
        );
    }
    // And the pulse really is where it should be: 128 cycles deep into
    // a 70-flop chain, long gone off the end; re-run to mid-flight.
    let mut sim = Simulator::with_kernel(
        Arc::clone(&netlist),
        PowerConfig::date2000_defaults(),
        SimKernel::WordParallel,
    )
    .expect("valid");
    sim.run_block(&stimulus[..40]);
    // The pulse is latched into taps[0] at the first cycle's edge and
    // advances one flop per cycle: after 40 cycles it sits at taps[39].
    for (i, &tap) in taps.iter().enumerate() {
        assert_eq!(sim.value(tap), i == 39, "tap {i} after 40 cycles");
    }
}

#[test]
fn event_driven_never_evaluates_more_gates_than_oblivious() {
    for case in 0..20u64 {
        let mut rng = Rng::new(0xC0FF_EE00_0000_0000 | case);
        let netlist = Arc::new(random_netlist(&mut rng));
        let primary = netlist.primary_inputs();
        let power = PowerConfig::date2000_defaults();
        let mut ev = Simulator::with_kernel(Arc::clone(&netlist), power.clone(), SimKernel::EventDriven)
            .expect("valid");
        let mut ob =
            Simulator::with_kernel(Arc::clone(&netlist), power, SimKernel::Oblivious).expect("valid");
        for _ in 0..30 {
            for &p in &primary {
                let v = rng.bool_with(0.5);
                ev.set_input(p, v);
                ob.set_input(p, v);
            }
            assert_eq!(ev.step().to_bits(), ob.step().to_bits());
        }
        assert!(
            ev.gate_evals() <= ob.gate_evals(),
            "case {case}: event-driven did more work ({} vs {})",
            ev.gate_evals(),
            ob.gate_evals()
        );
        assert_eq!(ev.gate_events(), ob.gate_events());
    }
}

#[test]
fn eval_slots_are_comparable_across_kernels() {
    // `gate_evals` counts kernel work units (one word op can cover 64
    // cycles), `gate_eval_slots` counts committed (gate, cycle) slots.
    // The scalar kernels keep the two equal by definition; the word
    // kernel's slots can exceed its evals but never its own
    // cycle-equivalent sweep of the same dirty gates.
    for case in 0..20u64 {
        let mut rng = Rng::new(0x5107_5000_0000_0000 | case);
        let netlist = Arc::new(random_netlist(&mut rng));
        let stimulus = random_stimulus(&netlist, 100, 0.05, &mut rng);
        let power = PowerConfig::date2000_defaults();
        let mut sims: Vec<Simulator> = KERNELS
            .iter()
            .map(|&k| Simulator::with_kernel(Arc::clone(&netlist), power.clone(), k).expect("valid"))
            .collect();
        for sim in &mut sims {
            sim.run_block(&stimulus);
        }
        let [ob, ev, word, simd] = &sims[..] else {
            unreachable!("four kernels")
        };
        assert_eq!(ob.gate_evals(), ob.gate_eval_slots());
        assert_eq!(ev.gate_evals(), ev.gate_eval_slots());
        assert!(word.gate_evals() <= word.gate_eval_slots());
        assert!(simd.gate_evals() <= simd.gate_eval_slots());
        // Kernel-invariant activity: the cross-kernel comparison metric.
        assert_eq!(word.gate_events(), ob.gate_events(), "case {case}");
        assert_eq!(ev.gate_events(), ob.gate_events(), "case {case}");
        assert_eq!(simd.gate_events(), ob.gate_events(), "case {case}");
    }
}

#[test]
fn env_escape_hatches_select_kernels() {
    // Own-process integration test: safe to touch the environment (the
    // sibling tests in this binary pin kernels explicitly and never
    // read it).
    std::env::set_var("GATESIM_OBLIVIOUS", "1");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::Oblivious));
    std::env::set_var("GATESIM_OBLIVIOUS", "0");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::EventDriven));
    // GATESIM_KERNEL mirrors the legacy hatch and takes precedence.
    std::env::set_var("GATESIM_KERNEL", "word");
    std::env::set_var("GATESIM_OBLIVIOUS", "1");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::WordParallel));
    std::env::set_var("GATESIM_KERNEL", "oblivious");
    std::env::remove_var("GATESIM_OBLIVIOUS");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::Oblivious));
    std::env::set_var("GATESIM_KERNEL", "event");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::EventDriven));
    // Case-insensitive, including the simd kernel.
    std::env::set_var("GATESIM_KERNEL", "Simd");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::Simd));
    // Unknown values fail loudly instead of silently falling back.
    std::env::set_var("GATESIM_KERNEL", "turbo");
    let err = SimKernel::from_env().expect_err("unknown kernel must error");
    assert_eq!(err.value(), "turbo");
    std::env::remove_var("GATESIM_KERNEL");
    assert_eq!(SimKernel::from_env(), Ok(SimKernel::EventDriven));
}
