//! Cross-engine validation: the behavioral interpreter, the gate-level
//! hardware, and the instruction-set simulator must agree on *function*
//! for the same CFSM — three independently implemented engines, one
//! semantics. This is the property the co-estimation master's
//! correctness rests on.

use cfsm::{
    BlockId, CfgBuilder, Cfsm, EventId, Expr, NullEnv, Stmt, Terminator, TransitionId, VarId,
};
use gatesim::{HwCfsm, PowerConfig, SynthConfig};
use iss::{PowerModel, SwCfsm};

/// A machine mixing arithmetic, comparisons, a data-dependent loop and
/// event emission — the constructs the example systems rely on.
fn stress_machine() -> Cfsm {
    let n = VarId(0);
    let acc = VarId(1);
    let flag = VarId(2);
    let mut cb = CfgBuilder::new();
    // entry: flag = (n > 10); acc = acc ^ 0x3C
    cb.block(
        vec![
            Stmt::Assign {
                var: flag,
                expr: Expr::gt(Expr::Var(n), Expr::Const(10)),
            },
            Stmt::Assign {
                var: acc,
                expr: Expr::bin(cfsm::BinOp::Xor, Expr::Var(acc), Expr::Const(0x3C)),
            },
        ],
        Terminator::Goto(BlockId(1)),
    );
    // loop: while n > 0 { acc = (acc*3 + n) & 0x7FF; n -= 2 }
    cb.block(
        vec![],
        Terminator::Branch {
            cond: Expr::gt(Expr::Var(n), Expr::Const(0)),
            then_block: BlockId(2),
            else_block: BlockId(3),
        },
    );
    cb.block(
        vec![
            Stmt::Assign {
                var: acc,
                expr: Expr::bin(
                    cfsm::BinOp::And,
                    Expr::add(
                        Expr::bin(cfsm::BinOp::Mul, Expr::Var(acc), Expr::Const(3)),
                        Expr::Var(n),
                    ),
                    Expr::Const(0x7FF),
                ),
            },
            Stmt::Assign {
                var: n,
                expr: Expr::sub(Expr::Var(n), Expr::Const(2)),
            },
        ],
        Terminator::Goto(BlockId(1)),
    );
    // exit: emit RESULT(acc + flag)
    cb.block(
        vec![Stmt::Emit {
            event: EventId(1),
            value: Some(Expr::add(Expr::Var(acc), Expr::Var(flag))),
        }],
        Terminator::Return,
    );
    let body = cb.finish().expect("valid cfg");
    let mut b = Cfsm::builder("stress");
    let s = b.state("s");
    b.var("n", 0);
    b.var("acc", 0);
    b.var("flag", 0);
    b.transition(s, vec![EventId(0)], None, body, s);
    b.finish().expect("valid machine")
}

#[test]
fn three_engines_agree_on_function() {
    let machine = stress_machine();
    let mut hw = HwCfsm::synthesize(
        &machine,
        &SynthConfig::with_width(16),
        &PowerConfig::date2000_defaults(),
    )
    .expect("synthesizable");
    let mut sw = SwCfsm::new(&machine, PowerModel::sparclite(), &|e| e == EventId(1))
        .expect("compiles");

    for n in [0i64, 1, 2, 7, 10, 11, 20, 33] {
        for acc in [0i64, 5, 100] {
            let vars_in = [n, acc, 0];
            // Behavioral reference.
            let mut vars = vars_in;
            let exec = machine.transitions()[0]
                .body
                .execute(&mut vars, &mut NullEnv);
            // Gate level.
            let hw_run = hw.transition_mut(TransitionId(0)).run(&vars_in, &|_| 0, &[]);
            assert_eq!(hw_run.vars_out, vars.to_vec(), "HW vars for n={n} acc={acc}");
            assert_eq!(hw_run.emitted, exec.emitted, "HW emissions for n={n}");
            // ISS.
            let sw_run = sw.run_transition(TransitionId(0), &vars_in, &|_| 0, &[]);
            assert_eq!(sw_run.vars_out, vars.to_vec(), "SW vars for n={n} acc={acc}");
            assert_eq!(sw_run.emitted, exec.emitted, "SW emissions for n={n}");
        }
    }
}

#[test]
fn hw_cycles_track_path_length_and_sw_cycles_track_instruction_count() {
    let machine = stress_machine();
    let mut hw = HwCfsm::synthesize(
        &machine,
        &SynthConfig::with_width(16),
        &PowerConfig::date2000_defaults(),
    )
    .expect("synthesizable");
    let mut sw =
        SwCfsm::new(&machine, PowerModel::sparclite(), &|_| true).expect("compiles");
    let mut prev_hw = 0;
    let mut prev_sw = 0;
    for n in [2i64, 8, 16, 32] {
        let hw_run = hw.transition_mut(TransitionId(0)).run(&[n, 0, 0], &|_| 0, &[]);
        let sw_run = sw.run_transition(TransitionId(0), &[n, 0, 0], &|_| 0, &[]);
        assert!(hw_run.cycles > prev_hw, "HW cycles grow with loop bound");
        assert!(sw_run.cycles > prev_sw, "SW cycles grow with loop bound");
        prev_hw = hw_run.cycles;
        prev_sw = sw_run.cycles;
        // The same work takes far fewer cycles in dedicated hardware.
        assert!(
            sw_run.cycles > hw_run.cycles,
            "SW {} vs HW {} cycles",
            sw_run.cycles,
            hw_run.cycles
        );
    }
}

#[test]
fn macromodel_estimate_bounds_detailed_sw_cost() {
    // The additive parameter-file estimate over-approximates the
    // optimized generated code for every input — conservatism is an
    // invariant, not a coincidence of one workload.
    let machine = stress_machine();
    let power = PowerModel::sparclite();
    let params = co_estimation::characterize_sw(&power);
    let mut sw = SwCfsm::new(&machine, power, &|_| true).expect("compiles");
    for n in [0i64, 4, 12, 30] {
        let mut vars = [n, 7, 0];
        let exec = machine.transitions()[0]
            .body
            .execute(&mut vars, &mut NullEnv);
        let (mm_cycles, mm_energy) = params.estimate(&exec.macro_ops);
        let run = sw.run_transition(TransitionId(0), &[n, 7, 0], &|_| 0, &[]);
        assert!(
            mm_energy > run.energy_j,
            "n={n}: macromodel {mm_energy:.3e} vs ISS {:.3e}",
            run.energy_j
        );
        assert!(
            mm_cycles > run.cycles,
            "n={n}: macromodel {mm_cycles} vs ISS {} cycles",
            run.cycles
        );
    }
}

#[test]
fn parameter_file_round_trips_through_text() {
    let pf = co_estimation::characterize_sw(&PowerModel::sparclite());
    let text = pf.to_text();
    let parsed = co_estimation::ParameterFile::from_text(&text).expect("parses");
    for &op in cfsm::ALL_MACRO_OPS {
        let a = pf.cost(op).expect("original");
        let b = parsed.cost(op).expect("parsed");
        assert_eq!(a.time_cycles, b.time_cycles, "{op}");
        assert_eq!(a.size_bytes, b.size_bytes, "{op}");
    }
}
