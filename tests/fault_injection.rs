//! Fault-matrix integration tests: every [`FaultPlan`] fault kind is
//! swept over the TCP/IP system under watchdog budgets. Whatever the
//! injection, a run must either quiesce ([`RunOutcome::Completed`]) or
//! trip a watchdog budget ([`RunOutcome::Degraded`]) — never deadlock
//! or panic — and its total energy must stay finite and non-negative.

use co_estimation::{
    AnomalyKind, CoSimConfig, CoSimReport, CoSimulator, FaultPlan, RunOutcome,
};
use desim::WatchdogConfig;
use systems::tcpip::{self, TcpIpParams};

fn tiny() -> TcpIpParams {
    TcpIpParams {
        num_packets: 4,
        len_range: (8, 16),
        pkt_period: 5_000,
        seed: 7,
    }
}

/// A watchdog tight enough to bound any pathological schedule the fault
/// matrix can produce, but far above the nominal run length.
fn guard() -> WatchdogConfig {
    WatchdogConfig {
        max_cycles: Some(2_000_000),
        max_events: Some(200_000),
        max_stagnant_events: Some(50_000),
        ..WatchdogConfig::unlimited()
    }
}

fn run_with(faults: FaultPlan) -> CoSimReport {
    let soc = tcpip::build(&tiny()).expect("valid params");
    let config = CoSimConfig::date2000_defaults()
        .with_faults(faults)
        .with_watchdog(guard());
    CoSimulator::new(soc, config).expect("builds").run()
}

#[test]
fn every_fault_kind_quiesces_or_trips_the_watchdog() {
    let matrix: Vec<(&str, FaultPlan)> = vec![
        ("drop", FaultPlan::new().drop_event(1, "CHK_GO")),
        ("duplicate", FaultPlan::new().duplicate_event(1, "PKT_READY")),
        ("delay", FaultPlan::new().delay_event(1, "CHK_SUM", 700)),
        (
            "freeze",
            FaultPlan::new().freeze_process(6_000, "checksum", 1_000_000_000),
        ),
        ("corrupt", FaultPlan::new().corrupt_energy(1, "create_pack", 100.0)),
        ("corrupt-nan", FaultPlan::new().corrupt_energy(1, "checksum", -1.0)),
        ("stall", FaultPlan::new().stall_bus(5_500, 3_000)),
        ("cache-miss", FaultPlan::new().force_cache_misses(1, 50)),
        (
            "combined",
            FaultPlan::new()
                .drop_event(1, "Q_POP")
                .duplicate_event(5_500, "PKT_READY")
                .stall_bus(10_000, 2_000)
                .corrupt_energy(1, "ip_check", 3.0)
                .force_cache_misses(1, 10),
        ),
    ];
    for (name, plan) in matrix {
        let r = run_with(plan);
        assert!(
            matches!(r.outcome, RunOutcome::Completed | RunOutcome::Degraded { .. }),
            "{name}: unexpected outcome {:?}",
            r.outcome
        );
        let e = r.total_energy_j();
        assert!(e.is_finite() && e >= 0.0, "{name}: energy {e}");
        assert!(
            r.anomalies.faults_injected() >= 1,
            "{name}: injection must be recorded, ledger: {}",
            r.anomalies
        );
    }
}

#[test]
fn freezing_the_checksum_process_degrades_via_the_watchdog() {
    // ISSUE acceptance scenario: freeze `checksum` mid-stream for an
    // absurd interval. ip_check is stuck in its wait state, so later
    // PKT_READY deliveries overwrite its single-place buffer, and the
    // unfreeze event lands far beyond the cycle budget — the watchdog
    // must end the run with a partial (Degraded) report.
    let r = run_with(FaultPlan::new().freeze_process(6_000, "checksum", 1_000_000_000));
    let RunOutcome::Degraded { reason } = &r.outcome else {
        panic!("expected a degraded run, got {:?}", r.outcome);
    };
    assert!(
        reason.contains("cycle"),
        "trip reason should mention the cycle budget: {reason}"
    );
    // The ledger names the injected fault...
    assert!(r.anomalies.iter().any(|a| matches!(
        &a.kind,
        AnomalyKind::FaultInjected { description } if description.contains("checksum")
    )));
    // ...and at least one resulting degradation beyond the injection
    // itself (lost events at the stalled pipeline stage, then the trip).
    assert!(
        r.anomalies.len() >= 2,
        "expected downstream anomalies, ledger: {}",
        r.anomalies
    );
    assert!(r
        .anomalies
        .iter()
        .any(|a| matches!(a.kind, AnomalyKind::WatchdogTrip { .. })));
    // Partial results are still accounted.
    let e = r.total_energy_j();
    assert!(e.is_finite() && e > 0.0);
}

#[test]
fn dropping_the_checksum_kick_sheds_work_but_completes() {
    let baseline = run_with(FaultPlan::none());
    assert_eq!(baseline.outcome, RunOutcome::Completed);
    let r = run_with(FaultPlan::new().drop_event(1, "CHK_GO"));
    assert_eq!(r.outcome, RunOutcome::Completed, "queue must still drain");
    assert!(r
        .anomalies
        .iter()
        .any(|a| matches!(&a.kind, AnomalyKind::EventShed { event } if event == "CHK_GO")));
    let fired = |rep: &CoSimReport| {
        rep.processes
            .iter()
            .find(|p| p.name == "checksum")
            .expect("checksum")
            .firings
    };
    assert!(
        fired(&r) < fired(&baseline),
        "dropping CHK_GO must cost checksum firings ({} vs {})",
        fired(&r),
        fired(&baseline)
    );
}

#[test]
fn empty_fault_plan_reproduces_the_seed_report_bitwise() {
    let soc = tcpip::build(&tiny()).expect("valid params");
    let seed = CoSimulator::new(soc, CoSimConfig::date2000_defaults())
        .expect("builds")
        .run();
    let instrumented = run_with(FaultPlan::none());
    assert_eq!(seed.outcome, RunOutcome::Completed);
    assert_eq!(instrumented.outcome, RunOutcome::Completed);
    assert_eq!(
        seed.total_energy_j().to_bits(),
        instrumented.total_energy_j().to_bits(),
        "empty fault plan must be bit-for-bit free"
    );
    assert_eq!(seed.total_cycles, instrumented.total_cycles);
    assert_eq!(seed.firings, instrumented.firings);
    assert_eq!(seed.bus.toggles, instrumented.bus.toggles);
    assert_eq!(seed.cache.misses, instrumented.cache.misses);
}

#[test]
fn unknown_fault_targets_are_typed_build_errors() {
    use co_estimation::BuildEstimatorError;
    let soc = tcpip::build(&tiny()).expect("valid params");
    let config = CoSimConfig::date2000_defaults()
        .with_faults(FaultPlan::new().freeze_process(1, "no_such_process", 10));
    assert!(matches!(
        CoSimulator::new(soc, config),
        Err(BuildEstimatorError::InvalidParams(_))
    ));
    let soc = tcpip::build(&tiny()).expect("valid params");
    let config = CoSimConfig::date2000_defaults()
        .with_faults(FaultPlan::new().drop_event(1, "NO_SUCH_EVENT"));
    assert!(matches!(
        CoSimulator::new(soc, config),
        Err(BuildEstimatorError::InvalidParams(_))
    ));
}

#[test]
fn combined_plan_partitions_the_ledger_per_fault_kind() {
    // One run, three fault mechanisms (drop + stall-bus + corrupt-energy):
    // the ledger must attribute each mechanism's consequences to its own
    // anomaly kind — injections to `FaultInjected`, the dropped delivery
    // to `EventShed`, the arbiter outage to `BusStalled`, the rejected
    // negative sample to `EnergyClamped` — and the run must still
    // terminate under the watchdog.
    let r = run_with(
        FaultPlan::new()
            .drop_event(1, "Q_POP")
            .stall_bus(5_500, 2_000)
            .corrupt_energy(1, "create_pack", -1.0),
    );
    assert!(
        matches!(r.outcome, RunOutcome::Completed | RunOutcome::Degraded { .. }),
        "combined plan must terminate, got {:?}",
        r.outcome
    );

    let count = |pred: &dyn Fn(&AnomalyKind) -> bool| {
        r.anomalies.iter().filter(|a| pred(&a.kind)).count()
    };
    let injected = count(&|k| matches!(k, AnomalyKind::FaultInjected { .. }));
    let shed = count(&|k| matches!(k, AnomalyKind::EventShed { .. }));
    let stalled = count(&|k| matches!(k, AnomalyKind::BusStalled { .. }));
    let clamped = count(&|k| matches!(k, AnomalyKind::EnergyClamped { .. }));
    assert_eq!(injected, 3, "three faults armed, ledger: {}", r.anomalies);
    assert!(shed >= 1, "dropped Q_POP not recorded: {}", r.anomalies);
    assert!(stalled >= 1, "bus stall not recorded: {}", r.anomalies);
    assert!(clamped >= 1, "clamped sample not recorded: {}", r.anomalies);

    // Every consequence entry carries its kind's own payload — spot-check
    // the partition is by mechanism, not a catch-all bucket.
    for a in r.anomalies.iter() {
        if let AnomalyKind::EventShed { event } = &a.kind {
            assert_eq!(event, "Q_POP");
        }
        if let AnomalyKind::EnergyClamped { process, raw_j } = &a.kind {
            assert_eq!(process, "create_pack");
            assert!(*raw_j < 0.0, "clamp recorded the rejected sample");
        }
    }
    let e = r.total_energy_j();
    assert!(e.is_finite() && e >= 0.0, "energy stayed sane: {e}");
}
