//! System-level kernel equivalence: every gate-simulation kernel —
//! event-driven (the default), oblivious, word-parallel, and simd —
//! must reproduce the exact same co-simulation report, golden snapshots
//! compared down to float bit patterns, on every reference system,
//! with trace sinks attached, and under fault injection.
//!
//! This is the system-level counterpart of the gatesim differential
//! fuzz suite: it runs the whole co-estimation stack (master, bus,
//! cache, synthesized hardware) under the `GATESIM_KERNEL` escape
//! hatch. The suite owns its process (integration tests link
//! separately), but its `#[test]` fns share that process, so every
//! environment mutation is serialized behind one lock.

use std::path::PathBuf;
use std::sync::Mutex;

use co_estimation::{CoSimConfig, CoSimulator, FaultPlan, SocDescription};
use desim::WatchdogConfig;
use soctrace::{MetricsSink, SharedSink};
use systems::automotive::{self, AutomotiveParams};
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

/// Serializes all `GATESIM_*` environment mutation across the tests in
/// this binary (they run on parallel threads within one process).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The four first-class kernels as `GATESIM_KERNEL` values; `None` is
/// "leave the environment alone" — the event-driven default.
const KERNELS: [(&str, Option<&str>); 4] = [
    ("event(default)", None),
    ("oblivious", Some("oblivious")),
    ("word", Some("word")),
    ("simd", Some("simd")),
];

/// Runs `f` with the gate-simulation kernel selection pinned to
/// `kernel`, holding the environment lock for the duration.
fn with_kernel<T>(kernel: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("GATESIM_OBLIVIOUS");
    match kernel {
        Some(k) => std::env::set_var("GATESIM_KERNEL", k),
        None => std::env::remove_var("GATESIM_KERNEL"),
    }
    let out = f();
    std::env::remove_var("GATESIM_KERNEL");
    out
}

fn small_tcpip() -> SocDescription {
    tcpip::build(&TcpIpParams {
        num_packets: 10,
        len_range: (8, 24),
        pkt_period: 5_000,
        seed: 11,
    })
    .expect("valid params")
}

fn all_systems() -> Vec<(&'static str, SocDescription)> {
    vec![
        ("tcpip", small_tcpip()),
        (
            "producer_consumer",
            producer_consumer::build(&ProducerConsumerParams::default()).expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&AutomotiveParams::default()).expect("valid params"),
        ),
    ]
}

/// Runs a system with a [`MetricsSink`] attached; returns the golden
/// snapshot plus the aggregated gate counters.
fn run_with_metrics(soc: SocDescription, config: CoSimConfig) -> (String, MetricsSink) {
    let metrics = SharedSink::new(MetricsSink::new());
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    sim.attach_trace(Box::new(metrics.clone()));
    let snapshot = sim.run().golden_snapshot();
    drop(sim);
    (snapshot, metrics.into_inner())
}

#[test]
fn every_kernel_reproduces_the_default_snapshot_on_all_systems() {
    for (system, soc) in all_systems() {
        let mut baseline: Option<(String, MetricsSink)> = None;
        for (name, kernel) in KERNELS {
            let (snapshot, metrics) = with_kernel(kernel, || {
                run_with_metrics(soc.clone(), CoSimConfig::date2000_defaults())
            });
            match &baseline {
                None => baseline = Some((snapshot, metrics)),
                Some((want_snap, want_metrics)) => {
                    assert_eq!(
                        &snapshot, want_snap,
                        "{system}: kernel {name} diverged from the default report"
                    );
                    // `gate_events` counts committed per-cycle gate
                    // output changes — kernel-invariant by contract, so
                    // cross-kernel MetricsSink aggregates stay
                    // comparable. `gate_evals` counts kernel work units
                    // (a word-parallel eval covers up to 64 cycles) and
                    // is allowed to differ.
                    assert_eq!(
                        metrics.gate_events, want_metrics.gate_events,
                        "{system}: kernel {name} changed the gate_events aggregate"
                    );
                    assert!(
                        metrics.gate_evals > 0,
                        "{system}: kernel {name} reported no gate work"
                    );
                }
            }
        }
    }
}

#[test]
fn kernels_stay_bitwise_identical_with_an_ndjson_trace_attached() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/traces");
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let mut baseline: Option<String> = None;
    for (name, kernel) in KERNELS {
        let path = dir.join(format!(
            "kernel_equivalence_{}.ndjson",
            name.replace(['(', ')'], "_")
        ));
        let snapshot = with_kernel(kernel, || {
            let mut sim =
                CoSimulator::new(small_tcpip(), CoSimConfig::date2000_defaults())
                    .expect("system builds");
            let file = std::fs::File::create(&path).expect("create trace file");
            sim.attach_trace(Box::new(soctrace::NdjsonSink::new(std::io::BufWriter::new(
                file,
            ))));
            let snapshot = sim.run().golden_snapshot();
            drop(sim.detach_trace()); // flush the NDJSON writer
            snapshot
        });
        let meta = std::fs::metadata(&path).expect("trace file exists");
        assert!(meta.len() > 0, "kernel {name}: trace produced no records");
        match &baseline {
            None => baseline = Some(snapshot),
            Some(want) => assert_eq!(
                &snapshot, want,
                "kernel {name} diverged with an NDJSON trace attached"
            ),
        }
    }
}

#[test]
fn kernels_agree_under_a_nonempty_fault_plan() {
    // A fault plan that perturbs the schedule (dropped kick-off event,
    // duplicated arrival, a bus stall) under a generous watchdog: the
    // degraded trajectory must still be kernel-independent, bit for bit.
    let faults = || {
        FaultPlan::new()
            .drop_event(1, "CHK_GO")
            .duplicate_event(5_500, "PKT_READY")
            .stall_bus(10_000, 2_000)
    };
    let guard = WatchdogConfig {
        max_cycles: Some(2_000_000),
        max_events: Some(200_000),
        max_stagnant_events: Some(50_000),
        ..WatchdogConfig::unlimited()
    };
    let mut baseline: Option<String> = None;
    for (name, kernel) in KERNELS {
        let config = CoSimConfig::date2000_defaults()
            .with_faults(faults())
            .with_watchdog(guard.clone());
        let snapshot = with_kernel(kernel, || {
            CoSimulator::new(small_tcpip(), config)
                .expect("system builds")
                .run()
                .golden_snapshot()
        });
        match &baseline {
            None => baseline = Some(snapshot),
            Some(want) => assert_eq!(
                &snapshot, want,
                "kernel {name} diverged under fault injection"
            ),
        }
    }
}

#[test]
fn legacy_oblivious_escape_hatch_still_reproduces_the_default_report() {
    let run = || {
        CoSimulator::new(small_tcpip(), CoSimConfig::date2000_defaults())
            .expect("system builds")
            .run()
            .golden_snapshot()
    };
    let event_driven = with_kernel(None, run);
    let oblivious = {
        let _guard = ENV_LOCK.lock().expect("env lock");
        std::env::remove_var("GATESIM_KERNEL");
        std::env::set_var("GATESIM_OBLIVIOUS", "1");
        let snap = run();
        std::env::remove_var("GATESIM_OBLIVIOUS");
        snap
    };
    assert_eq!(
        event_driven, oblivious,
        "legacy GATESIM_OBLIVIOUS hatch diverged at system level"
    );
}
