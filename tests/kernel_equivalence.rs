//! End-to-end kernel equivalence: the `GATESIM_OBLIVIOUS=1` escape
//! hatch must reproduce the default (event-driven) co-simulation report
//! bit for bit — same golden snapshot, down to float bit patterns.
//!
//! This is the system-level counterpart of the gatesim differential
//! fuzz suite: it runs the whole TCP/IP co-estimation (master, bus,
//! cache, synthesized hardware) under both gate-simulation kernels.
//! The test owns its process (integration tests link separately), so
//! flipping the environment variable here cannot race other suites.

use co_estimation::{CoSimConfig, CoSimulator};
use systems::tcpip::{self, TcpIpParams};

fn run_snapshot() -> String {
    let params = TcpIpParams {
        num_packets: 10,
        len_range: (8, 24),
        pkt_period: 5_000,
        seed: 11,
    };
    let soc = tcpip::build(&params).expect("valid params");
    let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults()).expect("system builds");
    sim.run().golden_snapshot()
}

#[test]
fn oblivious_escape_hatch_reproduces_the_default_report_bitwise() {
    let event_driven = run_snapshot();
    std::env::set_var("GATESIM_OBLIVIOUS", "1");
    let oblivious = run_snapshot();
    std::env::remove_var("GATESIM_OBLIVIOUS");
    assert_eq!(
        event_driven, oblivious,
        "gate-simulation kernels diverged at system level"
    );
}
