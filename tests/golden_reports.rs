//! Golden snapshot tests: the three seed systems' co-estimation reports
//! against committed golden files.
//!
//! Each golden is the stable textual serialization of a `CoSimReport`
//! (`CoSimReport::golden_snapshot`): fixed key order, bit-exact float
//! rendering. Any behavioral drift — a scheduling change, an energy model
//! tweak, a float reassociation — fails these tests with a readable diff
//! of the first diverging line.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_reports
//! ```
//!
//! then review the golden diff like any other code change.
//!
//! Setting `TRACE=ndjson` runs every golden with an NDJSON trace sink
//! attached (written under the target directory). The goldens must still
//! match bit-for-bit — tracing is pure observability — so CI runs the
//! suite once in this mode to pin that contract.

use co_estimation::{
    snapshot_diff, Acceleration, CachingConfig, CoSimConfig, CoSimulator, SamplingConfig,
    SocDescription,
};
use std::path::PathBuf;
use systems::{automotive, producer_consumer, tcpip};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, soc: SocDescription) {
    check_golden_with(name, soc, CoSimConfig::date2000_defaults());
}

fn check_golden_with(name: &str, soc: SocDescription, config: CoSimConfig) {
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    let trace_path = if std::env::var("TRACE").as_deref() == Ok("ndjson") {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/traces");
        std::fs::create_dir_all(&dir).expect("create trace dir");
        let path = dir.join(format!("{name}.ndjson"));
        let file = std::fs::File::create(&path).expect("create trace file");
        sim.attach_trace(Box::new(soctrace::NdjsonSink::new(std::io::BufWriter::new(
            file,
        ))));
        Some(path)
    } else {
        None
    };
    let actual = sim.run().golden_snapshot();
    drop(sim.detach_trace()); // flush the NDJSON writer
    if let Some(path) = trace_path {
        let meta = std::fs::metadata(&path).expect("trace file exists");
        assert!(meta.len() > 0, "attached trace produced no records");
    }
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\n\
             (regenerate with: UPDATE_GOLDENS=1 cargo test --test golden_reports)",
            path.display()
        )
    });
    if let Some(diff) = snapshot_diff(&expected, &actual) {
        panic!(
            "golden report drift for `{name}`:\n{diff}\n\
             If this change is intentional, regenerate with:\n\
             UPDATE_GOLDENS=1 cargo test --test golden_reports\n\
             and review the golden diff."
        );
    }
}

#[test]
fn tcpip_golden_report() {
    check_golden(
        "tcpip",
        tcpip::build(&tcpip::TcpIpParams {
            num_packets: 8,
            len_range: (8, 24),
            pkt_period: 4_000,
            seed: 11,
        })
        .expect("valid params"),
    );
}

#[test]
fn producer_consumer_golden_report() {
    check_golden(
        "producer_consumer",
        producer_consumer::build(&producer_consumer::ProducerConsumerParams {
            num_pkts: 5,
            pkt_bytes: 24,
            start_period: 600,
            tick_period: 150,
            num_starts: 25,
        })
        .expect("valid params"),
    );
}

#[test]
fn automotive_golden_report() {
    check_golden(
        "automotive",
        automotive::build(&automotive::AutomotiveParams {
            num_samples: 6,
            sample_period: 1_500,
            pulse_period: 200,
            target_speed: 25,
        })
        .expect("valid params"),
    );
}

fn small_tcpip() -> SocDescription {
    tcpip::build(&tcpip::TcpIpParams {
        num_packets: 8,
        len_range: (8, 24),
        pkt_period: 4_000,
        seed: 11,
    })
    .expect("valid params")
}

#[test]
fn tcpip_caching_golden_report() {
    check_golden_with(
        "tcpip_caching",
        small_tcpip(),
        CoSimConfig::date2000_defaults().with_accel(Acceleration::caching(CachingConfig {
            thresh_variance: 0.20,
            thresh_iss_calls: 2,
            keep_samples: false,
        })),
    );
}

#[test]
fn tcpip_macromodel_golden_report() {
    check_golden_with(
        "tcpip_macromodel",
        small_tcpip(),
        CoSimConfig::date2000_defaults().with_accel(Acceleration::macromodel()),
    );
}

#[test]
fn tcpip_sampling_golden_report() {
    check_golden_with(
        "tcpip_sampling",
        small_tcpip(),
        CoSimConfig::date2000_defaults()
            .with_accel(Acceleration::sampling(SamplingConfig { period: 4 })),
    );
}

#[test]
fn float_accumulation_debug_release_sentinel() {
    // A pure-float sentinel: if debug and release builds ever disagree on
    // float evaluation (e.g. through a future fast-math flag), this very
    // cheap test pinpoints it without a full system diff.
    let x: f64 = (0..100).map(|i| (i as f64) * 1.0e-7).sum();
    assert_eq!(x.to_bits(), 0x3f40385c67dfe32a);
}
