//! Failure-injection and edge-case integration tests: malformed
//! descriptions are rejected with the documented errors, and stressed
//! systems degrade the way POLIS semantics say they should (events are
//! lost to single-place buffers, never deadlocking or corrupting state).

use cfsm::{
    Cfg, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network, Stmt, VarId,
};
use co_estimation::{BuildEstimatorError, CoSimConfig, CoSimulator, RunOutcome, SocDescription};
use desim::WatchdogConfig;
use systems::tcpip;

fn counter_network(mapping: Implementation, body: Cfg) -> (Network, cfsm::EventId) {
    let mut nb = Network::builder();
    let tick = nb.event(EventDef::pure("TICK"));
    let mut b = Cfsm::builder("proc");
    let s = b.state("s");
    b.var("v", 0);
    b.transition(s, vec![tick], None, body, s);
    nb.process(b.finish().expect("valid machine"), mapping);
    (nb.finish().expect("valid network"), tick)
}

#[test]
fn division_in_hw_is_a_build_error_not_a_panic() {
    let body = Cfg::straight_line(vec![Stmt::Assign {
        var: VarId(0),
        expr: Expr::bin(cfsm::BinOp::Div, Expr::Var(VarId(0)), Expr::Const(3)),
    }]);
    let (network, tick) = counter_network(Implementation::Hw, body.clone());
    let soc = SocDescription {
        name: "bad-hw".into(),
        network,
        stimulus: vec![(10, EventOccurrence::pure(tick))],
        priorities: vec![1],
    };
    let err = CoSimulator::new(soc, CoSimConfig::date2000_defaults());
    assert!(matches!(err, Err(BuildEstimatorError::Synth(name, _)) if name == "proc"));

    // The same body is fine in software.
    let (network, tick) = counter_network(Implementation::Sw, body);
    let soc = SocDescription {
        name: "ok-sw".into(),
        network,
        stimulus: vec![(10, EventOccurrence::pure(tick))],
        priorities: vec![1],
    };
    let report = CoSimulator::new(soc, CoSimConfig::date2000_defaults())
        .expect("SW handles division")
        .run();
    assert_eq!(report.firings, 1);
}

#[test]
fn wrong_priority_count_is_rejected() {
    let (network, tick) = counter_network(Implementation::Hw, Cfg::empty());
    let soc = SocDescription {
        name: "bad-prio".into(),
        network,
        stimulus: vec![(10, EventOccurrence::pure(tick))],
        priorities: vec![1, 2, 3],
    };
    let err = CoSimulator::new(soc, CoSimConfig::date2000_defaults());
    assert!(matches!(
        err,
        Err(BuildEstimatorError::PriorityCount {
            expected: 1,
            got: 3
        })
    ));
}

#[test]
fn empty_stimulus_yields_an_empty_but_valid_report() {
    let (network, _) = counter_network(Implementation::Hw, Cfg::empty());
    let soc = SocDescription {
        name: "idle".into(),
        network,
        stimulus: vec![],
        priorities: vec![1],
    };
    let report = CoSimulator::new(soc, CoSimConfig::date2000_defaults())
        .expect("builds")
        .run();
    assert_eq!(report.firings, 0);
    assert_eq!(report.total_energy_j(), 0.0);
    assert_eq!(report.total_cycles, 0);
}

#[test]
fn event_flood_loses_events_but_never_wedges() {
    // A slow SW process bombarded with ticks far faster than it can
    // process: POLIS single-place buffers overwrite, so the run must
    // terminate with fewer firings than stimuli and a quiesced queue.
    let body = Cfg::straight_line(
        (0..20)
            .map(|i| Stmt::Assign {
                var: VarId(0),
                expr: Expr::add(
                    Expr::bin(cfsm::BinOp::Mul, Expr::Var(VarId(0)), Expr::Const(3)),
                    Expr::Const(i),
                ),
            })
            .collect(),
    );
    let (network, tick) = counter_network(Implementation::Sw, body);
    let soc = SocDescription {
        name: "flood".into(),
        network,
        stimulus: (1..=500).map(|i| (i * 2, EventOccurrence::pure(tick))).collect(),
        priorities: vec![1],
    };
    let report = CoSimulator::new(soc, CoSimConfig::date2000_defaults())
        .expect("builds")
        .run();
    assert!(report.firings > 0);
    assert!(
        report.firings < 500,
        "saturated process must drop events ({} firings)",
        report.firings
    );
}

#[test]
fn tcpip_queue_overflow_drops_packets_without_deadlock() {
    // Packets arriving far faster than the pipeline drains: the 4-deep
    // descriptor queue and the single-place buffers shed load; the
    // system must still quiesce and the checksum engine must process a
    // prefix of the packets.
    let soc = tcpip::build(&tcpip::TcpIpParams {
        num_packets: 30,
        len_range: (32, 48),
        pkt_period: 200, // far below the per-packet service time
        seed: 5,
    })
    .expect("valid params");
    let report = CoSimulator::new(soc, CoSimConfig::date2000_defaults())
        .expect("builds")
        .run();
    let checksum = report
        .processes
        .iter()
        .find(|p| p.name == "checksum")
        .expect("checksum");
    assert!(checksum.firings >= 1);
    assert!(
        checksum.firings < 30,
        "overload must shed packets (checksum fired {} times)",
        checksum.firings
    );
}

#[test]
fn max_firings_is_a_hard_stop() {
    let (network, tick) = counter_network(Implementation::Hw, Cfg::empty());
    let soc = SocDescription {
        name: "bounded".into(),
        network,
        stimulus: (1..=100).map(|i| (i * 10, EventOccurrence::pure(tick))).collect(),
        priorities: vec![1],
    };
    let mut cfg = CoSimConfig::date2000_defaults();
    cfg.max_firings = 7;
    let report = CoSimulator::new(soc, cfg).expect("builds").run();
    assert!(report.firings <= 8, "got {}", report.firings);
}

#[test]
fn zero_length_packet_class_is_rejected_by_the_system_builder() {
    let result = tcpip::build(&tcpip::TcpIpParams {
        num_packets: 0,
        len_range: (8, 16),
        pkt_period: 100,
        seed: 0,
    });
    assert!(
        matches!(result, Err(BuildEstimatorError::EmptyWorkload(_))),
        "zero packets must be rejected with a typed error"
    );
}

#[test]
fn cache_disabled_runs_still_work() {
    let mut cfg = CoSimConfig::date2000_defaults();
    cfg.icache = None;
    let soc = tcpip::build(&tcpip::TcpIpParams {
        num_packets: 3,
        len_range: (8, 16),
        pkt_period: 5_000,
        seed: 2,
    })
    .expect("valid params");
    let report = CoSimulator::new(soc, cfg).expect("builds").run();
    assert_eq!(report.cache.accesses, 0);
    assert_eq!(report.cache_energy_j, 0.0);
    assert!(report.total_energy_j() > 0.0);
}

#[test]
fn watchdog_budget_boundary_separates_completed_from_degraded() {
    // The desim::watchdog boundary contract, observed end to end: a
    // cycle budget equal to the exact simulated length of a run keeps it
    // `Completed`; one cycle less and the final firing-completion event
    // dispatches past the budget, degrading the run before it is
    // handled.
    let build = || {
        let body = Cfg::straight_line(vec![Stmt::Assign {
            var: VarId(0),
            expr: Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
        }]);
        let (network, tick) = counter_network(Implementation::Hw, body);
        SocDescription {
            name: "boundary".into(),
            network,
            stimulus: (1..=4).map(|i| (i * 50, EventOccurrence::pure(tick))).collect(),
            priorities: vec![1],
        }
    };

    let unguarded = CoSimulator::new(build(), CoSimConfig::date2000_defaults())
        .expect("builds")
        .run();
    assert!(matches!(unguarded.outcome, RunOutcome::Completed));
    let exact = unguarded.total_cycles;
    assert!(exact > 0, "run must simulate some time");

    let at_budget = CoSimulator::new(
        build(),
        CoSimConfig::date2000_defaults().with_watchdog(WatchdogConfig::sim_cycles(exact)),
    )
    .expect("builds")
    .run();
    assert!(
        matches!(at_budget.outcome, RunOutcome::Completed),
        "budget == exact cycles must complete, got {:?}",
        at_budget.outcome
    );
    assert_eq!(at_budget.total_cycles, exact, "guarded run is bit-identical");
    assert_eq!(at_budget.firings, unguarded.firings);

    let one_short = CoSimulator::new(
        build(),
        CoSimConfig::date2000_defaults().with_watchdog(WatchdogConfig::sim_cycles(exact - 1)),
    )
    .expect("builds")
    .run();
    assert!(
        one_short.outcome.is_degraded(),
        "budget one cycle short must degrade, got {:?}",
        one_short.outcome
    );
}
