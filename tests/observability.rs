//! Observability contract: provenance attribution must sum bit-exactly
//! to the report totals on every system under every acceleration mode,
//! and attaching any combination of trace, metrics, and profiler sinks
//! must not perturb a single bit of the golden snapshot.
//!
//! The profiler's span counts are also pinned to the master's own
//! counters (one `accel_decision` per firing, one `estimator_firing` per
//! detailed call), so the spans cannot silently drift away from what
//! they claim to time.

use co_estimation::{
    explore_bus_architecture, explore_bus_architecture_parallel, explore_power_policies,
    explore_power_policies_parallel, Acceleration, CachingConfig, CoSimConfig, CoSimReport,
    CoSimulator, ExploreOptions, FaultPlan, GatingPolicy, LeakageModel, OperatingPoint,
    PowerPolicy, Provenance, SamplingConfig, SocDescription,
};
use soctrace::{ArcSharedSink, MetricsSink, ProfileReport, SharedSink, SpanKind};
use systems::automotive::{self, AutomotiveParams};
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

fn small_tcpip() -> SocDescription {
    tcpip::build(&TcpIpParams {
        num_packets: 8,
        len_range: (8, 24),
        pkt_period: 5_000,
        seed: 3,
    })
    .expect("valid params")
}

fn all_systems() -> Vec<(&'static str, SocDescription)> {
    vec![
        ("tcpip", small_tcpip()),
        (
            "producer_consumer",
            producer_consumer::build(&ProducerConsumerParams::default()).expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&AutomotiveParams::default()).expect("valid params"),
        ),
    ]
}

fn all_modes() -> Vec<(&'static str, Acceleration)> {
    vec![
        ("baseline", Acceleration::none()),
        ("caching", Acceleration::caching(CachingConfig::new())),
        ("macromodel", Acceleration::macromodel()),
        ("sampling", Acceleration::sampling(SamplingConfig { period: 4 })),
    ]
}

/// Runs with metrics + profiler sinks attached; returns the report and
/// the aggregated profile.
fn run_observed(soc: SocDescription, config: CoSimConfig) -> (CoSimReport, ProfileReport) {
    let metrics = SharedSink::new(MetricsSink::new());
    let profile = SharedSink::new(ProfileReport::new());
    let mut sim = CoSimulator::new(soc, config).expect("valid soc");
    sim.attach_trace(Box::new(metrics.clone()));
    sim.attach_profile(Box::new(profile.clone()));
    let report = sim.run();
    drop(sim);
    (report, profile.into_inner())
}

#[test]
fn provenance_sums_bit_exactly_on_every_system_and_mode() {
    let base = CoSimConfig::date2000_defaults();
    for (system, soc) in all_systems() {
        for (mode, accel) in all_modes() {
            let config = base.with_accel(accel);
            let mut plain = CoSimulator::new(soc.clone(), config.clone()).expect("valid soc");
            let plain_report = plain.run();
            let (observed, profile) = run_observed(soc.clone(), config);

            observed
                .verify_provenance()
                .unwrap_or_else(|e| panic!("{system}/{mode}: {e}"));
            assert_eq!(
                plain_report.golden_snapshot(),
                observed.golden_snapshot(),
                "{system}/{mode}: observability perturbed the report"
            );
            // Span counts are pinned to the master's own counters.
            assert_eq!(
                profile.stats(SpanKind::AccelDecision).count,
                observed.firings,
                "{system}/{mode}: one accel_decision span per firing"
            );
            assert_eq!(
                profile.stats(SpanKind::EstimatorFiring).count,
                observed.detailed_calls,
                "{system}/{mode}: one estimator_firing span per detailed call"
            );
            assert_eq!(profile.stats(SpanKind::MasterRun).count, 1);
        }
    }
}

#[test]
fn provenance_buckets_track_the_active_technique() {
    let soc = small_tcpip();
    let base = CoSimConfig::date2000_defaults();

    let (baseline, _) = run_observed(soc.clone(), base.clone());
    for p in [
        Provenance::CacheReuse,
        Provenance::MacroModel,
        Provenance::SampledScaled,
    ] {
        assert_eq!(
            baseline.provenance.records_for(p),
            0,
            "baseline run must attribute nothing to {p:?}"
        );
    }
    assert!(baseline.provenance.records_for(Provenance::BusModel) > 0);

    let (cached, _) = run_observed(
        soc.clone(),
        base.with_accel(Acceleration::caching(CachingConfig::new())),
    );
    assert!(cached.provenance.records_for(Provenance::CacheReuse) > 0);
    assert_eq!(cached.provenance.records_for(Provenance::SampledScaled), 0);

    let (macro_run, _) = run_observed(soc.clone(), base.with_accel(Acceleration::macromodel()));
    assert!(macro_run.provenance.records_for(Provenance::MacroModel) > 0);

    let (sampled, _) = run_observed(
        soc,
        base.with_accel(Acceleration::sampling(SamplingConfig { period: 4 })),
    );
    assert!(sampled.provenance.records_for(Provenance::SampledScaled) > 0);

    // The bucket partition is exact (same additions, different grouping),
    // so its sum may differ from the bit-exact component sum only by
    // float reassociation noise.
    for r in [&baseline, &cached, &macro_run, &sampled] {
        let total = r.provenance.total_energy_j();
        assert!((r.provenance.bucket_sum_j() - total).abs() <= 1e-12 * total.abs().max(1e-300));
    }
}

#[test]
fn effectiveness_counters_reconcile_with_the_report() {
    let soc = small_tcpip();
    let base = CoSimConfig::date2000_defaults();

    let (baseline, _) = run_observed(soc.clone(), base.clone());
    assert_eq!(baseline.effectiveness.iss_calls_avoided(), 0);
    assert!(baseline.effectiveness.cache.is_none());
    assert!(baseline.effectiveness.sampling.is_none());

    let (cached, _) = run_observed(
        soc.clone(),
        base.with_accel(Acceleration::caching(CachingConfig::new())),
    );
    let cache = cached.effectiveness.cache.as_ref().expect("cache stats");
    assert_eq!(
        cache.hits,
        cached.firings - cached.detailed_calls,
        "every avoided detailed call must be a cache hit"
    );
    assert_eq!(
        cached.effectiveness.iss_calls_avoided(),
        cached.firings - cached.detailed_calls
    );
    assert!(cache.eligible_paths <= cache.distinct_paths);
    assert!(
        cache.max_eligible_cv <= cache.cv_bound,
        "served paths must respect the §4.2 variance bound"
    );

    let (sampled, _) = run_observed(
        soc,
        base.with_accel(Acceleration::sampling(SamplingConfig { period: 4 })),
    );
    let sampling = sampled.effectiveness.sampling.as_ref().expect("sampling stats");
    assert_eq!(sampling.period, 4);
    assert_eq!(
        sampling.served + sampling.samples,
        sampled.firings,
        "served + sampled firings must cover every firing"
    );
    assert!(sampling.compaction_ratio() > 1.0);
}

/// A non-noop policy for any system: leakage on every component, the
/// first process clock-gated, the second (when present) power-gated,
/// the last assigned a DVFS operating point.
fn managed_policy(soc: &SocDescription) -> PowerPolicy {
    let names: Vec<String> = soc
        .network
        .process_ids()
        .map(|p| soc.network.cfsm(p).name().to_string())
        .collect();
    let mut policy = PowerPolicy::named("managed")
        .with_leakage(LeakageModel::with_default_rate(1.5e-3))
        .with_operating_point(OperatingPoint::new("low", 0.85, 0.7))
        .gate(names[0].clone(), GatingPolicy::clock(300));
    if names.len() > 1 {
        policy = policy.gate(names[1].clone(), GatingPolicy::power(600, 2.0e-8, 12));
    }
    if let Some(last) = names.last() {
        policy = policy.dvfs(last.clone(), 0);
    }
    policy
}

#[test]
fn provenance_stays_an_exact_partition_under_power_management() {
    let base = CoSimConfig::date2000_defaults();
    for (system, soc) in all_systems() {
        let config = base.with_power_policy(managed_policy(&soc));
        let (report, _) = run_observed(soc, config);
        report
            .verify_provenance()
            .unwrap_or_else(|e| panic!("{system}: {e}"));
        let power = report.power.as_ref().unwrap_or_else(|| {
            panic!("{system}: a managed run must carry a power report")
        });
        assert!(
            report.provenance.records_for(Provenance::Leakage) > 0,
            "{system}: leakage spans must be booked"
        );
        assert!(power.leakage_j > 0.0, "{system}: leakage must accrue");
        // The provenance bucket and the power report book the same joules.
        let leak_bucket = report.provenance.energy_for(Provenance::Leakage);
        assert!(
            (leak_bucket - power.leakage_j).abs() <= 1e-12 * power.leakage_j.max(1e-300),
            "{system}: Leakage bucket ({leak_bucket}) != power report ({})",
            power.leakage_j
        );
    }
}

#[test]
fn metrics_residency_reconciles_with_the_power_report() {
    // The MetricsSink reconstructs per-state residency purely from the
    // PowerTransition trace stream (plus the synthetic cycle-0 records
    // for DVFS-pinned components); it must agree cycle-for-cycle with
    // the power report's residency counters, which the runtime
    // integrates independently during leakage settlement.
    let base = CoSimConfig::date2000_defaults();
    for (system, soc) in all_systems() {
        let config = base.with_power_policy(managed_policy(&soc));
        let metrics = SharedSink::new(MetricsSink::new());
        let mut sim = CoSimulator::new(soc, config).expect("valid soc");
        sim.attach_trace(Box::new(metrics.clone()));
        let report = sim.run();
        drop(sim);
        let metrics = metrics.into_inner();
        let power = report.power.as_ref().expect("managed run has a power report");
        let end = report.total_cycles;
        for (p, c) in power.components.iter().enumerate() {
            let p = p as u32;
            let mut reconstructed = 0u64;
            for (state, expected) in [
                ("active", c.active_cycles),
                ("dvfs", c.dvfs_cycles),
                ("clock_gated", c.clock_gated_cycles),
                ("power_gated", c.power_gated_cycles),
            ] {
                let got = metrics.power_residency(p, state, end);
                assert_eq!(got, expected, "{system}: process {p} residency in `{state}`");
                reconstructed += got;
            }
            // The four states partition the whole run.
            assert_eq!(reconstructed, end, "{system}: process {p} residency total");
        }
    }
}

#[test]
fn provenance_stays_exact_with_power_management_and_faults() {
    let soc = small_tcpip();
    let faults = FaultPlan::new()
        .delay_event(4_000, "CHK_SUM", 250)
        .corrupt_energy(9_000, "checksum", 1.5)
        .stall_bus(14_000, 40);
    let config = CoSimConfig::date2000_defaults()
        .with_power_policy(managed_policy(&soc))
        .with_faults(faults);
    let (report, _) = run_observed(soc, config);
    report
        .verify_provenance()
        .unwrap_or_else(|e| panic!("faulted managed run: {e}"));
    assert!(!report.anomalies.is_empty(), "the plan must have injected");
    assert!(report.provenance.records_for(Provenance::Leakage) > 0);
}

#[test]
fn power_sweeps_are_bitwise_identical_serial_vs_parallel() {
    let soc = small_tcpip();
    let base = CoSimConfig::date2000_defaults();
    let policies = vec![
        PowerPolicy::none(),
        PowerPolicy::named("leak").with_leakage(LeakageModel::with_default_rate(1.0e-3)),
        managed_policy(&soc),
    ];
    let serial = explore_power_policies(&soc, &base, &policies).expect("serial sweep");
    for workers in [1usize, 3] {
        let par = explore_power_policies_parallel(
            &soc,
            &base,
            &policies,
            &ExploreOptions::with_workers(workers),
        )
        .expect("parallel sweep");
        assert_eq!(serial.len(), par.points.len());
        for (s, p) in serial.iter().zip(&par.points) {
            assert_eq!(s.policy_name, p.policy_name);
            assert_eq!(
                s.report.golden_snapshot(),
                p.report.golden_snapshot(),
                "policy `{}` diverged at workers = {workers}",
                s.policy_name
            );
            assert_eq!(
                s.energy_j().to_bits(),
                p.energy_j().to_bits(),
                "policy `{}` energy bits diverged at workers = {workers}",
                s.policy_name
            );
            p.report
                .verify_provenance()
                .unwrap_or_else(|e| panic!("policy `{}`: {e}", s.policy_name));
        }
    }
}

#[test]
fn parallel_sweep_profiles_every_point_without_perturbing_results() {
    let soc = tcpip::build(&TcpIpParams::fig7_defaults()).expect("valid params");
    let config = CoSimConfig::date2000_defaults();
    let procs: Vec<cfsm::ProcId> = ["create_pack", "ip_check", "checksum"]
        .iter()
        .map(|n| soc.network.process_by_name(n).expect("process exists"))
        .collect();
    let dmas = [1u32, 8, 32, 128];

    let serial = explore_bus_architecture(&soc, &config, &procs, &dmas).expect("serial sweep");

    let sink = ArcSharedSink::new(ProfileReport::new());
    let sweep = explore_bus_architecture_parallel(
        &soc,
        &config,
        &procs,
        &dmas,
        &ExploreOptions::with_workers(4).profiled(sink.clone()),
    )
    .expect("parallel sweep");

    assert_eq!(serial.len(), sweep.points.len());
    for (i, (s, p)) in serial.iter().zip(&sweep.points).enumerate() {
        assert_eq!(
            s.report.golden_snapshot(),
            p.report.golden_snapshot(),
            "profiled point {i} drifted from the serial reference"
        );
        p.report
            .verify_provenance()
            .unwrap_or_else(|e| panic!("profiled point {i}: {e}"));
    }

    let profile = sink.with(|r| r.clone());
    let points = serial.len() as u64;
    assert_eq!(
        profile.stats(SpanKind::SweepPoint).count,
        points,
        "one sweep_point span per point, aggregated across workers"
    );
    assert_eq!(profile.stats(SpanKind::MasterRun).count, points);
    assert!(profile.stats(SpanKind::EstimatorFiring).count > 0);
}
