//! Differential determinism: the parallel sweep engine against the
//! serial reference, bitwise, on the Fig. 7 exploration.
//!
//! The parallel engine's whole contract is that fanning a sweep across a
//! worker pool changes *nothing* about its result — only its latency.
//! These tests run the 48-point Fig. 7 bus-architecture sweep serially
//! and at several worker counts (1, 2, 8, plus an optional count from
//! the `EXPLORE_WORKERS` env var, which CI uses to probe extra pool
//! shapes) and require every point — label, priority assignment, DMA
//! size, and the full report down to float bit patterns — to be
//! identical. A second pass repeats the comparison under a non-empty
//! `FaultPlan`, so the fault-injection layer does not break the
//! contract either.

use co_estimation::{
    explore_bus_architecture, explore_bus_architecture_parallel, explore_partitions,
    explore_partitions_parallel, CoSimConfig, ExplorationPoint, ExploreOptions, FaultPlan,
};
use systems::tcpip::{self, TcpIpParams};

/// Worker counts under test: the fixed set plus CI's optional extra.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(extra) = std::env::var("EXPLORE_WORKERS") {
        if let Ok(n) = extra.parse::<usize>() {
            if n > 0 && !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

fn fig7_soc() -> co_estimation::SocDescription {
    tcpip::build(&TcpIpParams::fig7_defaults()).expect("valid params")
}

fn fig7_procs(soc: &co_estimation::SocDescription) -> Vec<cfsm::ProcId> {
    ["create_pack", "ip_check", "checksum"]
        .iter()
        .map(|n| soc.network.process_by_name(n).expect("process exists"))
        .collect()
}

const FIG7_DMA_SIZES: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn assert_points_bitwise_equal(
    serial: &[ExplorationPoint],
    parallel: &[ExplorationPoint],
    context: &str,
) {
    assert_eq!(serial.len(), parallel.len(), "{context}: point count");
    for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(s.dma_block_size, p.dma_block_size, "{context}: point {i} dma");
        assert_eq!(s.priorities, p.priorities, "{context}: point {i} priorities");
        assert_eq!(s.label, p.label, "{context}: point {i} label");
        assert_eq!(
            s.energy_j().to_bits(),
            p.energy_j().to_bits(),
            "{context}: point {i} ({}, dma {}) energy bits",
            s.label,
            s.dma_block_size
        );
        if let Some(diff) = co_estimation::snapshot_diff(
            &s.report.golden_snapshot(),
            &p.report.golden_snapshot(),
        ) {
            panic!(
                "{context}: point {i} ({}, dma {}) report drift:\n{diff}",
                s.label, s.dma_block_size
            );
        }
    }
}

#[test]
fn fig7_parallel_sweep_is_bitwise_identical_to_serial() {
    let soc = fig7_soc();
    let config = CoSimConfig::date2000_defaults();
    let procs = fig7_procs(&soc);
    let serial =
        explore_bus_architecture(&soc, &config, &procs, &FIG7_DMA_SIZES).expect("serial sweep");
    assert_eq!(serial.len(), 48, "6 permutations x 8 DMA sizes");
    for workers in worker_counts() {
        let sweep = explore_bus_architecture_parallel(
            &soc,
            &config,
            &procs,
            &FIG7_DMA_SIZES,
            &ExploreOptions::with_workers(workers),
        )
        .expect("parallel sweep");
        assert_points_bitwise_equal(
            &serial,
            &sweep.points,
            &format!("workers = {workers}"),
        );
        assert_eq!(sweep.stats.points, 48);
        assert_eq!(sweep.stats.degraded, 0);
    }
}

#[test]
fn fig7_parallel_sweep_matches_serial_under_fault_injection() {
    let soc = fig7_soc();
    // A non-empty plan exercising the delivery-fault and timed-fault
    // interception paths in every one of the 48 co-simulations.
    let config = CoSimConfig::date2000_defaults().with_faults(
        FaultPlan::new()
            .drop_event(1, "CHK_GO")
            .delay_event(2_400, "CHK_SUM", 700),
    );
    let procs = fig7_procs(&soc);
    // Half the DMA grid keeps the faulted differential affordable; the
    // full grid is covered by the fault-free differential above.
    let dmas = [1u32, 8, 32, 128];
    let serial = explore_bus_architecture(&soc, &config, &procs, &dmas).expect("serial sweep");
    for workers in [2usize, 8] {
        let sweep = explore_bus_architecture_parallel(
            &soc,
            &config,
            &procs,
            &dmas,
            &ExploreOptions::with_workers(workers),
        )
        .expect("parallel sweep");
        assert_points_bitwise_equal(
            &serial,
            &sweep.points,
            &format!("faulted, workers = {workers}"),
        );
        // The faults really fired in every point.
        assert!(sweep
            .points
            .iter()
            .all(|p| p.report.anomalies.faults_injected() > 0));
    }
}

#[test]
fn partition_sweep_parallel_matches_serial() {
    let soc = fig7_soc();
    let config = CoSimConfig::date2000_defaults();
    let movable: Vec<cfsm::ProcId> = ["create_pack", "checksum"]
        .iter()
        .map(|n| soc.network.process_by_name(n).expect("process exists"))
        .collect();
    let serial = explore_partitions(&soc, &config, &movable).expect("serial sweep");
    let sweep = explore_partitions_parallel(
        &soc,
        &config,
        &movable,
        &ExploreOptions::with_workers(4),
    )
    .expect("parallel sweep");
    assert_eq!(serial.len(), sweep.points.len());
    for (s, p) in serial.iter().zip(&sweep.points) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.mapping, p.mapping);
        assert_eq!(s.energy_j().to_bits(), p.energy_j().to_bits(), "{}", s.label);
    }
}
