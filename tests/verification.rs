//! Pre-simulation verification integration tests: the three reference
//! systems are provably clean, doomed specs are rejected through the
//! typed `Unverifiable` error at every entry point (`new_verified`,
//! `verify_first` sweeps), and the checker is read-only — a verified
//! run is bit-identical to an unverified one.

use cfsm::{Cfg, Cfsm, EventDef, EventOccurrence, Implementation, Network, ProcId};
use co_estimation::{
    explore_bus_architecture_parallel, explore_partitions_parallel, verify_soc,
    BuildEstimatorError, CoSimConfig, CoSimulator, ExploreOptions, RunOutcome, Severity,
    SocDescription,
};
use systems::{automotive, producer_consumer, tcpip};

fn reference_systems() -> Vec<(&'static str, SocDescription)> {
    vec![
        (
            "tcpip",
            tcpip::build(&tcpip::TcpIpParams {
                num_packets: 4,
                len_range: (8, 16),
                pkt_period: 5_000,
                seed: 7,
            })
            .expect("valid params"),
        ),
        (
            "producer_consumer",
            producer_consumer::build(&producer_consumer::ProducerConsumerParams {
                num_pkts: 5,
                pkt_bytes: 24,
                start_period: 600,
                tick_period: 150,
                num_starts: 25,
            })
            .expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&automotive::AutomotiveParams {
                num_samples: 6,
                sample_period: 1_500,
                pulse_period: 200,
                target_speed: 25,
            })
            .expect("valid params"),
        ),
    ]
}

/// A two-process system where `waiter` is starved: it listens to an
/// event only ever named in its own trigger, while `spinner` keeps the
/// schedule alive.
fn doomed() -> SocDescription {
    let mut nb = Network::builder();
    let tick = nb.event(EventDef::pure("TICK"));
    let phantom = nb.event(EventDef::pure("PHANTOM"));
    let mut b = Cfsm::builder("spinner");
    let s = b.state("s");
    b.transition(s, vec![tick], None, Cfg::empty(), s);
    nb.process(b.finish().expect("valid machine"), Implementation::Hw);
    let mut b = Cfsm::builder("waiter");
    let s = b.state("s");
    b.transition(s, vec![phantom], None, Cfg::empty(), s);
    nb.process(b.finish().expect("valid machine"), Implementation::Sw);
    SocDescription {
        name: "doomed".into(),
        network: nb.finish().expect("valid network"),
        stimulus: vec![(10, EventOccurrence::pure(tick))],
        priorities: vec![1, 1],
    }
}

#[test]
fn reference_systems_verify_with_zero_errors() {
    for (name, soc) in reference_systems() {
        let report = verify_soc(&soc);
        assert!(
            !report.has_errors(),
            "{name} must have zero error-severity findings:\n{report}"
        );
        for finding in report.errors() {
            panic!("{name}: unexpected error finding {finding}");
        }
        // Warnings (if any) must carry warning severity only.
        for finding in report.warnings() {
            assert_eq!(finding.severity, Severity::Warning);
        }
    }
}

#[test]
fn new_verified_accepts_the_reference_systems() {
    for (name, soc) in reference_systems() {
        let sim = CoSimulator::new_verified(soc, CoSimConfig::date2000_defaults());
        assert!(sim.is_ok(), "{name} must pass the verified front door");
    }
}

#[test]
fn new_verified_rejects_a_doomed_spec_with_the_full_report() {
    let err = CoSimulator::new_verified(doomed(), CoSimConfig::date2000_defaults());
    let Err(BuildEstimatorError::Unverifiable(report)) = err else {
        panic!("doomed spec must be Unverifiable, got {err:?}");
    };
    assert!(report.has_errors());
    let rendered = report.render();
    assert!(
        rendered.contains("PHANTOM") && rendered.contains("waiter"),
        "diagnosis must name the orphan and its consumer:\n{rendered}"
    );
    // The same report rides inside the error's Display rendering.
    let err_text = BuildEstimatorError::Unverifiable(report).to_string();
    assert!(err_text.contains("verification"), "{err_text}");
}

#[test]
fn verify_first_gates_parallel_sweeps() {
    let options = ExploreOptions::serial().verified();
    let config = CoSimConfig::date2000_defaults();

    let bad = doomed();
    let movable: Vec<ProcId> = vec![ProcId(0)];
    let err = explore_partitions_parallel(&bad, &config, &movable, &options);
    assert!(
        matches!(err, Err(BuildEstimatorError::Unverifiable(_))),
        "verify_first must fail the sweep before any point runs"
    );
    let err = explore_bus_architecture_parallel(&bad, &config, &[ProcId(0)], &[4], &options);
    assert!(matches!(err, Err(BuildEstimatorError::Unverifiable(_))));

    // A clean spec sweeps normally under the same gate.
    let (_, soc) = reference_systems().remove(0);
    let sweep = explore_bus_architecture_parallel(
        &soc,
        &config,
        &[ProcId(0), ProcId(1)],
        &[4],
        &options,
    )
    .expect("clean spec sweeps under verify_first");
    assert!(sweep.stats.points > 0);
}

#[test]
fn verification_is_read_only() {
    // Run the same spec (a) cold and (b) with a verify() call between
    // build and run: every figure must be bit-identical.
    let config = CoSimConfig::date2000_defaults();
    let build = || {
        tcpip::build(&tcpip::TcpIpParams {
            num_packets: 4,
            len_range: (8, 16),
            pkt_period: 5_000,
            seed: 7,
        })
        .expect("valid params")
    };
    let cold = CoSimulator::new(build(), config.clone()).expect("builds").run();

    let mut sim = CoSimulator::new_verified(build(), config).expect("verifies");
    let pre = sim.verify();
    assert!(!pre.has_errors());
    let checked = sim.run();
    let post = sim.verify();
    assert_eq!(pre, post, "verification reports are stable across a run");

    assert!(matches!(checked.outcome, RunOutcome::Completed));
    assert_eq!(cold.total_cycles, checked.total_cycles);
    assert_eq!(cold.firings, checked.firings);
    assert_eq!(
        cold.total_energy_j().to_bits(),
        checked.total_energy_j().to_bits(),
        "energy must be bit-identical with and without verification"
    );
}

#[test]
fn checker_severity_split_matches_the_documented_model() {
    // The doomed spec: orphan trigger = error; the spinner's TICK is
    // consumed, so the only other possible finding is advisory.
    let report = verify_soc(&doomed());
    assert!(report.errors().count() >= 1);
    for f in report.errors() {
        assert_eq!(f.severity, Severity::Error);
    }
}
