//! Adversarial spec fuzzing: the seeded generator (`socverify::gen`)
//! emits known-live and known-deadlocking systems, and both the static
//! checker and the dynamic watchdog are held to their contracts:
//!
//! * **zero false positives** — every known-live spec passes the
//!   checker (no error-severity findings) and runs to `Completed`,
//!   including under a non-empty `FaultPlan`;
//! * **zero false negatives** — every known-deadlocking spec is flagged
//!   statically *and*, when simulated anyway, is independently caught
//!   by the watchdog (`Degraded`) with its doomed machines at zero
//!   firings.
//!
//! Seeds are sequential from zero, so a failure reproduces exactly.
//! `VERIFY_FUZZ_N` scales the sweep (default 40 per direction locally;
//! CI runs 200).

use co_estimation::{
    verify_soc, CoSimConfig, CoSimulator, FaultPlan, RunOutcome, SocDescription,
};
use desim::WatchdogConfig;
use socverify::gen::{generate_deadlocking, generate_live, Expectation, GeneratedSystem};

fn n_specs() -> u64 {
    std::env::var("VERIFY_FUZZ_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40)
}

fn to_soc(g: GeneratedSystem) -> SocDescription {
    SocDescription {
        name: g.name,
        network: g.network,
        stimulus: g.stimulus,
        priorities: g.priorities,
    }
}

/// Generous budgets a live spec can never hit.
fn live_guard() -> WatchdogConfig {
    WatchdogConfig {
        max_cycles: Some(50_000_000),
        max_events: Some(1_000_000),
        max_stagnant_events: Some(100_000),
        ..WatchdogConfig::unlimited()
    }
}

/// Tight budgets so a deadlocked-but-busy spec trips quickly.
fn dead_guard() -> WatchdogConfig {
    WatchdogConfig {
        max_cycles: Some(2_000_000),
        max_events: Some(4_000),
        max_stagnant_events: Some(2_000),
        ..WatchdogConfig::unlimited()
    }
}

#[test]
fn live_specs_pass_the_checker_and_complete() {
    for seed in 0..n_specs() {
        let g = generate_live(seed).expect("generator");
        assert_eq!(g.expectation, Expectation::Live);
        let name = g.name.clone();
        let soc = to_soc(g);

        let report = verify_soc(&soc);
        assert!(
            !report.has_errors(),
            "false positive on live {name} (seed {seed}):\n{report}"
        );

        let config = CoSimConfig::date2000_defaults().with_watchdog(live_guard());
        let run = CoSimulator::new_verified(soc, config)
            .unwrap_or_else(|e| panic!("{name} (seed {seed}) must build: {e}"))
            .run();
        assert!(
            matches!(run.outcome, RunOutcome::Completed),
            "live {name} (seed {seed}) must complete, got {:?}",
            run.outcome
        );
        for p in &run.processes {
            assert!(
                p.firings >= 1,
                "live {name} (seed {seed}): machine `{}` never fired",
                p.name
            );
        }
    }
}

#[test]
fn live_specs_complete_under_non_empty_fault_plans() {
    for seed in 0..n_specs() {
        let g = generate_live(seed).expect("generator");
        let name = g.name.clone();
        // Perturb a real stimulus event: delay it and duplicate it, and
        // stall the bus mid-run. (No drops — liveness under loss is a
        // different contract; POLIS buffers may legitimately starve.)
        let first_stim = g.stimulus.first().expect("live specs have stimulus").1.event;
        let stim_name = g.network.events()[first_stim.0 as usize].name.clone();
        let soc = to_soc(g);
        let faults = FaultPlan::new()
            .delay_event(1, stim_name.clone(), 500 + seed % 700)
            .duplicate_event(1, stim_name)
            .stall_bus(100 + seed * 13 % 1_000, 1_000);

        let config = CoSimConfig::date2000_defaults()
            .with_watchdog(live_guard())
            .with_faults(faults);
        let run = CoSimulator::new_verified(soc, config)
            .unwrap_or_else(|e| panic!("{name} (seed {seed}) must build: {e}"))
            .run();
        assert!(
            matches!(run.outcome, RunOutcome::Completed),
            "live {name} (seed {seed}) under faults must still complete, got {:?}",
            run.outcome
        );
        assert!(
            run.anomalies.faults_injected() >= 1,
            "{name} (seed {seed}): the plan must actually fire"
        );
    }
}

#[test]
fn deadlocking_specs_are_flagged_and_watchdog_caught() {
    for seed in 0..n_specs() {
        let g = generate_deadlocking(seed).expect("generator");
        assert_eq!(g.expectation, Expectation::Deadlocking);
        let name = g.name.clone();
        let dead = g.dead_machines.clone();
        assert!(!dead.is_empty(), "{name}: deadlocking spec must list victims");
        let soc = to_soc(g);

        // Static direction: zero false negatives.
        let report = verify_soc(&soc);
        assert!(
            report.has_errors(),
            "false negative: {name} (seed {seed}) passed the checker"
        );

        // Dynamic direction: simulate anyway (bypassing the verified
        // front door) — the watchdog must independently catch it.
        let config = CoSimConfig::date2000_defaults().with_watchdog(dead_guard());
        let run = CoSimulator::new(soc, config)
            .unwrap_or_else(|e| panic!("{name} (seed {seed}) must build: {e}"))
            .run();
        assert!(
            run.outcome.is_degraded(),
            "{name} (seed {seed}) must trip the watchdog, got {:?}",
            run.outcome
        );
        for victim in &dead {
            let p = run
                .processes
                .iter()
                .find(|p| &p.name == victim)
                .unwrap_or_else(|| panic!("{name}: victim `{victim}` missing from report"));
            assert_eq!(
                p.firings, 0,
                "{name} (seed {seed}): doomed machine `{victim}` fired"
            );
        }
    }
}

#[test]
fn fuzz_verdicts_are_deterministic() {
    // The same seed must produce the same spec and the same report —
    // the property that makes CI's fixed-seed sweep meaningful.
    for seed in [0, 1, 17, 33] {
        let a = verify_soc(&to_soc(generate_deadlocking(seed).expect("gen")));
        let b = verify_soc(&to_soc(generate_deadlocking(seed).expect("gen")));
        assert_eq!(a, b, "seed {seed} verdict changed between runs");
    }
}
