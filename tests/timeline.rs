//! Power-timeline correctness contract:
//!
//! * the sink's per-component mirror totals are **bit-identical** to
//!   the energy ledger on every reference system × acceleration mode ×
//!   a nonempty power policy (same `f64`s, same `+=` order);
//! * the window bins are an exact partition of each component's energy
//!   (window sums re-associate float addition, so they match the
//!   mirror to relative 1e-12, and the mirror matches the ledger to
//!   the bit);
//! * the binning is invariant in the window width;
//! * attaching the sink never perturbs a golden snapshot, under every
//!   `GATESIM_KERNEL`;
//! * the VCD and Perfetto exporters emit documents that pass the
//!   in-repo validators on real runs.
//!
//! The suite owns its process (integration tests link separately), so
//! the `GATESIM_KERNEL` environment mutation is serialized behind one
//! lock local to this binary.

use std::sync::Mutex;

use co_estimation::{
    Acceleration, CachingConfig, ComponentId, CoSimConfig, CoSimReport, CoSimulator,
    GatingPolicy, LeakageModel, OperatingPoint, PowerPolicy, SamplingConfig, SocDescription,
};
use soctrace::json::JsonValue;
use soctrace::{
    check_vcd, json, write_perfetto, write_vcd, PowerTimelineSink, SharedSink, TimelineConfig,
    TimelineReport,
};
use systems::automotive::{self, AutomotiveParams};
use systems::producer_consumer::{self, ProducerConsumerParams};
use systems::tcpip::{self, TcpIpParams};

/// Serializes `GATESIM_KERNEL` mutation across the tests in this binary.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The four first-class kernels as `GATESIM_KERNEL` values; `None` is
/// "leave the environment alone" — the event-driven default.
const KERNELS: [(&str, Option<&str>); 4] = [
    ("event(default)", None),
    ("oblivious", Some("oblivious")),
    ("word", Some("word")),
    ("simd", Some("simd")),
];

/// Runs `f` with the gate-simulation kernel selection pinned to
/// `kernel`, holding the environment lock for the duration.
fn with_kernel<T>(kernel: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("GATESIM_OBLIVIOUS");
    match kernel {
        Some(k) => std::env::set_var("GATESIM_KERNEL", k),
        None => std::env::remove_var("GATESIM_KERNEL"),
    }
    let out = f();
    std::env::remove_var("GATESIM_KERNEL");
    out
}

fn small_tcpip() -> SocDescription {
    tcpip::build(&TcpIpParams {
        num_packets: 8,
        len_range: (8, 24),
        pkt_period: 5_000,
        seed: 3,
    })
    .expect("valid params")
}

fn all_systems() -> Vec<(&'static str, SocDescription)> {
    vec![
        ("tcpip", small_tcpip()),
        (
            "producer_consumer",
            producer_consumer::build(&ProducerConsumerParams::default()).expect("valid params"),
        ),
        (
            "automotive",
            automotive::build(&AutomotiveParams::default()).expect("valid params"),
        ),
    ]
}

fn all_modes() -> Vec<(&'static str, Acceleration)> {
    vec![
        ("baseline", Acceleration::none()),
        ("caching", Acceleration::caching(CachingConfig::new())),
        ("macromodel", Acceleration::macromodel()),
        ("sampling", Acceleration::sampling(SamplingConfig { period: 4 })),
    ]
}

/// A non-noop policy for any system: leakage on every component, the
/// first process clock-gated, the second (when present) power-gated,
/// the last assigned a DVFS operating point.
fn managed_policy(soc: &SocDescription) -> PowerPolicy {
    let names: Vec<String> = soc
        .network
        .process_ids()
        .map(|p| soc.network.cfsm(p).name().to_string())
        .collect();
    let mut policy = PowerPolicy::named("managed")
        .with_leakage(LeakageModel::with_default_rate(1.5e-3))
        .with_operating_point(OperatingPoint::new("low", 0.85, 0.7))
        .gate(names[0].clone(), GatingPolicy::clock(300));
    if names.len() > 1 {
        policy = policy.gate(names[1].clone(), GatingPolicy::power(600, 2.0e-8, 12));
    }
    if let Some(last) = names.last() {
        policy = policy.dvfs(last.clone(), 0);
    }
    policy
}

/// Runs a system with a [`PowerTimelineSink`] attached at the given
/// window width; returns the report and the binned timeline.
fn run_with_timeline(
    soc: SocDescription,
    config: CoSimConfig,
    window_cycles: u64,
) -> (CoSimReport, TimelineReport) {
    let clock_hz = config.clock_hz;
    let sink = SharedSink::new(PowerTimelineSink::new(TimelineConfig::new(
        window_cycles,
        clock_hz,
    )));
    let mut sim = CoSimulator::new(soc, config).expect("system builds");
    sim.attach_trace(Box::new(sink.clone()));
    let report = sim.run();
    let names = sim.component_names();
    let timeline = sink.with(|s| s.report(&names, report.total_cycles));
    (report, timeline)
}

/// Relative-tolerance check for sums that re-associate float addition.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1e-300)
}

#[test]
fn mirror_totals_are_bit_identical_to_the_ledger_everywhere() {
    let base = CoSimConfig::date2000_defaults();
    for (system, soc) in all_systems() {
        for (mode, accel) in all_modes() {
            let config = base
                .with_accel(accel)
                .with_power_policy(managed_policy(&soc));
            let (report, tl) = run_with_timeline(soc.clone(), config, 1_000);
            assert_eq!(
                tl.components.len(),
                report.account.component_count(),
                "{system}/{mode}: component coverage"
            );
            for (i, c) in tl.components.iter().enumerate() {
                let ledger = report.account.totals(ComponentId(i as u32)).energy_j;
                // The mirror applies the same `f64`s in the same `+=`
                // order as the ledger: bit-identity, not tolerance.
                assert_eq!(
                    c.total_j.to_bits(),
                    ledger.to_bits(),
                    "{system}/{mode}: mirror for `{}` ({} vs {ledger})",
                    c.name,
                    c.total_j
                );
                // The window bins partition the same energy (window
                // sums re-associate, so tolerance applies here).
                let window_sum: f64 = c.window_energy_j.iter().sum();
                assert!(
                    close(window_sum, ledger),
                    "{system}/{mode}: windows for `{}` sum to {window_sum}, ledger {ledger}",
                    c.name
                );
            }
        }
    }
}

#[test]
fn binning_is_invariant_in_the_window_width() {
    let soc = small_tcpip();
    let config = CoSimConfig::date2000_defaults().with_power_policy(managed_policy(&soc));
    let reference = run_with_timeline(soc.clone(), config.clone(), 1_000);
    for width in [1u64, 7, 100, 1_000, 10_000, 1 << 40] {
        let (report, tl) = run_with_timeline(soc.clone(), config.clone(), width);
        assert_eq!(
            report.golden_snapshot(),
            reference.0.golden_snapshot(),
            "width {width}: the sink perturbed the run"
        );
        for (i, c) in tl.components.iter().enumerate() {
            // Mirror totals are width-independent to the bit.
            assert_eq!(
                c.total_j.to_bits(),
                reference.1.components[i].total_j.to_bits(),
                "width {width}: mirror drifted for `{}`",
                c.name
            );
            let window_sum: f64 = c.window_energy_j.iter().sum();
            assert!(
                close(window_sum, c.total_j),
                "width {width}: windows for `{}` sum to {window_sum}, mirror {}",
                c.name,
                c.total_j
            );
        }
        // Provenance lanes partition the same total as the components.
        let prov_sum: f64 = tl.provenance.iter().flat_map(|(_, v)| v.iter()).sum();
        assert!(
            close(prov_sum, tl.total_energy_j()),
            "width {width}: provenance lanes sum to {prov_sum}, total {}",
            tl.total_energy_j()
        );
    }
}

#[test]
fn attached_sink_never_perturbs_goldens_under_any_kernel() {
    for (kernel_name, kernel) in KERNELS {
        with_kernel(kernel, || {
            for (system, soc) in all_systems() {
                let config =
                    CoSimConfig::date2000_defaults().with_power_policy(managed_policy(&soc));
                let plain = CoSimulator::new(soc.clone(), config.clone())
                    .expect("system builds")
                    .run();
                let (observed, tl) = run_with_timeline(soc.clone(), config, 500);
                assert_eq!(
                    plain.golden_snapshot(),
                    observed.golden_snapshot(),
                    "{system}/{kernel_name}: timeline sink perturbed the report"
                );
                assert!(
                    tl.total_energy_j() > 0.0,
                    "{system}/{kernel_name}: timeline captured nothing"
                );
            }
        });
    }
}

#[test]
fn state_attribution_and_peaks_are_physical_on_a_managed_run() {
    let soc = small_tcpip();
    let config = CoSimConfig::date2000_defaults().with_power_policy(managed_policy(&soc));
    let (report, tl) = run_with_timeline(soc, config, 1_000);

    let peak = tl.peak().expect("nonempty run has a peak");
    assert!(peak.power_w > 0.0 && peak.power_w.is_finite());
    assert!(peak.energy_j <= tl.total_energy_j());
    assert!(tl.average_power_w() <= peak.power_w, "peak below average");
    let ma = tl.moving_average_max_w(3);
    assert!(
        ma <= peak.power_w && ma >= tl.average_power_w(),
        "moving-average max must sit between the average and the peak"
    );

    // State attribution partitions the run's energy and residency.
    let states = tl.state_power();
    let state_energy: f64 = states.iter().map(|s| s.energy_j).sum();
    assert!(close(state_energy, tl.total_energy_j()));
    let comp_cycles: u64 = states.iter().map(|s| s.cycles).sum();
    assert_eq!(
        comp_cycles,
        report.total_cycles * tl.components.len() as u64,
        "every component is in exactly one state at every cycle"
    );
    // The managed policy pins the last process to DVFS from cycle 0
    // (via the synthetic transition), so DVFS residency must be real.
    assert!(
        states.iter().any(|s| s.state == "dvfs" && s.cycles > 0),
        "DVFS residency missing: {states:?}"
    );
}

#[test]
fn exporters_emit_valid_documents_on_a_real_run() {
    let soc = small_tcpip();
    let config = CoSimConfig::date2000_defaults().with_power_policy(managed_policy(&soc));
    let (_, tl) = run_with_timeline(soc, config, 1_000);

    let vcd = write_vcd(&tl);
    let summary = check_vcd(&vcd).expect("emitted VCD parses");
    // One real signal per component plus the system total, one 2-bit
    // state reg per process that transitions.
    assert!(summary.signals as usize >= tl.components.len() + 1);
    assert!(summary.changes > 0);
    assert_eq!(
        summary.end_time,
        (tl.end_cycle as f64 * 1e9 / tl.clock_hz).round() as u64,
        "VCD horizon must land on the run's final cycle"
    );

    let perfetto = write_perfetto(&tl, None);
    let doc = json::parse(&perfetto).expect("emitted Perfetto JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    // One counter event per window per (component + system), plus one
    // instant per transition and anomaly, plus thread metadata.
    let expected_counters = tl.window_count() * (tl.components.len() + 1);
    let counters = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C"))
        .count();
    assert_eq!(counters, expected_counters);
    let instants = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("i"))
        .count();
    assert_eq!(instants, tl.transitions.len() + tl.anomalies.len());
}
