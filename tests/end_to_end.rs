//! Cross-crate integration tests: every example system through the full
//! co-estimation pipeline (behavioral model + gate-level HW + ISS SW +
//! bus + cache), under every acceleration technique.

use co_estimation::{
    Acceleration, CachingConfig, CoSimConfig, CoSimReport, CoSimulator, SamplingConfig,
    SocDescription,
};
use systems::{automotive, producer_consumer, tcpip};

fn small_pc() -> SocDescription {
    producer_consumer::build(&producer_consumer::ProducerConsumerParams {
        num_pkts: 5,
        pkt_bytes: 24,
        start_period: 600,
        tick_period: 150,
        num_starts: 25,
    })
    .expect("valid params")
}

fn small_tcpip() -> SocDescription {
    tcpip::build(&tcpip::TcpIpParams {
        num_packets: 8,
        len_range: (8, 24),
        pkt_period: 4_000,
        seed: 11,
    })
    .expect("valid params")
}

fn small_auto() -> SocDescription {
    automotive::build(&automotive::AutomotiveParams {
        num_samples: 6,
        sample_period: 1_500,
        pulse_period: 200,
        target_speed: 25,
    })
    .expect("valid params")
}

fn run(soc: SocDescription, accel: Acceleration) -> CoSimReport {
    let config = CoSimConfig::date2000_defaults().with_accel(accel);
    CoSimulator::new(soc, config).expect("system builds").run()
}

#[test]
fn every_system_co_estimates_under_every_acceleration() {
    for build in [small_pc, small_tcpip, small_auto] {
        let baseline = run(build(), Acceleration::none());
        assert!(baseline.total_energy_j() > 0.0);
        assert!(baseline.firings > 0);
        assert!(baseline.total_cycles > 0);
        for accel in [
            Acceleration::caching(CachingConfig::new()),
            Acceleration::macromodel(),
            Acceleration::sampling(SamplingConfig { period: 4 }),
        ] {
            let r = run(build(), accel);
            assert_eq!(
                r.firings, baseline.firings,
                "acceleration must not change the functional behavior of {}",
                baseline.system
            );
            assert!(r.total_energy_j() > 0.0);
        }
    }
}

#[test]
fn acceleration_never_changes_functional_state() {
    // The consumer's accumulated variable must be identical whatever
    // estimator priced the firings — acceleration affects cost models,
    // not behavior. We proxy via the deterministic per-process firing
    // counts and bus word counts.
    let base = run(small_tcpip(), Acceleration::none());
    let cached = run(small_tcpip(), Acceleration::caching(CachingConfig::aggressive()));
    for (b, c) in base.processes.iter().zip(&cached.processes) {
        assert_eq!(b.firings, c.firings, "{}", b.name);
    }
    assert_eq!(base.bus.words, cached.bus.words);
}

#[test]
fn co_estimation_is_bit_reproducible() {
    for build in [small_pc, small_tcpip, small_auto] {
        let a = run(build(), Acceleration::none());
        let b = run(build(), Acceleration::none());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.total_energy_j().to_bits(), b.total_energy_j().to_bits());
        assert_eq!(a.bus.toggles, b.bus.toggles);
        assert_eq!(a.cache.misses, b.cache.misses);
    }
}

#[test]
fn caching_is_exact_for_sparclite_systems() {
    let base = run(small_tcpip(), Acceleration::none());
    let cached = run(
        small_tcpip(),
        Acceleration::caching(CachingConfig {
            thresh_variance: 0.25,
            thresh_iss_calls: 2,
            keep_samples: false,
        }),
    );
    let rel = (cached.total_energy_j() - base.total_energy_j()).abs() / base.total_energy_j();
    assert!(rel < 5e-3, "caching error {rel}");
    assert!(cached.detailed_calls < base.detailed_calls);
}

#[test]
fn macromodel_is_conservative_on_every_system() {
    for build in [small_pc, small_tcpip, small_auto] {
        let base = run(build(), Acceleration::none());
        let mm = run(build(), Acceleration::macromodel());
        // Component-level energy must be over-estimated in aggregate
        // (bus and cache contributions are computed identically).
        let base_comp: f64 = base.processes.iter().map(|p| p.energy_j).sum();
        let mm_comp: f64 = mm.processes.iter().map(|p| p.energy_j).sum();
        assert!(
            mm_comp > base_comp,
            "{}: macromodel {mm_comp:.3e} vs detailed {base_comp:.3e}",
            base.system
        );
        assert_eq!(mm.detailed_calls, 0);
    }
}

#[test]
fn dma_size_sweeps_shape_energy_and_bus_stats() {
    let config = CoSimConfig::date2000_defaults();
    let mut energies = Vec::new();
    let mut blocks = Vec::new();
    for dma in [2u32, 8, 32] {
        let r = CoSimulator::new(small_tcpip(), config.with_dma_block_size(dma))
            .expect("builds")
            .run();
        energies.push(r.total_energy_j());
        blocks.push(r.bus.blocks);
    }
    assert!(energies[0] > energies[2], "small DMA costs more energy");
    assert!(blocks[0] > blocks[1] && blocks[1] > blocks[2], "fewer blocks at larger DMA");
}

#[test]
fn separate_estimation_diverges_only_for_timing_sensitive_components() {
    let soc = small_pc();
    let config = CoSimConfig::date2000_defaults();
    let sep = co_estimation::estimate_separately(&soc, &config).expect("separate");
    let co = CoSimulator::new(soc, config).expect("builds").run();
    // Producer: timing-insensitive traces → equal energy.
    let prod_rel = (sep.process_energy_j("producer") - co.process_energy_j("producer")).abs()
        / co.process_energy_j("producer");
    assert!(prod_rel < 0.02, "producer relative gap {prod_rel}");
    // Consumer: loop bounds depend on arrival times → under-estimated.
    assert!(
        sep.process_energy_j("consumer") < 0.8 * co.process_energy_j("consumer"),
        "separate {} vs co-est {}",
        sep.process_energy_j("consumer"),
        co.process_energy_j("consumer")
    );
}

#[test]
fn waveforms_account_for_all_energy() {
    let r = run(small_auto(), Acceleration::none());
    let sys = r.account.system_waveform();
    let waveform_total: f64 = sys.energy_per_bucket_j().iter().sum();
    assert!(
        (waveform_total - r.total_energy_j()).abs() < 1e-9 * r.total_energy_j(),
        "waveform {} vs ledger {}",
        waveform_total,
        r.total_energy_j()
    );
    assert!(sys.peak().is_some());
}

#[test]
fn report_lookup_and_power_helpers() {
    let r = run(small_auto(), Acceleration::none());
    let total: f64 = r.processes.iter().map(|p| p.energy_j).sum::<f64>()
        + r.bus_energy_j
        + r.cache_energy_j;
    assert!((r.total_energy_j() - total).abs() < 1e-18);
    assert!(r.average_power_w(25e6) > 0.0);
}
