//! `socpower` — an umbrella crate re-exporting the whole SOC power
//! co-estimation stack (a reproduction of *"Efficient Power
//! Co-Estimation Techniques for System-on-Chip Design"*, Lajolo,
//! Raghunathan, Dey, Lavagno — DATE 2000).
//!
//! Downstream users can depend on this single crate; the layers are also
//! usable individually:
//!
//! * [`cfsm`] — the CFSM behavioral model (the POLIS analogue);
//! * [`desim`] — the deterministic discrete-event kernel (PTOLEMY);
//! * [`gatesim`] — gate-level synthesis + power simulation (SIS);
//! * [`iss`] — the SPARClite-style ISS with instruction-level power
//!   models (SPARCsim + Tiwari);
//! * [`cachesim`] — the master-attached cache simulator;
//! * [`busmodel`] — the arbitrated shared-bus power model;
//! * [`coest`] — the co-estimation framework itself (master, caching,
//!   macro-modeling, sampling, separate-estimation baseline, explorer);
//! * [`socverify`] — pre-simulation liveness verification + spec fuzzing;
//! * [`systems`] — the paper's example systems.
//!
//! See the `examples/` directory for runnable walkthroughs, starting
//! with `quickstart.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use busmodel;
pub use cachesim;
pub use cfsm;
pub use co_estimation as coest;
pub use desim;
pub use gatesim;
pub use iss;
pub use socverify;
pub use systems;
