//! Specifying a system textually — the POLIS-style entry point: a
//! reactive specification, parsed, co-estimated, and explored, without
//! writing any builder code.
//!
//! ```sh
//! cargo run --release --example textual_spec
//! ```

use co_estimation::spec::{parse_system, parse_system_with_power};
use co_estimation::{
    Acceleration, BuildEstimatorError, CachingConfig, CoSimConfig, CoSimulator,
};

/// A doomed spec: the `relay` process waits on `REQUEST`, but nothing —
/// no process, no stimulus — ever produces it. Pre-simulation
/// verification rejects this in microseconds with a precise diagnosis
/// instead of a watchdog timeout.
const MISWIRED: &str = "\
system miswired

event REQUEST
event REPLY

process relay sw priority 1
  state run
  transition run -> run on REQUEST
    emit REPLY
  end

stimulus 10 REPLY
";

/// A thermostat: a HW sampler reads a (synthetic) temperature ramp, a SW
/// controller runs a hysteresis loop, and a HW actuator drives the
/// heater with a pulse-width proportional to the error.
const THERMOSTAT: &str = "\
system thermostat

event SAMPLE
event TEMP value
event HEAT value
event PULSE_DONE

# Static power floor: 1.5 mW per component, default gating factors.
leakage 0.0015

process sensor hw priority 3
  var t = 180
  var phase = 0
  state run
  power clock_gate 800
  transition run -> run on SAMPLE
    # A toy environment: temperature drifts down, heater events push up.
    phase = (+ phase 1)
    t = (- t 2)
    if (< t 150)
      t = 150
    end
    emit TEMP t
  end

process controller sw priority 2
  var target = 200
  var err = 0
  var duty = 0
  state run
  power dvfs low 0.85 0.7
  transition run -> run on TEMP
    err = (- target $TEMP)
    if (> err 0)
      duty = err
      if (> duty 40)
        duty = 40
      end
    else
      duty = 0
    end
    emit HEAT duty
  end

process actuator hw priority 1
  var n = 0
  var ticks = 0
  state run
  power power_gate 1000 0.00000002 15
  transition run -> run on HEAT
    n = $HEAT
    while (> n 0)
      ticks = (+ ticks 1)
      n = (- n 1)
    end
    emit PULSE_DONE
  end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Append a sampling stimulus programmatically (40 samples).
    let mut text = String::from(THERMOSTAT);
    for i in 1..=40u64 {
        text.push_str(&format!("stimulus {} SAMPLE\n", i * 1_500));
    }

    // A mis-wired spec fails the verified front door with a rendered
    // diagnosis (and would have burned a watchdog budget instead).
    let doomed = parse_system(MISWIRED)?;
    match CoSimulator::new_verified(doomed, CoSimConfig::date2000_defaults()) {
        Err(BuildEstimatorError::Unverifiable(report)) => {
            println!("rejected `miswired` before simulating anything:");
            println!("{}\n", report.render());
        }
        other => {
            return Err(format!("miswired spec must be rejected, got {other:?}").into());
        }
    }

    let soc = parse_system(&text)?;
    println!(
        "parsed `{}`: {} processes, {} events, {} stimuli\n",
        soc.name,
        soc.network.process_count(),
        soc.network.events().len(),
        soc.stimulus.len()
    );
    println!("{}", cfsm::dot::network_to_dot(&soc.network));

    let config = CoSimConfig::date2000_defaults();
    // The thermostat passes the same gate, so the verified entry point
    // is a drop-in front door for trusted and untrusted specs alike.
    let mut sim = CoSimulator::new_verified(soc.clone(), config.clone())?;
    let report = sim.run();
    println!("co-estimation:\n{}\n", report.account);

    let mut fast = CoSimulator::new(
        soc,
        config.with_accel(Acceleration::caching(CachingConfig::new())),
    )?;
    let cached = fast.run();
    println!(
        "with caching: {:.4e} J ({} detailed calls instead of {})",
        cached.total_energy_j(),
        cached.detailed_calls,
        report.detailed_calls
    );

    // The spec carries its own power-management directives (`leakage`
    // plus per-process `power` lines). `parse_system` above discarded
    // them; the power-aware entry point threads them out as a
    // ready-to-run policy.
    let (soc, policy) = parse_system_with_power(&text)?;
    println!(
        "\npower policy `{}`: {} managed components, {} operating point(s)",
        policy.name,
        policy.components.len(),
        policy.operating_points.len()
    );
    let mut managed = CoSimulator::new(soc, config.with_power_policy(policy))?;
    let powered = managed.run();
    powered.verify_provenance()?;
    let p = powered.power.as_ref().ok_or("managed run must report power")?;
    println!(
        "managed: {:.4e} J over {} cycles (leakage {:.3e} J, net saved {:.3e} J)",
        powered.total_energy_j(),
        powered.total_cycles,
        p.leakage_j,
        p.savings.net_saved_j()
    );
    for c in &p.components {
        println!(
            "  {:>11}: active {:>7} dvfs {:>7} gated {:>7} cycles, {} transitions",
            c.name,
            c.active_cycles,
            c.dvfs_cycles,
            c.clock_gated_cycles + c.power_gated_cycles,
            c.transitions
        );
    }
    Ok(())
}
