//! Inspecting the flow's intermediate artifacts — what the POLIS-style
//! compilation of Fig. 2(a) actually produces for the TCP/IP subsystem:
//! the synthesized netlist (as BLIF), its structural statistics, the
//! generated SPARClite-style assembly, the characterized macro-operation
//! parameter file, the network topology (DOT), and a power-waveform CSV.
//!
//! ```sh
//! cargo run --release --example inspect_artifacts
//! ```

use co_estimation::{characterize_sw, CoSimConfig, CoSimulator};
use gatesim::{analysis, HwCfsm, PowerConfig, SynthConfig};
use iss::{codegen, PowerModel};
use systems::tcpip::{build, TcpIpParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = build(&TcpIpParams {
        num_packets: 4,
        len_range: (8, 16),
        pkt_period: 5_000,
        seed: 1,
    })?;
    let net = &soc.network;

    println!("== network topology (Graphviz) ==\n");
    println!("{}", cfsm::dot::network_to_dot(net));

    // --- hardware side: synthesize the checksum engine -------------------
    let checksum = net
        .process_by_name("checksum")
        .ok_or("checksum process not found")?;
    let machine = net.cfsm(checksum);
    let hw = HwCfsm::synthesize(
        machine,
        &SynthConfig::new(),
        &PowerConfig::date2000_defaults(),
    )?;
    println!(
        "== checksum engine: {} gates across {} transition netlists ==\n",
        hw.gate_count(),
        hw.transition_count()
    );
    // Re-synthesize the body standalone for BLIF export + stats. (The
    // HwCfsm keeps its netlists private behind the run protocol; for
    // inspection we rebuild a representative datapath.)
    let mut nl = gatesim::Netlist::new();
    let a = gatesim::bus::input_bus(&mut nl, 16);
    let b = gatesim::bus::input_bus(&mut nl, 16);
    let c0 = nl.constant(false);
    let (sum, carry) = gatesim::bus::adder(&mut nl, &a, &b, c0);
    for (i, bit) in sum.nets().iter().enumerate() {
        nl.mark_output(format!("sum{i}"), *bit);
    }
    nl.mark_output("carry", carry);
    let stats = analysis::stats(&nl, &PowerConfig::date2000_defaults())?;
    println!("== a 16-bit checksum adder slice ==\n{stats}");
    let blif = gatesim::blif::to_blif(&nl, "csum_adder16");
    println!("BLIF ({} lines), first 8:", blif.lines().count());
    for line in blif.lines().take(8) {
        println!("  {line}");
    }

    // --- software side: compile create_pack -------------------------------
    let create_pack = net
        .process_by_name("create_pack")
        .ok_or("create_pack process not found")?;
    let program = codegen::compile(net.cfsm(create_pack), 0x0010_0000)?;
    println!(
        "\n== create_pack: {} instructions, {} bytes ==",
        program.code.len(),
        program.size_bytes()
    );
    println!("instruction mix: {:?}", program.instruction_mix());
    println!("first 12 lines of the listing:");
    for line in program.disassemble().lines().take(12) {
        println!("  {line}");
    }

    // --- the macro-model parameter file -----------------------------------
    let pf = characterize_sw(&PowerModel::sparclite());
    println!(
        "\n== characterized parameter file ({} macro-operations), first 12 lines ==",
        pf.len()
    );
    for line in pf.to_text().lines().take(12) {
        println!("  {line}");
    }

    // --- a run's power waveform as CSV -------------------------------------
    let mut sim = CoSimulator::new(soc, CoSimConfig::date2000_defaults())?;
    let report = sim.run();
    let csv = report.account.to_csv();
    println!(
        "\n== power waveform CSV ({} buckets), first 6 rows ==",
        csv.lines().count() - 1
    );
    for line in csv.lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
