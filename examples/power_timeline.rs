//! Time-resolved power telemetry on the TCP/IP subsystem: run the
//! co-simulation under a clock-gating + power-gating + DVFS policy with
//! a [`soctrace::PowerTimelineSink`] attached, print the ASCII power
//! waveform and transient statistics, and export the timeline as
//!
//! * `target/power_timeline.vcd` — per-component power as real signals
//!   and power states as 2-bit regs, viewable in GTKWave;
//! * `target/power_timeline.perfetto.json` — Chrome Trace Event
//!   counter tracks and instant events, loadable at `ui.perfetto.dev`.
//!
//! Both artifacts are validated in-process (the VCD with
//! [`soctrace::check_vcd`], the JSON with [`soctrace::json`]) before
//! they are written, so a broken exporter fails the example rather
//! than producing an unreadable file.
//!
//! ```sh
//! cargo run --release --example power_timeline
//! ```

use co_estimation::{
    CoSimConfig, CoSimulator, GatingPolicy, LeakageModel, OperatingPoint, PowerPolicy,
};
use soctrace::json::JsonValue;
use soctrace::{check_vcd, json, write_perfetto, write_vcd, PowerTimelineSink, SharedSink,
    TimelineConfig};
use systems::tcpip::{build, TcpIpParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = build(&TcpIpParams::fig7_defaults())?;
    // A managed configuration exercising all three techniques: a
    // 0.25 µm-era leakage floor, clock gating on the packet producer,
    // power gating on the IP-check stage, and a DVFS point on the
    // checksum stage.
    let policy = PowerPolicy::named("gated_dvfs")
        .with_leakage(LeakageModel::with_default_rate(2.0e-3))
        .with_operating_point(OperatingPoint::new("0.85v_0.7f", 0.85, 0.7))
        .gate("create_pack", GatingPolicy::clock(300))
        .gate("ip_check", GatingPolicy::power(600, 2.0e-8, 12))
        .dvfs("checksum", 0);
    let config = CoSimConfig::date2000_defaults()
        .with_dma_block_size(4)
        .with_power_policy(policy);
    let clock_hz = config.clock_hz;

    let mut sim = CoSimulator::new(soc, config)?;
    let sink = SharedSink::new(PowerTimelineSink::new(TimelineConfig::new(1_000, clock_hz)));
    sim.attach_trace(Box::new(sink.clone()));
    let report = sim.run();
    let names = sim.component_names();
    let timeline = sink.with(|s| s.report(&names, report.total_cycles));

    println!("== power timeline: tcpip under gating + DVFS ==\n");
    print!("{}", timeline.render_ascii(64));

    let peak = timeline.peak().ok_or("run produced an empty timeline")?;
    println!(
        "\npeak window:      {:.4} W over cycles {}..{}",
        peak.power_w,
        peak.start_cycle,
        peak.start_cycle + timeline.window_cycles
    );
    println!("average power:    {:.4} W", timeline.average_power_w());
    println!(
        "moving-avg(3) max: {:.4} W",
        timeline.moving_average_max_w(3)
    );
    println!(
        "residency-weighted: {:.4} W",
        timeline.residency_weighted_power_w()
    );
    println!("\nper-state residency and energy:");
    for s in timeline.state_power() {
        println!(
            "  {:<12} {:>9} comp-cycles  {:>12.4e} J",
            s.state, s.cycles, s.energy_j
        );
    }
    println!(
        "\n{} power-state transitions, {} anomalies, {} windows of {} cycles",
        timeline.transitions.len(),
        timeline.anomalies.len(),
        timeline.window_count(),
        timeline.window_cycles
    );

    // Export and self-validate both artifacts.
    let vcd = write_vcd(&timeline);
    let summary = check_vcd(&vcd).map_err(|e| format!("emitted VCD is invalid: {e}"))?;
    let perfetto = write_perfetto(&timeline, None);
    let events = json::parse(&perfetto)
        .map_err(|e| format!("emitted Perfetto JSON is invalid: {e}"))?
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::len)
        .ok_or("Perfetto document has no traceEvents array")?;

    std::fs::create_dir_all("target")?;
    std::fs::write("target/power_timeline.vcd", &vcd)?;
    std::fs::write("target/power_timeline.perfetto.json", &perfetto)?;
    println!(
        "\nwrote target/power_timeline.vcd ({} signals, {} changes; open in GTKWave)",
        summary.signals, summary.changes
    );
    println!(
        "wrote target/power_timeline.perfetto.json ({events} events; load at ui.perfetto.dev)"
    );
    Ok(())
}
