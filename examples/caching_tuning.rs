//! Exploring the accuracy/efficiency trade-off of energy caching
//! (§4.2): the `thresh_variance` and `thresh_iss_calls` knobs.
//!
//! ```sh
//! cargo run --release --example caching_tuning
//! ```

use co_estimation::{Acceleration, CachingConfig, CoSimConfig, CoSimulator};
use std::time::Instant;
use systems::tcpip::{build, TcpIpParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = TcpIpParams::table_defaults();
    let config = CoSimConfig::date2000_defaults().with_dma_block_size(4);

    let t0 = Instant::now();
    let mut sim = CoSimulator::new(build(&params)?, config.clone())?;
    let base = sim.run();
    let base_secs = t0.elapsed().as_secs_f64();
    println!(
        "baseline: {:.4e} J, {} detailed calls, {base_secs:.3} s\n",
        base.total_energy_j(),
        base.detailed_calls
    );

    println!(
        "{:>10} {:>7} | {:>9} {:>9} {:>9} {:>9}",
        "variance", "calls", "detailed", "hit rate", "err %", "speedup"
    );
    for (thresh_variance, thresh_iss_calls) in [
        (0.01, 5),
        (0.05, 3),
        (0.20, 3),
        (0.20, 2),
        (1.00, 2),
        (f64::INFINITY, 1),
    ] {
        let accel = Acceleration::caching(CachingConfig {
            thresh_variance,
            thresh_iss_calls,
            keep_samples: false,
        });
        let mut sim = CoSimulator::new(build(&params)?, config.with_accel(accel))?;
        let t0 = Instant::now();
        let r = sim.run();
        let secs = t0.elapsed().as_secs_f64();
        let err =
            100.0 * ((r.total_energy_j() - base.total_energy_j()) / base.total_energy_j()).abs();
        println!(
            "{:>10.2} {:>7} | {:>9} {:>8.0}% {:>9.4} {:>8.1}x",
            thresh_variance,
            thresh_iss_calls,
            r.detailed_calls,
            100.0 * r.accelerated_calls as f64 / r.firings as f64,
            err,
            base_secs / secs
        );
    }
    println!(
        "\nLooser thresholds trade (tiny amounts of) accuracy for speed — the\n\
         trade-off the paper's §4.2 parameters are designed to expose. With the\n\
         data-independent SPARClite model even aggressive caching stays exact."
    );
    Ok(())
}
