//! The paper's motivating experiment (§2, Fig. 1): why co-estimation?
//!
//! Runs the producer / timer / consumer system both ways — separate
//! per-component estimation from behavioral traces, and synchronized
//! co-estimation — and shows the separate flow under-estimating the
//! consumer, whose loop bounds are inter-arrival-time differences.
//!
//! ```sh
//! cargo run --release --example separate_vs_coestimation
//! ```

use co_estimation::{estimate_separately, CoSimConfig, CoSimulator};
use systems::producer_consumer::{build, ProducerConsumerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ProducerConsumerParams::fig1_defaults();
    println!(
        "producer computes a {}-byte checksum per packet; STARTs arrive every {} cycles",
        params.pkt_bytes, params.start_period
    );
    println!(
        "the computation takes ~2.6x the START period, so under real timing the\n\
         producer saturates and packets space out at the computation period.\n"
    );

    let soc = build(&params)?;
    let config = CoSimConfig::date2000_defaults();
    let separate = estimate_separately(&soc, &config)?;
    let mut sim = CoSimulator::new(soc, config)?;
    let coest = sim.run();

    println!(
        "{:<10} {:>15} {:>15} {:>10}",
        "process", "separate (J)", "co-est (J)", "error"
    );
    for p in &coest.processes {
        let sep = separate.process_energy_j(&p.name);
        println!(
            "{:<10} {:>15.4e} {:>15.4e} {:>9.1}%",
            p.name,
            sep,
            p.energy_j,
            100.0 * (sep - p.energy_j) / p.energy_j
        );
    }
    println!(
        "\nThe consumer's input traces are timing-sensitive: estimating it in\n\
         isolation from behavioral traces misses the larger TIME deltas that the\n\
         saturated producer causes — the paper measures the same ~62% error."
    );
    Ok(())
}
