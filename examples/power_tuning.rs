//! Tuning power management on the TCP/IP subsystem: sweeping gating
//! idle-timeouts against DVFS operating points and printing the
//! energy/runtime Pareto frontier.
//!
//! Gating trades wake-up overhead against leakage saved while idle;
//! DVFS trades runtime (a slower clock stretches the schedule) against
//! dynamic energy (`voltage_scale²`). Neither axis dominates the other,
//! so the interesting designs form a Pareto frontier over
//! `(total energy, total cycles)`.
//!
//! ```sh
//! cargo run --release --example power_tuning
//! ```

use co_estimation::{
    explore_power_policies, CoSimConfig, GatingPolicy, LeakageModel, OperatingPoint, PowerPolicy,
    PowerPoint,
};
use systems::tcpip::{build, TcpIpParams};

/// `true` when `a` is no worse than `b` on both axes and better on one.
fn dominates(a: &PowerPoint, b: &PowerPoint) -> bool {
    let (ae, ac) = (a.energy_j(), a.report.total_cycles);
    let (be, bc) = (b.energy_j(), b.report.total_cycles);
    ae <= be && ac <= bc && (ae < be || ac < bc)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = build(&TcpIpParams::fig7_defaults())?;
    let config = CoSimConfig::date2000_defaults().with_dma_block_size(4);
    // A plausible 0.25 µm-era static-power floor: 2 mW per process
    // component, with the default gating factors (clock gating keeps
    // 30% of nominal leakage, power gating 2%).
    let leakage = LeakageModel::with_default_rate(2.0e-3);

    // The sweep: gating idle-timeouts × DVFS points for the two
    // producer-side processes, which idle between packets.
    let timeouts: [Option<u64>; 4] = [None, Some(200), Some(1_000), Some(5_000)];
    let ops = [
        None,
        Some(OperatingPoint::new("0.9v_0.8f", 0.9, 0.8)),
        Some(OperatingPoint::new("0.8v_0.5f", 0.8, 0.5)),
    ];
    let mut policies = vec![PowerPolicy::none()];
    for timeout in timeouts {
        for op in &ops {
            if timeout.is_none() && op.is_none() {
                // All-Active at nominal with leakage only: the reference
                // the savings counters are measured against.
                policies.push(PowerPolicy::named("leak_only").with_leakage(leakage.clone()));
                continue;
            }
            let mut label = String::from("t=");
            label.push_str(&timeout.map_or("off".into(), |t| t.to_string()));
            label.push_str(" op=");
            label.push_str(op.as_ref().map_or("nominal", |o| o.name.as_str()));
            let mut p = PowerPolicy::named(label).with_leakage(leakage.clone());
            if let Some(t) = timeout {
                p = p
                    .gate("create_pack", GatingPolicy::clock(t))
                    .gate("packet_queue", GatingPolicy::power(t, 5.0e-8, 20));
            }
            if let Some(o) = op {
                p = p
                    .with_operating_point(o.clone())
                    .dvfs("create_pack", 0)
                    .dvfs("packet_queue", 0);
            }
            policies.push(p);
        }
    }

    let points = explore_power_policies(&soc, &config, &policies)?;

    println!(
        "{:>22} | {:>11} {:>9} | {:>10} {:>10} {:>10} {:>10}",
        "policy", "energy J", "cycles", "leak J", "dvfs J", "gate J", "net J"
    );
    for pt in &points {
        let (leak, dvfs, gate, net) = pt.report.power.as_ref().map_or((0.0, 0.0, 0.0, 0.0), |p| {
            (
                p.leakage_j,
                p.savings.dvfs_dynamic_saved_j,
                p.savings.gating_leakage_saved_j,
                p.savings.net_saved_j(),
            )
        });
        let frontier = !points.iter().any(|other| dominates(other, pt));
        println!(
            "{:>22} | {:>11.4e} {:>9} | {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {}",
            pt.policy_name,
            pt.energy_j(),
            pt.report.total_cycles,
            leak,
            dvfs,
            gate,
            net,
            if frontier { "*" } else { "" }
        );
    }
    println!(
        "\n* = on the energy/runtime Pareto frontier. Gating shaves leakage\n\
         without touching the schedule; DVFS buys dynamic energy with cycles;\n\
         the frontier designs combine an aggressive gate with a mild\n\
         operating point."
    );
    Ok(())
}
