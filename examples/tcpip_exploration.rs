//! Iterative design-space exploration of the TCP/IP NIC subsystem
//! (§5.3): sweep the bus DMA block size and master priorities, then
//! inspect where the energy goes in the best and worst configurations.
//!
//! ```sh
//! cargo run --release --example tcpip_exploration
//! ```

use co_estimation::{
    explore_bus_architecture, minimum_energy, CoSimConfig,
};
use systems::tcpip::{build, TcpIpParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = build(&TcpIpParams::fig7_defaults())?;
    let procs: Vec<cfsm::ProcId> = ["create_pack", "ip_check", "checksum"]
        .iter()
        .map(|n| {
            soc.network
                .process_by_name(n)
                .ok_or_else(|| format!("process {n} not found"))
        })
        .collect::<Result<_, _>>()?;

    let points = explore_bus_architecture(
        &soc,
        &CoSimConfig::date2000_defaults(),
        &procs,
        &[1, 4, 16, 64],
    )?;
    println!("explored {} configurations\n", points.len());

    let min = minimum_energy(&points).ok_or("empty sweep")?;
    let max = points
        .iter()
        .max_by(|a, b| a.energy_j().total_cmp(&b.energy_j()))
        .ok_or("empty sweep")?;

    for (tag, point) in [("BEST", min), ("WORST", max)] {
        let r = &point.report;
        println!(
            "{tag}: DMA = {}, priorities {} -> {:.4e} J over {} cycles",
            point.dma_block_size,
            point.label,
            point.energy_j(),
            r.total_cycles
        );
        for p in &r.processes {
            println!(
                "    {:<14} [{}] {:>12.4e} J  ({} firings)",
                p.name, p.mapping, p.energy_j, p.firings
            );
        }
        println!(
            "    {:<14}      {:>12.4e} J  ({} blocks, {} bus-wait cycles)",
            "bus", r.bus_energy_j, r.bus.blocks, r.bus.wait_cycles
        );
        println!(
            "    {:<14}      {:>12.4e} J  ({})",
            "icache", r.cache_energy_j, r.cache
        );
        // Peak-power correlation (§5.3's closing observation).
        if let Some((bucket, e)) = r.account.system_waveform().peak() {
            println!(
                "    peak power bucket #{bucket} ({:.3e} J) — aligns with arbiter handshakes\n",
                e
            );
        }
    }
    println!(
        "savings best vs worst: {:.1}%",
        100.0 * (max.energy_j() - min.energy_j()) / max.energy_j()
    );
    Ok(())
}
