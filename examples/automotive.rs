//! Power co-estimation of the automotive dashboard / cruise-control
//! subsystem, comparing the baseline against the acceleration
//! techniques.
//!
//! ```sh
//! cargo run --release --example automotive
//! ```

use co_estimation::{Acceleration, CachingConfig, CoSimConfig, CoSimulator};
use std::time::Instant;
use systems::automotive::{build, AutomotiveParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = AutomotiveParams::demo();
    println!(
        "simulating {} sampling windows of the dashboard controller\n",
        params.num_samples
    );

    let config = CoSimConfig::date2000_defaults();
    let mut results = Vec::new();
    for (name, accel) in [
        ("baseline", Acceleration::none()),
        ("caching", Acceleration::caching(CachingConfig::new())),
        ("macromodel", Acceleration::macromodel()),
    ] {
        let mut sim = CoSimulator::new(build(&params)?, config.with_accel(accel))?;
        let t0 = Instant::now();
        let report = sim.run();
        let secs = t0.elapsed().as_secs_f64();
        results.push((name, report, secs));
    }

    let base_energy = results[0].1.total_energy_j();
    let base_secs = results[0].2;
    println!(
        "{:<12} {:>14} {:>9} {:>9} {:>8}",
        "mode", "energy (J)", "err %", "CPU (s)", "speedup"
    );
    for (name, report, secs) in &results {
        println!(
            "{:<12} {:>14.4e} {:>8.1}% {:>9.3} {:>7.1}x",
            name,
            report.total_energy_j(),
            100.0 * (report.total_energy_j() - base_energy) / base_energy,
            secs,
            base_secs / secs
        );
    }

    println!("\nbaseline breakdown:");
    println!("{}", results[0].1.account);
    Ok(())
}
