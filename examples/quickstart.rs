//! Quickstart: describe a tiny HW/SW system as a CFSM network, run power
//! co-estimation, and read the per-component energy breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfsm::{
    Cfg, Cfsm, EventDef, EventOccurrence, Expr, Implementation, Network, Stmt,
};
use co_estimation::{CoSimConfig, CoSimulator, SocDescription};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the events the processes exchange.
    let mut nb = Network::builder();
    let sample = nb.event(EventDef::pure("SAMPLE")); // from the environment
    let reading = nb.event(EventDef::valued("READING")); // sensor -> filter
    let alarm = nb.event(EventDef::pure("ALARM")); // filter -> environment

    // 2. A hardware sensor: every SAMPLE, produce a reading.
    let mut sensor = Cfsm::builder("sensor");
    let s = sensor.state("run");
    let seq = sensor.var("seq", 0);
    sensor.transition(
        s,
        vec![sample],
        None,
        Cfg::straight_line(vec![
            Stmt::Assign {
                var: seq,
                expr: Expr::add(Expr::Var(seq), Expr::Const(7)),
            },
            Stmt::Emit {
                event: reading,
                value: Some(Expr::bin(cfsm::BinOp::And, Expr::Var(seq), Expr::Const(0xFF))),
            },
        ]),
        s,
    );
    let sensor = sensor.finish()?;

    // 3. A software filter: exponential smoothing, alarm above threshold.
    let mut filter = Cfsm::builder("filter");
    let f = filter.state("run");
    let avg = filter.var("avg", 0);
    filter.transition(
        f,
        vec![reading],
        None,
        Cfg::straight_line(vec![
            // avg = (3*avg + reading) / 4
            Stmt::Assign {
                var: avg,
                expr: Expr::bin(
                    cfsm::BinOp::Shr,
                    Expr::add(
                        Expr::bin(cfsm::BinOp::Mul, Expr::Var(avg), Expr::Const(3)),
                        Expr::EventValue(reading),
                    ),
                    Expr::Const(2),
                ),
            },
            Stmt::Emit {
                event: alarm,
                value: None,
            },
        ]),
        f,
    );
    let filter = filter.finish()?;

    // 4. Map processes to implementations and build the network.
    nb.process(sensor, Implementation::Hw);
    nb.process(filter, Implementation::Sw);
    let network = nb.finish()?;

    // 5. Describe the environment: 50 samples, one every 2000 cycles.
    let soc = SocDescription {
        name: "sensor-filter".into(),
        network,
        stimulus: (1..=50)
            .map(|i| (i * 2_000, EventOccurrence::pure(sample)))
            .collect(),
        priorities: vec![2, 1],
    };

    // 6. Co-estimate.
    let config = CoSimConfig::date2000_defaults();
    let clock = config.clock_hz;
    let mut sim = CoSimulator::new(soc, config)?;
    let report = sim.run();

    // 7. Read the results.
    println!("system `{}`:", report.system);
    println!("{}", report.account);
    println!();
    println!("firings            : {}", report.firings);
    println!("simulated time     : {} cycles", report.total_cycles);
    println!(
        "average power      : {:.3} mW at {:.0} MHz",
        1e3 * report.average_power_w(clock),
        clock / 1e6
    );
    println!("icache             : {}", report.cache);
    Ok(())
}
